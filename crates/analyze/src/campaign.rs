//! Offline analysis of fault-campaign artifacts (`--campaign-out`).
//!
//! A campaign file is JSONL: one object per fault trial (keyed by
//! `"class"`) followed by one summary object (keyed by `"spec"`). The
//! analyzer re-tallies the trial records, cross-checks the embedded
//! summary against the recount, and renders a per-class table. The
//! verdict is fail-closed: any silent violation, failed recovery, or
//! summary/record mismatch fails the analysis.

use std::collections::BTreeMap;

use hpmp_trace::json::{parse_json, JsonValue};

/// Per-fault-class tallies recounted from trial records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassTally {
    /// Trials that actually injected a fault of this class.
    pub injected: u64,
    /// Injected faults that were detected (denial, repair, or quarantine).
    pub detected: u64,
    /// Silent-violation count attributed to this class's trials.
    pub silent: u64,
    /// Trials skipped before injection (environment refused the fault).
    pub skipped: u64,
}

/// The recounted view of one campaign artifact.
#[derive(Clone, Debug, Default)]
pub struct CampaignAnalysis {
    /// Trial records seen.
    pub trials: u64,
    /// Tallies keyed by class name, in lexical order.
    pub classes: BTreeMap<String, ClassTally>,
    /// Total fast-path grants the oracle denied.
    pub silent: u64,
    /// Total spurious denials (graceful degradation).
    pub degraded: u64,
    /// Total recovery paths that failed to restore service.
    pub recovery_failures: u64,
    /// Total TLB lookups rejected by the isolation epoch.
    pub stale_rejects: u64,
    /// The summary object's raw `pass` flag, if a summary line was present.
    pub summary_pass: Option<bool>,
    /// Mismatches between the summary object and the recount.
    pub mismatches: Vec<String>,
}

impl CampaignAnalysis {
    /// Parses a campaign JSONL artifact.
    ///
    /// # Errors
    ///
    /// Fails on unparseable lines or records missing required fields —
    /// schema errors, distinct from a failing campaign.
    pub fn from_jsonl(text: &str) -> Result<CampaignAnalysis, String> {
        let mut analysis = CampaignAnalysis::default();
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = parse_json(line).map_err(|e| format!("line {}: {e}", n + 1))?;
            let JsonValue::Object(obj) = value else {
                return Err(format!("line {}: expected a JSON object", n + 1));
            };
            if obj.contains_key("class") {
                analysis.absorb_trial(&obj, n + 1)?;
            } else if obj.contains_key("spec") {
                analysis.check_summary(&obj);
            } else {
                return Err(format!(
                    "line {}: neither a trial record nor a summary",
                    n + 1
                ));
            }
        }
        if analysis.trials == 0 {
            return Err("no trial records found".into());
        }
        Ok(analysis)
    }

    fn absorb_trial(
        &mut self,
        obj: &BTreeMap<String, JsonValue>,
        line: usize,
    ) -> Result<(), String> {
        let class = obj
            .get("class")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {line}: class must be a string"))?
            .to_string();
        let flag = |key: &str| -> Result<bool, String> {
            match obj.get(key) {
                Some(JsonValue::Bool(b)) => Ok(*b),
                _ => Err(format!("line {line}: {key} must be a boolean")),
            }
        };
        let count = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("line {line}: {key} must be a u64"))
        };
        let injected = flag("injected")?;
        let detected = flag("detected")?;
        let silent = count("silent")?;
        let tally = self.classes.entry(class).or_default();
        if injected {
            tally.injected += 1;
            tally.detected += u64::from(detected);
        } else {
            tally.skipped += 1;
        }
        tally.silent += silent;
        self.trials += 1;
        self.silent += silent;
        self.degraded += count("degraded")?;
        self.stale_rejects += count("stale_rejects")?;
        self.recovery_failures += u64::from(flag("recovery_failed")?);
        Ok(())
    }

    fn check_summary(&mut self, obj: &BTreeMap<String, JsonValue>) {
        if let Some(JsonValue::Bool(pass)) = obj.get("pass") {
            self.summary_pass = Some(*pass);
        }
        let mut check = |name: &str, recounted: u64| {
            if let Some(claimed) = obj.get(name).and_then(JsonValue::as_u64) {
                if claimed != recounted {
                    self.mismatches.push(format!(
                        "summary claims {name}={claimed} but records tally {recounted}"
                    ));
                }
            }
        };
        check("trials", self.trials);
        check("silent", self.silent);
        check("degraded", self.degraded);
        check("recovery_failures", self.recovery_failures);
        check("stale_rejects", self.stale_rejects);
        if let Some(JsonValue::Object(injected)) = obj.get("injected") {
            for (class, tally) in &self.classes {
                if let Some(claimed) = injected.get(class.as_str()).and_then(JsonValue::as_u64) {
                    if claimed != tally.injected {
                        self.mismatches.push(format!(
                            "summary claims injected.{class}={claimed} \
                             but records tally {}",
                            tally.injected
                        ));
                    }
                }
            }
        }
    }

    /// The fail-closed verdict over the recount: zero silent violations,
    /// zero failed recoveries, no summary mismatch, and no summary that
    /// itself says `pass: false`.
    pub fn passed(&self) -> bool {
        self.silent == 0
            && self.recovery_failures == 0
            && self.mismatches.is_empty()
            && self.summary_pass != Some(false)
    }

    /// Renders the per-class table and verdict.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault campaign: {} trials, {} classes",
            self.trials,
            self.classes.len()
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>9} {:>9} {:>8} {:>7}",
            "class", "injected", "detected", "skipped", "silent"
        );
        for (class, tally) in &self.classes {
            let _ = writeln!(
                out,
                "  {:<12} {:>9} {:>9} {:>8} {:>7}",
                class, tally.injected, tally.detected, tally.skipped, tally.silent
            );
        }
        let _ = writeln!(
            out,
            "  degraded accesses: {}, stale TLB rejects: {}, recovery failures: {}",
            self.degraded, self.stale_rejects, self.recovery_failures
        );
        for mismatch in &self.mismatches {
            let _ = writeln!(out, "  MISMATCH: {mismatch}");
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(class: &str, injected: bool, detected: bool, silent: u64) -> String {
        format!(
            "{{\"shard\":0,\"trial\":0,\"class\":\"{class}\",\"victim\":\"host\",\
             \"detail\":\"d\",\"injected\":{injected},\"detected\":{detected},\
             \"silent\":{silent},\"degraded\":0,\"stale_rejects\":1,\
             \"recovery_failed\":false}}\n"
        )
    }

    #[test]
    fn tallies_and_passes_clean_campaign() {
        let mut text = String::new();
        text.push_str(&record("pmpte", true, true, 0));
        text.push_str(&record("stale", true, true, 0));
        text.push_str(&record("stale", false, false, 0));
        text.push_str(
            "{\"spec\":\"x\",\"seed\":1,\"shards\":1,\"trials\":3,\
             \"injected\":{\"pmpte\":1,\"stale\":1,\"total\":2},\
             \"detected\":{\"pmpte\":1,\"stale\":1},\"silent\":0,\"degraded\":0,\
             \"recovery_failures\":0,\"stale_rejects\":3,\"pass\":true}\n",
        );
        let analysis = CampaignAnalysis::from_jsonl(&text).expect("parse");
        assert!(analysis.passed(), "{}", analysis.render());
        assert_eq!(analysis.trials, 3);
        assert_eq!(analysis.classes["pmpte"].injected, 1);
        assert_eq!(analysis.classes["stale"].skipped, 1);
        assert!(analysis.render().contains("PASS"));
    }

    #[test]
    fn silent_violation_fails() {
        let text = record("regs", true, false, 1);
        let analysis = CampaignAnalysis::from_jsonl(&text).expect("parse");
        assert!(!analysis.passed());
        assert!(analysis.render().contains("FAIL"));
    }

    #[test]
    fn summary_mismatch_fails() {
        let mut text = record("regs", true, true, 0);
        text.push_str(
            "{\"spec\":\"x\",\"trials\":1,\"silent\":5,\"degraded\":0,\
             \"recovery_failures\":0,\"stale_rejects\":1,\"pass\":true}\n",
        );
        let analysis = CampaignAnalysis::from_jsonl(&text).expect("parse");
        assert!(!analysis.mismatches.is_empty());
        assert!(!analysis.passed());
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(CampaignAnalysis::from_jsonl("").is_err());
        assert!(CampaignAnalysis::from_jsonl("not json\n").is_err());
        assert!(CampaignAnalysis::from_jsonl("{\"weird\":1}\n").is_err());
        let missing = "{\"class\":\"regs\",\"injected\":true}\n";
        assert!(CampaignAnalysis::from_jsonl(missing).is_err());
    }
}
