//! Sparse backing store for simulated physical memory.
//!
//! The simulator needs real storage for structures that hardware actually
//! walks: page tables (read by the PTW) and PMP Tables (read by the PMPTW).
//! [`PhysMem`] is a sparse, page-granular store of 64-bit words; untouched
//! pages read as zero, matching DRAM scrubbed at boot.
//!
//! Storage is a two-level flat page directory indexed by page frame number
//! (PFN): the top level is a `Vec` of chunk pointers, each chunk covering
//! [`CHUNK_PAGES`] consecutive frames. A read is a bounds check plus two
//! pointer hops — no hashing anywhere on the per-access path.

use crate::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};

/// Number of 64-bit words per 4 KiB page.
const WORDS_PER_PAGE: usize = (PAGE_SIZE / 8) as usize;

/// log2 of the number of pages covered by one directory chunk.
const CHUNK_SHIFT: u32 = 11;

/// Pages per directory chunk (8 MiB of simulated memory per chunk).
const CHUNK_PAGES: usize = 1 << CHUNK_SHIFT;

/// Highest supported physical address bit. The directory grows with the
/// highest frame ever written, so a stray huge address would otherwise
/// balloon the top level; 1 TiB is far above anything the fixtures map
/// while keeping the worst-case top level around 1 MiB of pointers.
const MAX_PHYS_BITS: u32 = 40;

/// Highest valid PFN (exclusive).
const MAX_PFN: u64 = 1 << (MAX_PHYS_BITS - PAGE_SHIFT);

type Page = Box<[u64; WORDS_PER_PAGE]>;

/// One top-level directory slot: backing for [`CHUNK_PAGES`] frames.
#[derive(Clone)]
struct Chunk {
    slots: [Option<Page>; CHUNK_PAGES],
}

impl Chunk {
    fn new() -> Box<Chunk> {
        Box::new(Chunk {
            slots: std::array::from_fn(|_| None),
        })
    }
}

/// Sparse word-addressable physical memory.
///
/// ```
/// use hpmp_memsim::{PhysAddr, PhysMem};
/// let mut mem = PhysMem::new();
/// mem.write_u64(PhysAddr::new(0x8000_0008), 42);
/// assert_eq!(mem.read_u64(PhysAddr::new(0x8000_0008)), 42);
/// assert_eq!(mem.read_u64(PhysAddr::new(0x8000_0000)), 0); // untouched => 0
/// ```
#[derive(Clone, Default)]
pub struct PhysMem {
    dir: Vec<Option<Box<Chunk>>>,
    resident: usize,
    /// When set, every mutated PFN is appended to `dirty` so a sharded
    /// copy of this memory can be brought up to date page-by-page instead
    /// of re-cloned wholesale (the threaded SMP backend's broadcast).
    log_writes: bool,
    dirty: Vec<u64>,
}

impl PhysMem {
    /// Creates an empty (all-zero) physical memory.
    pub fn new() -> PhysMem {
        PhysMem::default()
    }

    /// Reads the naturally-aligned 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned; hardware would raise a
    /// misaligned-access exception, which the walkers never do.
    #[inline]
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        assert!(addr.is_aligned(8), "misaligned u64 read at {addr}");
        let pfn = addr.page_number();
        match self
            .dir
            .get((pfn >> CHUNK_SHIFT) as usize)
            .and_then(|c| c.as_ref())
            .and_then(|c| c.slots[(pfn & (CHUNK_PAGES as u64 - 1)) as usize].as_ref())
        {
            Some(page) => page[Self::word_index(addr)],
            None => 0,
        }
    }

    /// Writes the naturally-aligned 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned or lies beyond the simulated
    /// physical address space (1 TiB).
    #[inline]
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        assert!(addr.is_aligned(8), "misaligned u64 write at {addr}");
        let page = self.page_mut(addr.page_number());
        page[Self::word_index(addr)] = value;
    }

    fn page_mut(&mut self, pfn: u64) -> &mut [u64; WORDS_PER_PAGE] {
        if self.log_writes {
            self.dirty.push(pfn);
        }
        assert!(
            pfn < MAX_PFN,
            "write beyond the {MAX_PHYS_BITS}-bit simulated physical address space"
        );
        let hi = (pfn >> CHUNK_SHIFT) as usize;
        let lo = (pfn & (CHUNK_PAGES as u64 - 1)) as usize;
        if hi >= self.dir.len() {
            self.dir.resize_with(hi + 1, || None);
        }
        let chunk = self.dir[hi].get_or_insert_with(Chunk::new);
        if chunk.slots[lo].is_none() {
            chunk.slots[lo] = Some(Box::new([0u64; WORDS_PER_PAGE]));
            self.resident += 1;
        }
        chunk.slots[lo].as_mut().unwrap()
    }

    /// Zeroes an entire 4 KiB page.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned.
    pub fn zero_page(&mut self, base: PhysAddr) {
        assert!(base.is_aligned(PAGE_SIZE), "zero_page of unaligned {base}");
        let pfn = base.page_number();
        if self.log_writes {
            self.dirty.push(pfn);
        }
        let hi = (pfn >> CHUNK_SHIFT) as usize;
        let lo = (pfn & (CHUNK_PAGES as u64 - 1)) as usize;
        if let Some(Some(chunk)) = self.dir.get_mut(hi) {
            if chunk.slots[lo].take().is_some() {
                self.resident -= 1;
            }
        }
    }

    /// Enables or disables PFN write logging. Enabling (or re-enabling)
    /// starts from an empty log.
    pub fn set_write_log(&mut self, on: bool) {
        self.log_writes = on;
        self.dirty.clear();
    }

    /// Drains the write log: the sorted, deduplicated set of PFNs mutated
    /// since the log was last enabled or drained.
    pub fn take_dirty_pfns(&mut self) -> Vec<u64> {
        let mut pfns = std::mem::take(&mut self.dirty);
        pfns.sort_unstable();
        pfns.dedup();
        pfns
    }

    /// Copies one 4 KiB page within this memory, from `src` to `dst` (both
    /// page aligned). An unbacked source zeroes the destination. The
    /// destination lands in the write log like any other mutation, so a
    /// sharded copy of this memory picks the moved page up at the next
    /// broadcast — which is what keeps the monitor's segment compaction
    /// coherent under the threaded SMP backend.
    ///
    /// # Panics
    ///
    /// Panics if either address is not page aligned.
    pub fn copy_page_within(&mut self, src: PhysAddr, dst: PhysAddr) {
        assert!(src.is_aligned(PAGE_SIZE), "copy_page_within from {src}");
        assert!(dst.is_aligned(PAGE_SIZE), "copy_page_within to {dst}");
        let src_pfn = src.page_number();
        let hi = (src_pfn >> CHUNK_SHIFT) as usize;
        let lo = (src_pfn & (CHUNK_PAGES as u64 - 1)) as usize;
        let words = self
            .dir
            .get(hi)
            .and_then(|c| c.as_ref())
            .and_then(|c| c.slots[lo].as_ref())
            .map(|page| **page);
        match words {
            Some(words) => *self.page_mut(dst.page_number()) = words,
            None => self.zero_page(dst),
        }
    }

    /// Makes this memory's view of `pfn` identical to `src`'s: copies the
    /// backing page if `src` has one, otherwise drops ours (so the frame
    /// reads as zero again). Used to propagate dirty pages from a
    /// write-logged canonical memory into its shards.
    pub fn copy_page_from(&mut self, src: &PhysMem, pfn: u64) {
        let hi = (pfn >> CHUNK_SHIFT) as usize;
        let lo = (pfn & (CHUNK_PAGES as u64 - 1)) as usize;
        let src_page = src
            .dir
            .get(hi)
            .and_then(|c| c.as_ref())
            .and_then(|c| c.slots[lo].as_ref());
        match src_page {
            Some(page) => *self.page_mut(pfn) = **page,
            None => self.zero_page(PhysAddr::new(pfn << PAGE_SHIFT)),
        }
    }

    /// Number of distinct pages that have been written.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Total bytes of simulated memory currently backed by host storage.
    pub fn resident_bytes(&self) -> u64 {
        self.resident as u64 * PAGE_SIZE
    }

    #[inline]
    fn word_index(addr: PhysAddr) -> usize {
        ((addr.raw() & (PAGE_SIZE - 1)) >> 3) as usize
    }
}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMem")
            .field("resident_pages", &self.resident)
            .finish()
    }
}

/// A bump allocator handing out page frames from a physical range, with a
/// LIFO recycling list so released frames are reused before the bump
/// cursor advances — long-lived churn (domain tables built and torn down
/// thousands of times) stays inside a bounded footprint.
///
/// This is *not* the OS page allocator (which lives in `hpmp-penglai`); it is
/// a low-level frame source used when constructing test fixtures and the
/// monitor's own private pools.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    base: PhysAddr,
    next: PhysAddr,
    end: PhysAddr,
    /// Frames handed back via [`FrameAllocator::release`], reused LIFO so
    /// allocation order stays deterministic.
    released: Vec<PhysAddr>,
}

impl FrameAllocator {
    /// Creates an allocator over `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned or `len` is not a multiple of the
    /// page size.
    pub fn new(base: PhysAddr, len: u64) -> FrameAllocator {
        assert!(base.is_aligned(PAGE_SIZE), "unaligned allocator base");
        assert!(
            len.is_multiple_of(PAGE_SIZE),
            "allocator length not page-multiple"
        );
        FrameAllocator {
            base,
            next: base,
            end: base + len,
            released: Vec::new(),
        }
    }

    /// Allocates one 4 KiB frame, or `None` when exhausted. Recycled
    /// frames are handed out (most recently released first) before the
    /// bump cursor advances.
    pub fn alloc(&mut self) -> Option<PhysAddr> {
        if let Some(frame) = self.released.pop() {
            return Some(frame);
        }
        if self.next >= self.end {
            return None;
        }
        let frame = self.next;
        self.next += PAGE_SIZE;
        Some(frame)
    }

    /// Feeds the allocator's logical state (bump cursor and recycled-frame
    /// stack) into a state fingerprint. Two allocators hashing equal will
    /// hand out identical frame sequences forever.
    pub fn hash_into<H: std::hash::Hasher>(&self, h: &mut H) {
        h.write_u64(self.base.raw());
        h.write_u64(self.next.raw());
        h.write_u64(self.end.raw());
        h.write_usize(self.released.len());
        for frame in &self.released {
            h.write_u64(frame.raw());
        }
    }

    /// Returns a frame to the allocator for reuse. The caller is
    /// responsible for scrubbing its contents first (a recycled table
    /// frame full of stale pmptes would otherwise decode as live grants).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is unaligned or was never part of this
    /// allocator's range.
    pub fn release(&mut self, frame: PhysAddr) {
        assert!(frame.is_aligned(PAGE_SIZE), "release of unaligned {frame}");
        assert!(
            frame >= self.base && frame < self.next,
            "release of foreign frame {frame}"
        );
        self.released.push(frame);
    }

    /// Allocates `n` physically contiguous frames, returning the base.
    pub fn alloc_contiguous(&mut self, n: u64) -> Option<PhysAddr> {
        let bytes = n.checked_mul(PAGE_SIZE)?;
        if self.next.raw().checked_add(bytes)? > self.end.raw() {
            return None;
        }
        let base = self.next;
        self.next += bytes;
        Some(base)
    }

    /// Number of frames still available (untouched plus recycled).
    pub fn remaining(&self) -> u64 {
        ((self.end.raw() - self.next.raw()) >> PAGE_SHIFT) + self.released.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_and_default_zero() {
        let mut mem = PhysMem::new();
        let a = PhysAddr::new(0x8000_1000);
        assert_eq!(mem.read_u64(a), 0);
        mem.write_u64(a, 0xdead_beef);
        assert_eq!(mem.read_u64(a), 0xdead_beef);
        assert_eq!(mem.read_u64(a + 8), 0);
        assert_eq!(mem.resident_pages(), 1);
    }

    #[test]
    fn pages_are_independent() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr::new(0x1000), 1);
        mem.write_u64(PhysAddr::new(0x2000), 2);
        assert_eq!(mem.resident_pages(), 2);
        mem.zero_page(PhysAddr::new(0x1000));
        assert_eq!(mem.read_u64(PhysAddr::new(0x1000)), 0);
        assert_eq!(mem.read_u64(PhysAddr::new(0x2000)), 2);
    }

    #[test]
    fn pages_span_directory_chunks() {
        let mut mem = PhysMem::new();
        // Two frames in different top-level chunks.
        let lo = PhysAddr::new(0x8000_0000);
        let hi = PhysAddr::new(0x8000_0000 + (CHUNK_PAGES as u64 + 3) * PAGE_SIZE);
        mem.write_u64(lo, 7);
        mem.write_u64(hi, 9);
        assert_eq!(mem.resident_pages(), 2);
        assert_eq!(mem.read_u64(lo), 7);
        assert_eq!(mem.read_u64(hi), 9);
        mem.zero_page(hi);
        assert_eq!(mem.read_u64(hi), 0);
        assert_eq!(mem.resident_pages(), 1);
    }

    #[test]
    fn rewriting_a_page_does_not_double_count() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr::new(0x3000), 1);
        mem.write_u64(PhysAddr::new(0x3008), 2);
        assert_eq!(mem.resident_pages(), 1);
        mem.zero_page(PhysAddr::new(0x3000));
        mem.zero_page(PhysAddr::new(0x3000)); // double-zero is fine
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn reads_beyond_the_directory_are_zero() {
        let mem = PhysMem::new();
        assert_eq!(mem.read_u64(PhysAddr::new((MAX_PFN - 1) << PAGE_SHIFT)), 0);
    }

    #[test]
    #[should_panic(expected = "simulated physical address space")]
    fn writes_beyond_the_address_space_panic() {
        PhysMem::new().write_u64(PhysAddr::new(MAX_PFN << PAGE_SHIFT), 1);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_read_panics() {
        PhysMem::new().read_u64(PhysAddr::new(0x1004 + 1));
    }

    #[test]
    fn write_log_tracks_dirty_pages_and_broadcast_syncs_shards() {
        let mut canon = PhysMem::new();
        canon.write_u64(PhysAddr::new(0x1000), 1);
        let mut shard = canon.clone();
        canon.set_write_log(true);
        canon.write_u64(PhysAddr::new(0x1008), 2);
        canon.write_u64(PhysAddr::new(0x5000), 3);
        canon.zero_page(PhysAddr::new(0x5000));
        let dirty = canon.take_dirty_pfns();
        assert_eq!(dirty, vec![1, 5], "sorted + deduplicated");
        for &pfn in &dirty {
            shard.copy_page_from(&canon, pfn);
        }
        assert_eq!(shard.read_u64(PhysAddr::new(0x1008)), 2);
        assert_eq!(shard.read_u64(PhysAddr::new(0x5000)), 0);
        assert_eq!(shard.resident_pages(), canon.resident_pages());
        assert!(
            canon.take_dirty_pfns().is_empty(),
            "drain empties the log; shard writes are not logged"
        );
    }

    #[test]
    fn frame_allocator_bump() {
        let mut fa = FrameAllocator::new(PhysAddr::new(0x8000_0000), 3 * PAGE_SIZE);
        assert_eq!(fa.remaining(), 3);
        assert_eq!(fa.alloc(), Some(PhysAddr::new(0x8000_0000)));
        assert_eq!(fa.alloc(), Some(PhysAddr::new(0x8000_1000)));
        assert_eq!(fa.alloc(), Some(PhysAddr::new(0x8000_2000)));
        assert_eq!(fa.alloc(), None);
    }

    #[test]
    fn frame_allocator_recycles_released_frames() {
        let mut fa = FrameAllocator::new(PhysAddr::new(0x8000_0000), 2 * PAGE_SIZE);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_eq!(fa.alloc(), None);
        fa.release(a);
        fa.release(b);
        assert_eq!(fa.remaining(), 2);
        // LIFO: the most recently released frame comes back first.
        assert_eq!(fa.alloc(), Some(b));
        assert_eq!(fa.alloc(), Some(a));
        assert_eq!(fa.alloc(), None);
    }

    #[test]
    #[should_panic(expected = "foreign frame")]
    fn frame_allocator_rejects_foreign_release() {
        let mut fa = FrameAllocator::new(PhysAddr::new(0x8000_0000), 2 * PAGE_SIZE);
        fa.release(PhysAddr::new(0x9000_0000));
    }

    #[test]
    fn copy_page_within_moves_bytes_and_logs_destination() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr::new(0x1000), 0x11);
        mem.write_u64(PhysAddr::new(0x1ff8), 0x22);
        mem.set_write_log(true);
        mem.copy_page_within(PhysAddr::new(0x1000), PhysAddr::new(0x4000));
        assert_eq!(mem.read_u64(PhysAddr::new(0x4000)), 0x11);
        assert_eq!(mem.read_u64(PhysAddr::new(0x4ff8)), 0x22);
        // Unbacked source zeroes the destination.
        mem.copy_page_within(PhysAddr::new(0x7000), PhysAddr::new(0x4000));
        assert_eq!(mem.read_u64(PhysAddr::new(0x4000)), 0);
        assert_eq!(mem.take_dirty_pfns(), vec![4], "destination pfn logged");
    }

    #[test]
    fn frame_allocator_contiguous() {
        let mut fa = FrameAllocator::new(PhysAddr::new(0x8000_0000), 4 * PAGE_SIZE);
        let base = fa.alloc_contiguous(3).unwrap();
        assert_eq!(base, PhysAddr::new(0x8000_0000));
        assert_eq!(fa.remaining(), 1);
        assert!(fa.alloc_contiguous(2).is_none());
        assert!(fa.alloc_contiguous(1).is_some());
    }
}
