//! The cache hierarchy: L1 → L2 → LLC → DRAM.
//!
//! Every memory reference a simulated walk or data access performs is issued
//! through [`MemSystem::access`], which returns the latency in core cycles and
//! records where the reference hit. This is the single source of truth for
//! "how expensive was that reference", so the isolation-scheme comparisons in
//! the paper fall directly out of how many references each scheme issues and
//! how well they cache.

use std::fmt;

use crate::addr::PhysAddr;
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig, DramStats};

/// Which level of the hierarchy serviced a reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// First-level data cache.
    L1,
    /// Unified second-level cache.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

impl fmt::Display for HitLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::Llc => "LLC",
            HitLevel::Dram => "DRAM",
        })
    }
}

/// Outcome of a single reference through the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccessOutcome {
    /// Level that serviced the reference.
    pub level: HitLevel,
    /// Total latency in core cycles.
    pub cycles: u64,
}

/// Configuration of the full memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Extra cycles per DRAM-level access for the inline memory-encryption
    /// engine (Penglai defends against physical attacks with encryption;
    /// an AES-XTS pipeline adds a fixed latency at the memory boundary).
    /// Zero disables the engine.
    pub encryption_latency: u64,
}

/// Aggregate counters for the memory system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSystemStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters.
    pub llc: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Total references issued.
    pub accesses: u64,
    /// Total cycles spent in the memory system.
    pub cycles: u64,
}

impl MemSystemStats {
    /// Publishes every counter into `reg` under `prefix` (e.g.
    /// `mem.l1.hits`, `mem.dram.row_misses`, `mem.accesses`).
    pub fn export(&self, reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) {
        let ids = MemSystemStatsIds::wire(reg, prefix);
        self.store(reg, &ids);
    }

    /// Publishes the counters through handles wired by
    /// [`MemSystemStatsIds::wire`].
    pub fn store(&self, reg: &mut hpmp_trace::MetricsRegistry, ids: &MemSystemStatsIds) {
        self.l1.store(reg, &ids.l1);
        self.l2.store(reg, &ids.l2);
        self.llc.store(reg, &ids.llc);
        self.dram.store(reg, &ids.dram);
        reg.store(ids.accesses, self.accesses);
        reg.store(ids.cycles, self.cycles);
    }
}

/// Interned counter handles for publishing [`MemSystemStats`] repeatedly
/// without re-formatting names.
#[derive(Clone, Copy, Debug)]
pub struct MemSystemStatsIds {
    l1: crate::cache::CacheStatsIds,
    l2: crate::cache::CacheStatsIds,
    llc: crate::cache::CacheStatsIds,
    dram: crate::dram::DramStatsIds,
    accesses: hpmp_trace::CounterId,
    cycles: hpmp_trace::CounterId,
}

impl MemSystemStatsIds {
    /// Intern the counter names under `prefix` once.
    pub fn wire(reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) -> MemSystemStatsIds {
        MemSystemStatsIds {
            l1: crate::cache::CacheStatsIds::wire(reg, &format!("{prefix}.l1")),
            l2: crate::cache::CacheStatsIds::wire(reg, &format!("{prefix}.l2")),
            llc: crate::cache::CacheStatsIds::wire(reg, &format!("{prefix}.llc")),
            dram: crate::dram::DramStatsIds::wire(reg, &format!("{prefix}.dram")),
            accesses: reg.counter(format!("{prefix}.accesses")),
            cycles: reg.counter(format!("{prefix}.cycles")),
        }
    }
}

/// A three-level cache hierarchy in front of DRAM.
///
/// ```
/// use hpmp_memsim::{MemSystem, MemSystemConfig, HitLevel, PhysAddr};
/// let mut m = MemSystem::new(MemSystemConfig::rocket());
/// let cold = m.access(PhysAddr::new(0x8000_0000));
/// assert_eq!(cold.level, HitLevel::Dram);
/// let warm = m.access(PhysAddr::new(0x8000_0000));
/// assert_eq!(warm.level, HitLevel::L1);
/// assert!(warm.cycles < cold.cycles);
/// ```
#[derive(Clone, Debug)]
pub struct MemSystem {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    dram: Dram,
    encryption_latency: u64,
    accesses: u64,
    cycles: u64,
}

impl MemSystem {
    /// Builds a memory system from the given configuration.
    pub fn new(config: MemSystemConfig) -> MemSystem {
        MemSystem {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            llc: Cache::new(config.llc),
            dram: Dram::new(config.dram),
            encryption_latency: config.encryption_latency,
            accesses: 0,
            cycles: 0,
        }
    }

    /// Issues one reference, filling caches inclusively on the way back.
    pub fn access(&mut self, addr: PhysAddr) -> MemAccessOutcome {
        self.accesses += 1;
        let outcome = if self.l1.access(addr) {
            MemAccessOutcome {
                level: HitLevel::L1,
                cycles: self.l1.config().hit_latency,
            }
        } else if self.l2.access(addr) {
            MemAccessOutcome {
                level: HitLevel::L2,
                cycles: self.l1.config().hit_latency + self.l2.config().hit_latency,
            }
        } else if self.llc.access(addr) {
            MemAccessOutcome {
                level: HitLevel::Llc,
                cycles: self.l1.config().hit_latency
                    + self.l2.config().hit_latency
                    + self.llc.config().hit_latency,
            }
        } else {
            let dram_cycles = self.dram.access(addr);
            MemAccessOutcome {
                level: HitLevel::Dram,
                cycles: self.l1.config().hit_latency
                    + self.l2.config().hit_latency
                    + self.llc.config().hit_latency
                    + dram_cycles
                    + self.encryption_latency,
            }
        };
        self.cycles += outcome.cycles;
        outcome
    }

    /// Issues a page-table-walker reference: the PTW port bypasses the L1
    /// data cache (as in Rocket and BOOM, whose walkers refill from L2), so
    /// the lookup starts at L2 and never allocates into L1.
    pub fn access_ptw(&mut self, addr: PhysAddr) -> MemAccessOutcome {
        self.accesses += 1;
        let outcome = if self.l2.access(addr) {
            MemAccessOutcome {
                level: HitLevel::L2,
                cycles: self.l2.config().hit_latency,
            }
        } else if self.llc.access(addr) {
            MemAccessOutcome {
                level: HitLevel::Llc,
                cycles: self.l2.config().hit_latency + self.llc.config().hit_latency,
            }
        } else {
            let dram_cycles = self.dram.access(addr);
            MemAccessOutcome {
                level: HitLevel::Dram,
                cycles: self.l2.config().hit_latency
                    + self.llc.config().hit_latency
                    + dram_cycles
                    + self.encryption_latency,
            }
        };
        self.cycles += outcome.cycles;
        outcome
    }

    /// Checks (without side effects) at which level `addr` would hit.
    pub fn probe(&self, addr: PhysAddr) -> HitLevel {
        if self.l1.probe(addr) {
            HitLevel::L1
        } else if self.l2.probe(addr) {
            HitLevel::L2
        } else if self.llc.probe(addr) {
            HitLevel::Llc
        } else {
            HitLevel::Dram
        }
    }

    /// Drops the line containing `addr` from every level.
    pub fn invalidate(&mut self, addr: PhysAddr) {
        self.l1.invalidate(addr);
        self.l2.invalidate(addr);
        self.llc.invalidate(addr);
    }

    /// Empties all caches and closes all DRAM rows — the "cold" state used by
    /// the TC1 microbenchmark.
    pub fn flush_all(&mut self) {
        self.l1.invalidate_all();
        self.l2.invalidate_all();
        self.llc.invalidate_all();
        self.dram.precharge_all();
    }

    /// Aggregate counters since construction or the last
    /// [`MemSystem::reset_stats`].
    pub fn stats(&self) -> MemSystemStats {
        MemSystemStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
            dram: self.dram.stats(),
            accesses: self.accesses,
            cycles: self.cycles,
        }
    }

    /// Clears all counters without touching cache or row state.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.dram.reset_stats();
        self.accesses = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemSystem {
        MemSystem::new(MemSystemConfig::rocket())
    }

    #[test]
    fn miss_fills_all_levels() {
        let mut m = system();
        let a = PhysAddr::new(0x8000_0000);
        assert_eq!(m.access(a).level, HitLevel::Dram);
        assert_eq!(m.probe(a), HitLevel::L1);
    }

    #[test]
    fn latency_monotonic_in_level() {
        let mut m = system();
        let a = PhysAddr::new(0x8000_0000);
        let dram = m.access(a).cycles;
        let l1 = m.access(a).cycles;
        m.invalidate(a);
        m.access(a); // refill from DRAM (row may be open, still > L1)
        let l1_again = m.access(a).cycles;
        assert!(l1 < dram);
        assert_eq!(l1, l1_again);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = system();
        let target = PhysAddr::new(0x8000_0000);
        m.access(target);
        // Evict target from L1 by streaming over many conflicting lines.
        let l1_capacity = m.l1.config().capacity;
        for i in 1..=64u64 {
            m.access(PhysAddr::new(0x8000_0000 + i * l1_capacity));
        }
        let lvl = m.probe(target);
        assert!(
            lvl == HitLevel::L2 || lvl == HitLevel::Llc,
            "target should survive below L1"
        );
    }

    #[test]
    fn flush_all_returns_to_cold() {
        let mut m = system();
        let a = PhysAddr::new(0x8000_0000);
        m.access(a);
        m.flush_all();
        assert_eq!(m.probe(a), HitLevel::Dram);
        assert_eq!(m.access(a).level, HitLevel::Dram);
    }

    #[test]
    fn encryption_engine_adds_dram_latency_only() {
        let mut plain = system();
        let mut encrypted = MemSystem::new(MemSystemConfig::rocket().with_encryption(26));
        let a = PhysAddr::new(0x8000_0000);
        let cold_plain = plain.access(a).cycles;
        let cold_enc = encrypted.access(a).cycles;
        assert_eq!(cold_enc, cold_plain + 26, "engine taxes DRAM accesses");
        // Cache hits are unaffected (data is plaintext inside the SoC).
        assert_eq!(plain.access(a).cycles, encrypted.access(a).cycles);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = system();
        m.access(PhysAddr::new(0));
        m.access(PhysAddr::new(0));
        let s = m.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l1.misses, 1);
        assert!(s.cycles > 0);
        m.reset_stats();
        assert_eq!(m.stats().accesses, 0);
    }
}
