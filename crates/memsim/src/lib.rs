//! # hpmp-memsim
//!
//! The memory-system substrate for the HPMP (MICRO '23) reproduction: address
//! and permission primitives, a sparse physical-memory backing store, a
//! set-associative cache hierarchy, an open-row DRAM timing model, and core
//! timing parameters for the two SoCs the paper evaluates (RocketCore and
//! BOOM, per its Table 1).
//!
//! Everything above this crate (page-table walkers, PMP/PMP-Table checkers,
//! the Penglai monitor, the workload generators) expresses its behaviour as a
//! stream of physical references issued through [`MemSystem::access`]; the
//! latencies and hit levels returned here are what ultimately produce every
//! table and figure in the evaluation.
//!
//! ```
//! use hpmp_memsim::{MemSystem, MemSystemConfig, PhysAddr, HitLevel};
//!
//! let mut mem = MemSystem::new(MemSystemConfig::rocket());
//! let cold = mem.access(PhysAddr::new(0x8000_0000));
//! assert_eq!(cold.level, HitLevel::Dram);
//! assert_eq!(mem.access(PhysAddr::new(0x8000_0000)).level, HitLevel::L1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod cache;
mod config;
mod dram;
mod hash;
mod hierarchy;
mod perm;
mod physmem;
mod rng;
mod store;

pub use addr::{PhysAddr, VirtAddr, LINE_SHIFT, LINE_SIZE, PAGE_SHIFT, PAGE_SIZE};
pub use cache::{lines_spanned, Cache, CacheConfig, CacheStats, CacheStatsIds};
pub use config::{CoreKind, CoreModel};
pub use dram::{Dram, DramConfig, DramStats, DramStatsIds};
pub use hash::Fnv1a;
pub use hierarchy::{
    HitLevel, MemAccessOutcome, MemSystem, MemSystemConfig, MemSystemStats, MemSystemStatsIds,
};
pub use perm::{AccessKind, Perms, PrivMode};
pub use physmem::{FrameAllocator, PhysMem};
pub use rng::SplitMix64;
pub use store::WordStore;
