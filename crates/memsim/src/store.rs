//! Word-addressable storage abstraction.
//!
//! Page-table construction code works against [`WordStore`] rather than
//! [`crate::PhysMem`] directly, so the same code can build *guest* page
//! tables whose slots are addressed by guest-physical addresses: the
//! hypervisor layer supplies a store that translates through the nested page
//! table before touching host memory.

use crate::addr::PhysAddr;
use crate::physmem::PhysMem;

/// A 64-bit-word addressable memory.
pub trait WordStore {
    /// Reads the naturally-aligned word at `addr`.
    fn read_u64(&self, addr: PhysAddr) -> u64;
    /// Writes the naturally-aligned word at `addr`.
    fn write_u64(&mut self, addr: PhysAddr, value: u64);
    /// Zeroes the 4 KiB page based at `addr`.
    fn zero_page(&mut self, base: PhysAddr);
}

impl WordStore for PhysMem {
    fn read_u64(&self, addr: PhysAddr) -> u64 {
        PhysMem::read_u64(self, addr)
    }

    fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        PhysMem::write_u64(self, addr, value)
    }

    fn zero_page(&mut self, base: PhysAddr) {
        PhysMem::zero_page(self, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn through_dyn(store: &mut dyn WordStore) {
        store.write_u64(PhysAddr::new(0x1000), 99);
        assert_eq!(store.read_u64(PhysAddr::new(0x1000)), 99);
        store.zero_page(PhysAddr::new(0x1000));
        assert_eq!(store.read_u64(PhysAddr::new(0x1000)), 0);
    }

    #[test]
    fn physmem_is_a_word_store() {
        let mut mem = PhysMem::new();
        through_dyn(&mut mem);
    }
}
