//! Permissions and access kinds.
//!
//! A [`Perms`] value is the 3-bit R/W/X set used everywhere in the RISC-V
//! privileged architecture: in PTEs, in PMP configuration registers, and in
//! the PMP-Table entries introduced by HPMP. An [`AccessKind`] describes what
//! a memory reference is trying to do, and [`Perms::allows`] is the single
//! check used by every permission-enforcement point in the simulator.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A read/write/execute permission set (3 bits).
///
/// ```
/// use hpmp_memsim::{AccessKind, Perms};
/// let p = Perms::READ | Perms::WRITE;
/// assert!(p.allows(AccessKind::Write));
/// assert!(!p.allows(AccessKind::Fetch));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No permissions. An access matching this always faults.
    pub const NONE: Perms = Perms(0);
    /// Read permission (bit 0, matching the PMP `R` field).
    pub const READ: Perms = Perms(1 << 0);
    /// Write permission (bit 1, matching the PMP `W` field).
    pub const WRITE: Perms = Perms(1 << 1);
    /// Execute permission (bit 2, matching the PMP `X` field).
    pub const EXEC: Perms = Perms(1 << 2);
    /// Read + write.
    pub const RW: Perms = Perms(0b011);
    /// Read + execute.
    pub const RX: Perms = Perms(0b101);
    /// Read + write + execute.
    pub const RWX: Perms = Perms(0b111);

    /// Builds a permission set from its three component bits.
    #[inline]
    pub const fn new(read: bool, write: bool, exec: bool) -> Perms {
        Perms((read as u8) | ((write as u8) << 1) | ((exec as u8) << 2))
    }

    /// Reconstructs a permission set from the low 3 bits of `raw`.
    ///
    /// Extra high bits are ignored, mirroring how hardware decodes the
    /// R/W/X fields of a configuration register.
    #[inline]
    pub const fn from_bits_truncate(raw: u8) -> Perms {
        Perms(raw & 0b111)
    }

    /// Returns the raw 3-bit encoding (`X:W:R` from high to low).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// True if the set contains read permission.
    #[inline]
    pub const fn can_read(self) -> bool {
        self.0 & Self::READ.0 != 0
    }

    /// True if the set contains write permission.
    #[inline]
    pub const fn can_write(self) -> bool {
        self.0 & Self::WRITE.0 != 0
    }

    /// True if the set contains execute permission.
    #[inline]
    pub const fn can_exec(self) -> bool {
        self.0 & Self::EXEC.0 != 0
    }

    /// True if the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if every permission in `other` is also in `self`.
    #[inline]
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if this permission set satisfies the given access.
    #[inline]
    pub const fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.can_read(),
            AccessKind::Write => self.can_write(),
            AccessKind::Fetch => self.can_exec(),
        }
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Perms({}{}{})",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' },
        )
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' },
        )
    }
}

/// What a memory reference is trying to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load (`ld` and friends).
    Read,
    /// A data store (`sd` and friends).
    Write,
    /// An instruction fetch.
    Fetch,
}

impl AccessKind {
    /// The minimal permission set that satisfies this access.
    #[inline]
    pub const fn required_perms(self) -> Perms {
        match self {
            AccessKind::Read => Perms::READ,
            AccessKind::Write => Perms::WRITE,
            AccessKind::Fetch => Perms::EXEC,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Fetch => "fetch",
        })
    }
}

/// RISC-V privilege mode issuing an access.
///
/// HPMP (like PMP) applies to S-mode and U-mode accesses; M-mode (the secure
/// monitor) bypasses the checks unless locked entries are configured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrivMode {
    /// User mode.
    User,
    /// Supervisor mode (the OS kernel).
    Supervisor,
    /// Machine mode (the secure monitor).
    Machine,
}

impl fmt::Display for PrivMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrivMode::User => "U",
            PrivMode::Supervisor => "S",
            PrivMode::Machine => "M",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_composition() {
        assert_eq!(Perms::READ | Perms::WRITE, Perms::RW);
        assert_eq!((Perms::RWX & Perms::RX).bits(), Perms::RX.bits());
        assert_eq!(Perms::new(true, false, true), Perms::RX);
    }

    #[test]
    fn truncation_ignores_high_bits() {
        assert_eq!(Perms::from_bits_truncate(0xff), Perms::RWX);
        assert_eq!(Perms::from_bits_truncate(0b1000), Perms::NONE);
    }

    #[test]
    fn allows_matches_kind() {
        assert!(Perms::READ.allows(AccessKind::Read));
        assert!(!Perms::READ.allows(AccessKind::Write));
        assert!(!Perms::READ.allows(AccessKind::Fetch));
        assert!(Perms::RWX.allows(AccessKind::Fetch));
        assert!(!Perms::NONE.allows(AccessKind::Read));
    }

    #[test]
    fn contains_is_subset() {
        assert!(Perms::RWX.contains(Perms::RW));
        assert!(!Perms::RW.contains(Perms::RX));
        assert!(Perms::NONE.contains(Perms::NONE));
    }

    #[test]
    fn required_perms_round_trip() {
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Fetch] {
            assert!(kind.required_perms().allows(kind));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(format!("{:?}", Perms::RX), "Perms(r-x)");
        assert_eq!(PrivMode::Machine.to_string(), "M");
        assert_eq!(AccessKind::Fetch.to_string(), "fetch");
    }
}
