//! Canned configurations mirroring the paper's Table 1.
//!
//! Two simulated SoCs are provided: a RocketCore-like in-order core at 1 GHz
//! and a BOOM-like out-of-order core at 3.2 GHz, both in front of the same
//! 16 GiB DDR3-flavoured memory system.

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::hierarchy::MemSystemConfig;

impl MemSystemConfig {
    /// Memory system of the RocketCore SoC (Table 1): 16 KiB L1 D-cache,
    /// 512 KiB 8-way L2, 4 MiB LLC.
    pub fn rocket() -> MemSystemConfig {
        MemSystemConfig {
            l1: CacheConfig {
                capacity: 16 * 1024,
                ways: 4,
                line_size: 64,
                hit_latency: 2,
            },
            l2: CacheConfig {
                capacity: 512 * 1024,
                ways: 8,
                line_size: 64,
                hit_latency: 14,
            },
            llc: CacheConfig {
                capacity: 4 * 1024 * 1024,
                ways: 8,
                line_size: 64,
                hit_latency: 24,
            },
            dram: DramConfig::default(),
            encryption_latency: 0,
        }
    }

    /// Memory system of the BOOM SoC (Table 1): 32 KiB 8-way L1 D-cache,
    /// 512 KiB 8-way L2, 4 MiB 8-way LLC. DRAM wall-clock time is the same
    /// as Rocket's, but the 3.2 GHz core observes more cycles per access
    /// (moderated by FireSim's uncore clock ratio), which is why the paper's
    /// BOOM overheads exceed its Rocket overheads on the same workloads.
    pub fn boom() -> MemSystemConfig {
        MemSystemConfig {
            l1: CacheConfig {
                capacity: 32 * 1024,
                ways: 8,
                line_size: 64,
                hit_latency: 3,
            },
            l2: CacheConfig {
                capacity: 512 * 1024,
                ways: 8,
                line_size: 64,
                hit_latency: 16,
            },
            llc: CacheConfig {
                capacity: 4 * 1024 * 1024,
                ways: 8,
                line_size: 64,
                hit_latency: 28,
            },
            dram: DramConfig {
                row_hit_latency: 72,
                row_miss_latency: 144,
                ..DramConfig::default()
            },
            encryption_latency: 0,
        }
    }
}

impl MemSystemConfig {
    /// Returns a copy with the inline memory-encryption engine enabled at
    /// `latency` extra cycles per DRAM access (Penglai's physical-attack
    /// defence; ~26 cycles is typical for a pipelined AES-XTS at 1 GHz).
    pub fn with_encryption(mut self, latency: u64) -> MemSystemConfig {
        self.encryption_latency = latency;
        self
    }
}

/// Which core microarchitecture is being simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// RocketCore: 5-stage in-order scalar, 1 GHz.
    Rocket,
    /// SonicBOOM: 4-way superscalar out-of-order, 3.2 GHz.
    Boom,
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoreKind::Rocket => "Rocket",
            CoreKind::Boom => "BOOM",
        })
    }
}

/// Timing model of the core pipeline around the memory system.
///
/// The in-order Rocket serialises everything: an `ld` that walks costs the
/// sum of its reference latencies plus a fixed pipeline overhead. The
/// out-of-order BOOM hides part of each *cache-hit* latency under other work
/// but still serialises the pointer chase of a page/permission-table walk, so
/// DRAM latency is exposed in full; stores additionally pay a store-queue
/// drain when they miss, which is why the paper's `sd` overheads (77–175%)
/// exceed its `ld` overheads (39–91%).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreModel {
    /// Which microarchitecture these parameters describe.
    pub kind: CoreKind,
    /// Core clock in MHz (Rocket: 1000, BOOM: 3200).
    pub clock_mhz: u64,
    /// Fixed pipeline cycles added to any memory instruction.
    pub pipeline_overhead: u64,
    /// Fraction of *cache-hit* latency hidden by out-of-order overlap,
    /// in `[0, 1)`. Zero for an in-order core.
    pub hit_overlap: f64,
    /// Extra cycles a store pays when its line misses the L1 (store queue
    /// drain / write-allocate).
    pub store_miss_penalty: u64,
    /// Cycles per simple ALU instruction (IPC-derived).
    pub alu_cycles_per_inst: f64,
}

impl CoreModel {
    /// Parameters for the RocketCore SoC.
    pub fn rocket() -> CoreModel {
        CoreModel {
            kind: CoreKind::Rocket,
            clock_mhz: 1000,
            pipeline_overhead: 4,
            hit_overlap: 0.0,
            store_miss_penalty: 8,
            alu_cycles_per_inst: 1.0,
        }
    }

    /// Parameters for the BOOM SoC.
    pub fn boom() -> CoreModel {
        CoreModel {
            kind: CoreKind::Boom,
            clock_mhz: 3200,
            pipeline_overhead: 6,
            hit_overlap: 0.35,
            store_miss_penalty: 24,
            alu_cycles_per_inst: 0.4,
        }
    }

    /// The canonical model for a [`CoreKind`].
    pub fn for_kind(kind: CoreKind) -> CoreModel {
        match kind {
            CoreKind::Rocket => CoreModel::rocket(),
            CoreKind::Boom => CoreModel::boom(),
        }
    }

    /// Effective cycles the pipeline observes for a reference that was
    /// serviced in `raw_cycles`, where `was_hit` says whether it hit in some
    /// cache (overlappable) rather than DRAM (exposed).
    pub fn observed_ref_cycles(&self, raw_cycles: u64, was_hit: bool) -> u64 {
        if was_hit && self.hit_overlap > 0.0 {
            let hidden = (raw_cycles as f64 * self.hit_overlap) as u64;
            raw_cycles - hidden
        } else {
            raw_cycles
        }
    }

    /// Cycles consumed by `n` straight-line ALU instructions.
    pub fn alu_cycles(&self, n: u64) -> u64 {
        (n as f64 * self.alu_cycles_per_inst).ceil() as u64
    }

    /// Converts cycles to nanoseconds at this core's clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * 1000.0 / self.clock_mhz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::MemSystem;
    use crate::PhysAddr;

    #[test]
    fn canned_configs_are_consistent() {
        // Constructing the systems validates all geometry assertions.
        let _ = MemSystem::new(MemSystemConfig::rocket());
        let _ = MemSystem::new(MemSystemConfig::boom());
    }

    #[test]
    fn boom_l1_is_larger() {
        assert!(MemSystemConfig::boom().l1.capacity > MemSystemConfig::rocket().l1.capacity);
    }

    #[test]
    fn rocket_serialises_hits() {
        let m = CoreModel::rocket();
        assert_eq!(m.observed_ref_cycles(100, true), 100);
        assert_eq!(m.observed_ref_cycles(100, false), 100);
    }

    #[test]
    fn boom_overlaps_hits_only() {
        let m = CoreModel::boom();
        assert!(m.observed_ref_cycles(100, true) < 100);
        assert_eq!(m.observed_ref_cycles(100, false), 100);
    }

    #[test]
    fn alu_throughput() {
        assert_eq!(CoreModel::rocket().alu_cycles(10), 10);
        assert_eq!(CoreModel::boom().alu_cycles(10), 4);
    }

    #[test]
    fn clock_conversion() {
        assert_eq!(CoreModel::rocket().cycles_to_ns(1000), 1000.0);
        assert_eq!(CoreModel::boom().cycles_to_ns(3200), 1000.0);
    }

    #[test]
    fn cold_access_dominates_pipeline_overhead() {
        let mut m = MemSystem::new(MemSystemConfig::rocket());
        let cold = m.access(PhysAddr::new(0x8000_0000)).cycles;
        assert!(cold > CoreModel::rocket().pipeline_overhead);
    }
}
