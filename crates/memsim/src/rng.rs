//! A tiny deterministic PRNG for workload generation.
//!
//! The workload generators need reproducible pseudo-random access streams
//! (the determinism tests and `repro`'s parallel fan-out depend on it), not
//! cryptographic quality. SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA '14) is the standard seeding
//! primitive: one 64-bit state word, passes BigCrush, and is trivially
//! portable — which keeps the workspace free of external crate
//! dependencies so it builds offline.

use std::ops::Range;

/// A seedable SplitMix64 generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let span = range
            .end
            .checked_sub(range.start)
            .expect("descending range");
        assert!(span > 0, "empty range");
        // Multiply-shift mapping (Lemire); the bias over a 64-bit draw is
        // far below anything a cycle model can observe.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_guards_the_algorithm() {
        // Reference values for SplitMix64 with seed 1234567.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 0x599e_d017_fb08_fc85);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen_low = false;
        for _ in 0..2000 {
            let v = rng.gen_range(10..18);
            assert!((10..18).contains(&v));
            seen_low |= v == 10;
        }
        assert!(seen_low, "range endpoints must be reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "≈25% expected, got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
