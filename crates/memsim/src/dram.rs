//! DRAM timing model.
//!
//! A deliberately small FR-FCFS-flavoured model: per-bank open rows, with a
//! cheaper latency when an access hits the currently open row and a full
//! activate+CAS penalty when it does not. The defaults approximate the
//! DDR3 configuration in the paper's Table 1 (14-14-14 at a 1 GHz memory
//! clock, quad rank, 8 banks per rank).

use crate::addr::PhysAddr;

/// Configuration of the DRAM model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (across all ranks).
    pub banks: usize,
    /// Bytes per DRAM row (row-buffer reach).
    pub row_bytes: u64,
    /// Latency of a row-buffer hit, in core cycles.
    pub row_hit_latency: u64,
    /// Latency of a row-buffer miss (precharge + activate + CAS), in core
    /// cycles.
    pub row_miss_latency: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            banks: 32,
            row_bytes: 8192,
            row_hit_latency: 40,
            row_miss_latency: 80,
        }
    }
}

/// Per-DRAM counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that required activating a new row.
    pub row_misses: u64,
}

impl DramStats {
    /// Publishes the counters into `reg` under `prefix`.
    pub fn export(&self, reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) {
        let ids = DramStatsIds::wire(reg, prefix);
        self.store(reg, &ids);
    }

    /// Publishes the counters through handles wired by
    /// [`DramStatsIds::wire`].
    pub fn store(&self, reg: &mut hpmp_trace::MetricsRegistry, ids: &DramStatsIds) {
        reg.store(ids.row_hits, self.row_hits);
        reg.store(ids.row_misses, self.row_misses);
    }
}

/// Interned counter handles for publishing [`DramStats`] repeatedly
/// without re-formatting names.
#[derive(Clone, Copy, Debug)]
pub struct DramStatsIds {
    row_hits: hpmp_trace::CounterId,
    row_misses: hpmp_trace::CounterId,
}

impl DramStatsIds {
    /// Intern the counter names under `prefix` once.
    pub fn wire(reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) -> DramStatsIds {
        DramStatsIds {
            row_hits: reg.counter(format!("{prefix}.row_hits")),
            row_misses: reg.counter(format!("{prefix}.row_misses")),
        }
    }
}

/// Open-row DRAM timing model.
///
/// ```
/// use hpmp_memsim::{Dram, DramConfig, PhysAddr};
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.access(PhysAddr::new(0x8000_0000));
/// let second = d.access(PhysAddr::new(0x8000_0040)); // same row
/// assert!(second < first);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Builds a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `row_bytes` is not a power of two.
    pub fn new(config: DramConfig) -> Dram {
        assert!(config.banks > 0, "DRAM needs at least one bank");
        assert!(
            config.row_bytes.is_power_of_two(),
            "row size must be a power of two"
        );
        Dram {
            config,
            open_rows: vec![None; config.banks],
            stats: DramStats::default(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Services one access, returning its latency in core cycles and
    /// updating the open-row state.
    pub fn access(&mut self, addr: PhysAddr) -> u64 {
        let row = addr.raw() / self.config.row_bytes;
        // Interleave consecutive rows across banks.
        let bank = (row % self.config.banks as u64) as usize;
        if self.open_rows[bank] == Some(row) {
            self.stats.row_hits += 1;
            self.config.row_hit_latency
        } else {
            self.stats.row_misses += 1;
            self.open_rows[bank] = Some(row);
            self.config.row_miss_latency
        }
    }

    /// Closes all open rows (e.g. after a long idle period).
    pub fn precharge_all(&mut self) {
        self.open_rows.iter_mut().for_each(|r| *r = None);
    }

    /// Row-hit/row-miss counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Clears the counters without touching row state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper() {
        let mut d = Dram::new(DramConfig::default());
        let miss = d.access(PhysAddr::new(0));
        let hit = d.access(PhysAddr::new(64));
        assert_eq!(miss, d.config().row_miss_latency);
        assert_eq!(hit, d.config().row_hit_latency);
        assert_eq!(
            d.stats(),
            DramStats {
                row_hits: 1,
                row_misses: 1
            }
        );
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let cfg = DramConfig {
            banks: 2,
            row_bytes: 4096,
            ..DramConfig::default()
        };
        let mut d = Dram::new(cfg);
        d.access(PhysAddr::new(0)); // row 0 -> bank 0
        d.access(PhysAddr::new(2 * 4096)); // row 2 -> bank 0, conflicts
        let third = d.access(PhysAddr::new(0)); // row 0 again -> miss
        assert_eq!(third, cfg.row_miss_latency);
    }

    #[test]
    fn banks_are_independent() {
        let cfg = DramConfig {
            banks: 2,
            row_bytes: 4096,
            ..DramConfig::default()
        };
        let mut d = Dram::new(cfg);
        d.access(PhysAddr::new(0)); // row 0 -> bank 0
        d.access(PhysAddr::new(4096)); // row 1 -> bank 1
        assert_eq!(d.access(PhysAddr::new(8)), cfg.row_hit_latency);
        assert_eq!(d.access(PhysAddr::new(4096 + 8)), cfg.row_hit_latency);
    }

    #[test]
    fn precharge_closes_rows() {
        let mut d = Dram::new(DramConfig::default());
        d.access(PhysAddr::new(0));
        d.precharge_all();
        assert_eq!(d.access(PhysAddr::new(0)), d.config().row_miss_latency);
    }
}
