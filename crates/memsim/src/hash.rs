//! A deterministic, platform-stable hasher for state fingerprints.
//!
//! The bounded model checker canonicalizes simulator states by a 64-bit
//! fingerprint and prunes branches that reconverge on one already explored.
//! `std`'s default hasher is keyed per-process, so its output cannot be used
//! as a cross-run-stable fingerprint (the checker's explored/pruned counts
//! must be byte-identical between runs and machines). FNV-1a over an
//! explicitly little-endian byte stream is stable everywhere, fast enough
//! for the few kilobytes of logical state a fingerprint covers, and — like
//! [`crate::SplitMix64`] — keeps the workspace free of external crates.

use std::hash::Hasher;

/// 64-bit FNV-1a, implementing [`std::hash::Hasher`].
///
/// Fingerprint writers must only feed it fixed-width integers via the
/// `write_uXX` methods (which this impl routes through little-endian byte
/// serialization) or raw byte slices; never `write_usize` with
/// platform-dependent values.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the standard FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        // Widen to u64 so 32- and 64-bit hosts agree.
        self.write(&(v as u64).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_guards_the_algorithm() {
        // FNV-1a reference vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn integer_writes_are_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_usize(0x0102_0304);
        let mut d = Fnv1a::new();
        d.write_u64(0x0102_0304);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn order_and_content_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
