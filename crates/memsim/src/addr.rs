//! Address newtypes shared by every layer of the simulator.
//!
//! Physical and virtual addresses are both 64-bit quantities on RV64, but
//! confusing them is one of the easiest ways to corrupt a simulated walk, so
//! they are distinct types ([`PhysAddr`] and [`VirtAddr`]).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of a base page in bytes (RISC-V 4 KiB).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a cache line in bytes.
pub const LINE_SIZE: u64 = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the 4 KiB page number containing this address.
            #[inline]
            pub const fn page_number(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Returns the byte offset within the 4 KiB page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Returns the address rounded down to its page base.
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(self.0 & !(PAGE_SIZE - 1))
            }

            /// Returns the cache-line number containing this address.
            #[inline]
            pub const fn line_number(self) -> u64 {
                self.0 >> LINE_SHIFT
            }

            /// Returns the address rounded down to its cache-line base.
            #[inline]
            pub const fn line_base(self) -> Self {
                Self(self.0 & !(LINE_SIZE - 1))
            }

            /// True if the address is aligned to `align` bytes
            /// (`align` must be a power of two).
            #[inline]
            pub const fn is_aligned(self, align: u64) -> bool {
                debug_assert!(align.is_power_of_two());
                self.0 & (align - 1) == 0
            }

            /// Returns the address rounded down to a multiple of `align`
            /// (`align` must be a power of two).
            #[inline]
            pub const fn align_down(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self(self.0 & !(align - 1))
            }

            /// Returns the address rounded up to a multiple of `align`
            /// (`align` must be a power of two).
            #[inline]
            pub const fn align_up(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self((self.0 + align - 1) & !(align - 1))
            }

            /// Offset of this address from `base`, in bytes.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `self < base`.
            #[inline]
            pub fn offset_from(self, base: Self) -> u64 {
                debug_assert!(self.0 >= base.0, "offset_from underflow");
                self.0 - base.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<u64> for $name {
            type Output = Self;
            fn sub(self, rhs: u64) -> Self {
                Self(self.0 - rhs)
            }
        }
    };
}

addr_type! {
    /// A physical address.
    ///
    /// ```
    /// use hpmp_memsim::PhysAddr;
    /// let pa = PhysAddr::new(0x8000_1234);
    /// assert_eq!(pa.page_number(), 0x8_0001);
    /// assert_eq!(pa.page_offset(), 0x234);
    /// ```
    PhysAddr
}

addr_type! {
    /// A virtual address.
    ///
    /// ```
    /// use hpmp_memsim::VirtAddr;
    /// let va = VirtAddr::new(0x0000_003f_ffff_f000);
    /// assert!(va.is_aligned(4096));
    /// ```
    VirtAddr
}

impl VirtAddr {
    /// Extracts the 9-bit virtual page number field for page-table `level`
    /// (RISC-V Sv39/48/57 convention: level 0 is the leaf).
    ///
    /// ```
    /// use hpmp_memsim::VirtAddr;
    /// let va = VirtAddr::new(0x1_2345_6789);
    /// assert_eq!(va.vpn(0), (0x1_2345_6789u64 >> 12) & 0x1ff);
    /// ```
    #[inline]
    pub const fn vpn(self, level: usize) -> u64 {
        (self.0 >> (PAGE_SHIFT as usize + 9 * level)) & 0x1ff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let pa = PhysAddr::new(0x8000_1fff);
        assert_eq!(pa.page_number(), 0x8_0001);
        assert_eq!(pa.page_offset(), 0xfff);
        assert_eq!(pa.page_base(), PhysAddr::new(0x8000_1000));
    }

    #[test]
    fn line_arithmetic() {
        let pa = PhysAddr::new(0x1043);
        assert_eq!(pa.line_number(), 0x41);
        assert_eq!(pa.line_base(), PhysAddr::new(0x1040));
    }

    #[test]
    fn alignment() {
        let pa = PhysAddr::new(0x12345);
        assert!(!pa.is_aligned(0x1000));
        assert_eq!(pa.align_down(0x1000), PhysAddr::new(0x12000));
        assert_eq!(pa.align_up(0x1000), PhysAddr::new(0x13000));
        assert_eq!(
            PhysAddr::new(0x12000).align_up(0x1000),
            PhysAddr::new(0x12000)
        );
    }

    #[test]
    fn vpn_extraction() {
        // VA = vpn2:vpn1:vpn0:offset = 5 : 7 : 9 : 0x123
        let raw = (5u64 << 30) | (7 << 21) | (9 << 12) | 0x123;
        let va = VirtAddr::new(raw);
        assert_eq!(va.vpn(2), 5);
        assert_eq!(va.vpn(1), 7);
        assert_eq!(va.vpn(0), 9);
        assert_eq!(va.page_offset(), 0x123);
    }

    #[test]
    fn arithmetic_ops() {
        let mut pa = PhysAddr::new(0x1000);
        pa += 0x10;
        assert_eq!((pa + 0x10).raw(), 0x1020);
        assert_eq!((pa - 0x10).raw(), 0x1000);
        assert_eq!(pa.offset_from(PhysAddr::new(0x1000)), 0x10);
    }

    #[test]
    fn display_and_debug() {
        let pa = PhysAddr::new(0xdead);
        assert_eq!(format!("{pa}"), "0xdead");
        assert_eq!(format!("{pa:?}"), "PhysAddr(0xdead)");
        assert_eq!(format!("{pa:x}"), "dead");
    }
}
