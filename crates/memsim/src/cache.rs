//! Set-associative cache model.
//!
//! The simulator tracks *presence* of cache lines (tags only, no data — data
//! lives in [`crate::PhysMem`]) with true LRU replacement. This is enough to
//! decide, for every memory reference a walk performs, at which level of the
//! hierarchy it hits, which is what determines the latencies the paper
//! measures.

use crate::addr::{PhysAddr, LINE_SHIFT};

/// Configuration of a single cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set). `1` = direct mapped.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_size: u64,
    /// Latency of a hit at this level, in core cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways * line_size`, or the set count is not a power of two).
    pub fn sets(&self) -> usize {
        let sets = self.capacity / (self.ways as u64 * self.line_size);
        assert!(sets > 0, "cache too small for its geometry");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets as usize
    }
}

/// Per-cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`, or 0 if no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Publishes the counters into `reg` under `prefix` (as
    /// `<prefix>.hits` and `<prefix>.misses`).
    pub fn export(&self, reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) {
        let ids = CacheStatsIds::wire(reg, prefix);
        self.store(reg, &ids);
    }

    /// Publishes the counters through handles wired by
    /// [`CacheStatsIds::wire`].
    pub fn store(&self, reg: &mut hpmp_trace::MetricsRegistry, ids: &CacheStatsIds) {
        reg.store(ids.hits, self.hits);
        reg.store(ids.misses, self.misses);
    }
}

/// Interned counter handles for publishing [`CacheStats`] repeatedly
/// without re-formatting names.
#[derive(Clone, Copy, Debug)]
pub struct CacheStatsIds {
    hits: hpmp_trace::CounterId,
    misses: hpmp_trace::CounterId,
}

impl CacheStatsIds {
    /// Intern the counter names under `prefix` once.
    pub fn wire(reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) -> CacheStatsIds {
        CacheStatsIds {
            hits: reg.counter(format!("{prefix}.hits")),
            misses: reg.counter(format!("{prefix}.misses")),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    valid: bool,
    tag: u64,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative, true-LRU, tags-only cache.
///
/// ```
/// use hpmp_memsim::{Cache, CacheConfig, PhysAddr};
/// let mut c = Cache::new(CacheConfig {
///     capacity: 4096, ways: 2, line_size: 64, hit_latency: 2,
/// });
/// let a = PhysAddr::new(0x1000);
/// assert!(!c.access(a)); // cold miss, line filled
/// assert!(c.access(a));  // now hits
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways >= 1, "cache needs at least one way");
        let sets = config.sets();
        Cache {
            config,
            sets: vec![vec![Way::default(); config.ways]; sets],
            set_mask: sets as u64 - 1,
            line_shift: config.line_size.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Looks up `addr`, filling the line on a miss (allocate-on-miss).
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        self.clock += 1;
        let clock = self.clock;
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("cache has at least one way");
        *victim = Way {
            valid: true,
            tag,
            lru: clock,
        };
        false
    }

    /// Checks whether `addr` is present without touching LRU state or stats.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates the line containing `addr`, if present.
    pub fn invalidate(&mut self, addr: PhysAddr) {
        let (set, tag) = self.index(addr);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.valid = false;
            }
        }
    }

    /// Invalidates the entire cache (e.g. on a simulated flush).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
            }
        }
    }

    /// Hit/miss counters accumulated since construction (or the last
    /// [`Cache::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the hit/miss counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.raw() >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }
}

/// Returns the number of distinct cache lines touched by the byte range
/// `[addr, addr + len)` — useful for modelling multi-line objects.
pub fn lines_spanned(addr: PhysAddr, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = addr.raw() >> LINE_SHIFT;
    let last = (addr.raw() + len - 1) >> LINE_SHIFT;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B.
        Cache::new(CacheConfig {
            capacity: 256,
            ways: 2,
            line_size: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let a = PhysAddr::new(0x40);
        assert!(!c.access(a));
        assert!(c.access(a));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn same_line_shares_entry() {
        let mut c = tiny();
        assert!(!c.access(PhysAddr::new(0x100)));
        assert!(c.access(PhysAddr::new(0x13f))); // same 64B line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: 0x000, 0x080, 0x100 (stride = sets*line = 128).
        c.access(PhysAddr::new(0x000));
        c.access(PhysAddr::new(0x080));
        c.access(PhysAddr::new(0x000)); // refresh 0x000
        c.access(PhysAddr::new(0x100)); // evicts 0x080
        assert!(c.probe(PhysAddr::new(0x000)));
        assert!(!c.probe(PhysAddr::new(0x080)));
        assert!(c.probe(PhysAddr::new(0x100)));
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = tiny();
        c.access(PhysAddr::new(0x000));
        let stats = c.stats();
        assert!(c.probe(PhysAddr::new(0x000)));
        assert!(!c.probe(PhysAddr::new(0x080)));
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn invalidate_single_and_all() {
        let mut c = tiny();
        c.access(PhysAddr::new(0x000));
        c.access(PhysAddr::new(0x040));
        c.invalidate(PhysAddr::new(0x000));
        assert!(!c.probe(PhysAddr::new(0x000)));
        assert!(c.probe(PhysAddr::new(0x040)));
        c.invalidate_all();
        assert!(!c.probe(PhysAddr::new(0x040)));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            capacity: 128,
            ways: 1,
            line_size: 64,
            hit_latency: 1,
        });
        c.access(PhysAddr::new(0x000));
        c.access(PhysAddr::new(0x080)); // maps to same set, evicts
        assert!(!c.probe(PhysAddr::new(0x000)));
    }

    #[test]
    fn spanned_lines() {
        assert_eq!(lines_spanned(PhysAddr::new(0x00), 0), 0);
        assert_eq!(lines_spanned(PhysAddr::new(0x00), 1), 1);
        assert_eq!(lines_spanned(PhysAddr::new(0x3f), 2), 2);
        assert_eq!(lines_spanned(PhysAddr::new(0x00), 129), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig {
            capacity: 192,
            ways: 1,
            line_size: 64,
            hit_latency: 1,
        });
    }
}
