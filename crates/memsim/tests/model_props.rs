//! Randomised tests: the cache and DRAM models against simple reference
//! implementations, driven by the in-repo [`SplitMix64`] PRNG with fixed
//! seeds (deterministic and reproducible; one historical proptest shrink is
//! kept as an explicit regression case).

use hpmp_memsim::{Cache, CacheConfig, Dram, DramConfig, PhysAddr, SplitMix64};
use std::collections::VecDeque;

/// Reference LRU cache: a bounded deque of line numbers per set.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        let sets = config.sets();
        RefCache {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            ways: config.ways,
            line_shift: config.line_size.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        let tag = line >> self.set_mask.count_ones();
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.push_back(tag);
            true
        } else {
            if set.len() == self.ways {
                set.pop_front();
            }
            set.push_back(tag);
            false
        }
    }
}

#[test]
fn cache_matches_reference_lru() {
    let configs = [
        CacheConfig {
            capacity: 512,
            ways: 2,
            line_size: 64,
            hit_latency: 1,
        },
        CacheConfig {
            capacity: 1024,
            ways: 4,
            line_size: 64,
            hit_latency: 1,
        },
        CacheConfig {
            capacity: 256,
            ways: 1,
            line_size: 32,
            hit_latency: 1,
        },
    ];
    let mut rng = SplitMix64::seed_from_u64(0xca5e);
    for round in 0..96 {
        let config = configs[round % configs.len()];
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        let len = rng.gen_range(1..400) as usize;
        for _ in 0..len {
            let addr = rng.gen_range(0..0x8000);
            let got = cache.access(PhysAddr::new(addr));
            let want = reference.access(addr);
            assert_eq!(got, want, "divergence at {addr:#x}");
        }
    }
}

fn check_invalidate_is_precise(warm: &[u64], victim: u64) {
    let config = CacheConfig {
        capacity: 4096,
        ways: 4,
        line_size: 64,
        hit_latency: 1,
    };
    let mut cache = Cache::new(config);
    for &a in warm {
        cache.access(PhysAddr::new(a));
    }
    // Snapshot presence before invalidation (capacity eviction may have
    // already removed some warm lines, which is fine).
    let present: Vec<u64> = warm
        .iter()
        .copied()
        .filter(|&a| cache.probe(PhysAddr::new(a)))
        .collect();
    cache.invalidate(PhysAddr::new(victim));
    assert!(!cache.probe(PhysAddr::new(victim)));
    // Only the victim's line may disappear.
    for &a in &present {
        if a >> 6 != victim >> 6 {
            assert!(
                cache.probe(PhysAddr::new(a)),
                "unrelated line {a:#x} evicted by invalidate"
            );
        }
    }
}

#[test]
fn invalidate_is_precise() {
    let mut rng = SplitMix64::seed_from_u64(0x14a1);
    for _ in 0..128 {
        let len = rng.gen_range(1..64) as usize;
        let warm: Vec<u64> = (0..len).map(|_| rng.gen_range(0..0x2000)).collect();
        let victim = rng.gen_range(0..0x2000);
        check_invalidate_is_precise(&warm, victim);
    }
}

/// Regression: historical proptest shrink — invalidating address 0 while
/// lines sharing its set are warm must not evict them.
#[test]
fn invalidate_address_zero_regression() {
    check_invalidate_is_precise(&[7104, 3008, 960, 1984, 6080], 0);
}

#[test]
fn dram_row_behaviour() {
    let mut rng = SplitMix64::seed_from_u64(0xd4a8);
    for _ in 0..64 {
        let config = DramConfig {
            banks: 4,
            row_bytes: 2048,
            row_hit_latency: 10,
            row_miss_latency: 50,
        };
        let mut dram = Dram::new(config);
        let mut total = 0u64;
        let len = rng.gen_range(1..100) as usize;
        let rows: Vec<u64> = (0..len).map(|_| rng.gen_range(0..64)).collect();
        for &row in &rows {
            let lat1 = dram.access(PhysAddr::new(row * 2048));
            let lat2 = dram.access(PhysAddr::new(row * 2048 + 64));
            assert!(lat1 == 10 || lat1 == 50);
            assert_eq!(lat2, 10, "second access in a row must row-hit");
            total += 2;
        }
        let stats = dram.stats();
        assert_eq!(stats.row_hits + stats.row_misses, total);
        assert!(stats.row_hits >= rows.len() as u64);
    }
}
