//! Property tests: the cache and DRAM models against simple reference
//! implementations.

use hpmp_memsim::{Cache, CacheConfig, Dram, DramConfig, PhysAddr};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU cache: a bounded deque of line numbers per set.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        let sets = config.sets();
        RefCache {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            ways: config.ways,
            line_shift: config.line_size.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        let tag = line >> self.set_mask.count_ones();
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.push_back(tag);
            true
        } else {
            if set.len() == self.ways {
                set.pop_front();
            }
            set.push_back(tag);
            false
        }
    }
}

proptest! {
    /// The tags-only cache agrees with the reference LRU model on arbitrary
    /// access streams, for several geometries.
    #[test]
    fn cache_matches_reference_lru(
        geometry in 0usize..3,
        stream in prop::collection::vec(0u64..0x8000, 1..400),
    ) {
        let config = [
            CacheConfig { capacity: 512, ways: 2, line_size: 64, hit_latency: 1 },
            CacheConfig { capacity: 1024, ways: 4, line_size: 64, hit_latency: 1 },
            CacheConfig { capacity: 256, ways: 1, line_size: 32, hit_latency: 1 },
        ][geometry];
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        for &addr in &stream {
            let got = cache.access(PhysAddr::new(addr));
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at {:#x}", addr);
        }
    }

    /// Invalidate removes exactly the requested line.
    #[test]
    fn invalidate_is_precise(
        warm in prop::collection::vec(0u64..0x2000, 1..64),
        victim in 0u64..0x2000,
    ) {
        let config = CacheConfig { capacity: 4096, ways: 4, line_size: 64, hit_latency: 1 };
        let mut cache = Cache::new(config);
        for &a in &warm {
            cache.access(PhysAddr::new(a));
        }
        // Snapshot presence before invalidation (capacity eviction may have
        // already removed some warm lines, which is fine).
        let present: Vec<u64> =
            warm.iter().copied().filter(|&a| cache.probe(PhysAddr::new(a))).collect();
        cache.invalidate(PhysAddr::new(victim));
        prop_assert!(!cache.probe(PhysAddr::new(victim)));
        // Only the victim's line may disappear.
        for &a in &present {
            if a >> 6 != victim >> 6 {
                prop_assert!(cache.probe(PhysAddr::new(a)),
                             "unrelated line {:#x} evicted by invalidate", a);
            }
        }
    }

    /// DRAM: consecutive accesses within one row always row-hit; the stats
    /// add up; latency is one of the two configured values.
    #[test]
    fn dram_row_behaviour(rows in prop::collection::vec(0u64..64, 1..100)) {
        let config = DramConfig { banks: 4, row_bytes: 2048, row_hit_latency: 10,
                                  row_miss_latency: 50 };
        let mut dram = Dram::new(config);
        let mut total = 0u64;
        for &row in &rows {
            let lat1 = dram.access(PhysAddr::new(row * 2048));
            let lat2 = dram.access(PhysAddr::new(row * 2048 + 64));
            prop_assert!(lat1 == 10 || lat1 == 50);
            prop_assert_eq!(lat2, 10, "second access in a row must row-hit");
            total += 2;
        }
        let stats = dram.stats();
        prop_assert_eq!(stats.row_hits + stats.row_misses, total);
        prop_assert!(stats.row_hits >= rows.len() as u64);
    }
}
