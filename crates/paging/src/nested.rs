//! Nested (two-stage) translation for the virtualized environment (§6).
//!
//! With the hypervisor extension a guest access goes through a 3-D walk:
//! guest page table (vsatp, Sv39) × nested page table (hgatp, Sv39x4) ×
//! permission table. Figure 8 of the paper enumerates the resulting 16
//! memory references; [`nested_walk`] reproduces that exact sequence, with a
//! G-stage TLB and a guest-stage walk cache shortening it for the warm cases
//! of Figure 13.

use hpmp_memsim::{PhysAddr, PhysMem, VirtAddr, WordStore, PAGE_SHIFT, PAGE_SIZE};

use crate::pwc::WalkCache;
use crate::space::{AddressSpace, MapError, PtFrameSource, Translation};
use crate::tlb::{Tlb, TlbEntry};
use crate::Pte;

/// A guest-physical address (the output of the guest page table, the input
/// of the nested page table).
pub type GuestPhysAddr = PhysAddr;

/// The nested page table (hgatp, Sv39x4): maps guest-physical to
/// host-physical addresses.
///
/// Sv39x4 widens the root index by two bits, making the root table four
/// contiguous pages (16 KiB); lower levels are ordinary Sv39 tables.
#[derive(Debug)]
pub struct NestedPageTable {
    root: PhysAddr,
    pt_pages: Vec<PhysAddr>,
    mapped_pages: u64,
}

impl NestedPageTable {
    /// Number of levels in the nested table.
    pub const LEVELS: usize = 3;

    /// Creates an empty nested page table; allocates the 4-page root.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::OutOfPtFrames`] if the frame source cannot supply
    /// four contiguous-equivalent root frames.
    pub fn new(
        mem: &mut dyn WordStore,
        frames: &mut dyn PtFrameSource,
    ) -> Result<NestedPageTable, MapError> {
        let mut pages = Vec::with_capacity(4);
        for _ in 0..4 {
            let frame = frames.alloc_pt_frame().ok_or(MapError::OutOfPtFrames)?;
            mem.zero_page(frame);
            pages.push(frame);
        }
        // Sv39x4 requires the root to be 16 KiB-aligned and contiguous; the
        // monitor's PT pools hand out consecutive frames, which we verify.
        for w in pages.windows(2) {
            assert_eq!(
                w[1].raw(),
                w[0].raw() + PAGE_SIZE,
                "Sv39x4 root requires 4 contiguous frames"
            );
        }
        Ok(NestedPageTable {
            root: pages[0],
            pt_pages: pages,
            mapped_pages: 0,
        })
    }

    /// Host-physical base of the (16 KiB) root.
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// All nested-PT pages, root pages first.
    pub fn pt_pages(&self) -> &[PhysAddr] {
        &self.pt_pages
    }

    /// Number of guest pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Maps one 4 KiB guest-physical page to a host frame.
    ///
    /// # Errors
    ///
    /// Fails on re-mapping, exhausted frames, or a guest-physical address
    /// beyond the 41-bit Sv39x4 input space.
    pub fn map_page(
        &mut self,
        mem: &mut dyn WordStore,
        frames: &mut dyn PtFrameSource,
        gpa: GuestPhysAddr,
        hpa: PhysAddr,
        writable: bool,
    ) -> Result<(), MapError> {
        if gpa.raw() >> 41 != 0 {
            return Err(MapError::NonCanonical(VirtAddr::new(gpa.raw())));
        }
        let mut table = self.slot_table_for_root(gpa);
        let mut level = Self::LEVELS - 1;
        while level > 0 {
            let slot = Self::pte_addr(table, gpa, level);
            let pte = Pte::from_bits(mem.read_u64(slot));
            if pte.is_leaf() {
                return Err(MapError::HugePageConflict(VirtAddr::new(gpa.raw())));
            }
            table = if pte.is_table() {
                pte.target()
            } else {
                let frame = frames.alloc_pt_frame().ok_or(MapError::OutOfPtFrames)?;
                mem.zero_page(frame);
                mem.write_u64(slot, Pte::table(frame).to_bits());
                self.pt_pages.push(frame);
                frame
            };
            level -= 1;
        }
        let slot = Self::pte_addr(table, gpa, 0);
        if Pte::from_bits(mem.read_u64(slot)).is_valid() {
            return Err(MapError::AlreadyMapped(VirtAddr::new(gpa.raw())));
        }
        let perms = if writable {
            hpmp_memsim::Perms::RWX
        } else {
            hpmp_memsim::Perms::RX
        };
        mem.write_u64(slot, Pte::leaf(hpa, perms, true).to_bits());
        self.mapped_pages += 1;
        Ok(())
    }

    /// Software G-stage walk: translates `gpa` without timing.
    pub fn translate(&self, mem: &dyn WordStore, gpa: GuestPhysAddr) -> Option<PhysAddr> {
        self.walk_refs(mem, gpa).1
    }

    /// Performs the G-stage walk, returning the host-physical addresses of
    /// every nested PTE read (root → leaf) and the final translation.
    pub fn walk_refs(
        &self,
        mem: &dyn WordStore,
        gpa: GuestPhysAddr,
    ) -> (Vec<(usize, PhysAddr)>, Option<PhysAddr>) {
        let mut refs = Vec::with_capacity(Self::LEVELS);
        if gpa.raw() >> 41 != 0 {
            return (refs, None);
        }
        let mut table = self.slot_table_for_root(gpa);
        let mut level = Self::LEVELS - 1;
        loop {
            let slot = Self::pte_addr(table, gpa, level);
            refs.push((level, slot));
            let pte = Pte::from_bits(mem.read_u64(slot));
            if pte.is_leaf() {
                let span = 1u64 << (PAGE_SHIFT as usize + 9 * level);
                let offset = gpa.raw() & (span - 1);
                return (refs, Some(PhysAddr::new(pte.target().raw() + offset)));
            }
            if !pte.is_table() || level == 0 {
                return (refs, None);
            }
            table = pte.target();
            level -= 1;
        }
    }

    /// Sv39x4: the two extra root-index bits select one of the four root
    /// pages; the in-page index is the usual 9-bit VPN\[2\].
    fn slot_table_for_root(&self, gpa: GuestPhysAddr) -> PhysAddr {
        let wide = (gpa.raw() >> 39) & 0b11;
        PhysAddr::new(self.root.raw() + wide * PAGE_SIZE)
    }

    fn pte_addr(table: PhysAddr, gpa: GuestPhysAddr, level: usize) -> PhysAddr {
        let idx = (gpa.raw() >> (PAGE_SHIFT as usize + 9 * level)) & 0x1ff;
        PhysAddr::new(table.raw() + idx * 8)
    }
}

/// A view of guest-physical memory: reads and writes are translated through
/// the nested page table before touching host memory. Used to *construct*
/// guest page tables whose slots are guest-physical addresses.
#[derive(Debug)]
pub struct GuestView<'a> {
    mem: &'a mut PhysMem,
    npt: &'a NestedPageTable,
}

impl<'a> GuestView<'a> {
    /// Wraps host memory with G-stage translation.
    pub fn new(mem: &'a mut PhysMem, npt: &'a NestedPageTable) -> GuestView<'a> {
        GuestView { mem, npt }
    }

    fn host(&self, gpa: GuestPhysAddr) -> PhysAddr {
        self.npt
            .translate(self.mem, gpa)
            .unwrap_or_else(|| panic!("guest-physical address {gpa} not mapped in NPT"))
    }
}

impl WordStore for GuestView<'_> {
    fn read_u64(&self, addr: PhysAddr) -> u64 {
        let hpa = self.host(addr);
        self.mem.read_u64(hpa)
    }

    fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        let hpa = self.host(addr);
        self.mem.write_u64(hpa, value)
    }

    fn zero_page(&mut self, base: PhysAddr) {
        let hpa = self.host(base);
        self.mem.zero_page(hpa)
    }
}

/// Kind of memory reference performed during a nested walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NestedRefKind {
    /// A nested-page-table PTE read (the `nL*` squares of Figure 8).
    NestedPt {
        /// NPT level of the PTE.
        level: usize,
    },
    /// A guest-page-table PTE read (the `gL*` circles of Figure 8).
    GuestPt {
        /// Guest PT level of the PTE.
        level: usize,
    },
}

/// One host-physical reference performed during a nested walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NestedRef {
    /// What the reference was for.
    pub kind: NestedRefKind,
    /// Host-physical address that was read.
    pub addr: PhysAddr,
}

/// Outcome of a nested (two-stage) walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NestedWalkResult {
    /// Ordered host-physical references performed (excluding the final data
    /// reference, which the machine layer issues).
    pub refs: Vec<NestedRef>,
    /// Final translation (gVA → hPA) or `None` on a fault in either stage.
    pub translation: Option<Translation>,
}

impl NestedWalkResult {
    /// Number of references that read nested-PT pages.
    pub fn nested_refs(&self) -> usize {
        self.refs
            .iter()
            .filter(|r| matches!(r.kind, NestedRefKind::NestedPt { .. }))
            .count()
    }

    /// Number of references that read guest-PT pages.
    pub fn guest_refs(&self) -> usize {
        self.refs
            .iter()
            .filter(|r| matches!(r.kind, NestedRefKind::GuestPt { .. }))
            .count()
    }
}

/// Virtual-machine identifier used to tag G-stage TLB entries.
pub const GSTAGE_VMID: u16 = 0xfff;

/// Performs the full two-stage walk of Figure 8 for `gva`.
///
/// * `gtlb` caches G-stage translations (gPA page → hPA page); a hit removes
///   the three `nL*` references of that sub-walk. It survives `hfence.vvma`
///   but not `hfence.gvma`.
/// * `gpwc` is the guest-stage walk cache over guest VAs (skips upper guest
///   levels *and* their G-stage sub-walks in the TC3 case).
///
/// The final data reference is **not** included in `refs`; the caller issues
/// it (and its own G-stage sub-walk *is* included, as references 13–15).
pub fn nested_walk(
    mem: &PhysMem,
    guest: &AddressSpace,
    npt: &NestedPageTable,
    gtlb: &mut Tlb,
    gpwc: &mut WalkCache,
    gva: VirtAddr,
) -> NestedWalkResult {
    let mode = guest.mode();
    let asid = guest.asid();
    let mut refs = Vec::new();
    if !mode.is_canonical(gva) {
        return NestedWalkResult {
            refs,
            translation: None,
        };
    }

    // G-stage helper: translate a gPA, appending nL* refs on a G-TLB miss.
    let mut g_translate = |gpa: GuestPhysAddr, refs: &mut Vec<NestedRef>| -> Option<PhysAddr> {
        let page_va = VirtAddr::new(gpa.page_base().raw());
        if let Some((entry, _)) = gtlb.lookup(GSTAGE_VMID, page_va) {
            return Some(PhysAddr::new(
                entry.frame.page_base().raw() | gpa.page_offset(),
            ));
        }
        let (nrefs, hpa) = npt.walk_refs(mem, gpa);
        for (level, addr) in nrefs {
            refs.push(NestedRef {
                kind: NestedRefKind::NestedPt { level },
                addr,
            });
        }
        let hpa = hpa?;
        gtlb.fill(TlbEntry {
            asid: GSTAGE_VMID,
            vpn: page_va.page_number(),
            frame: hpa.page_base(),
            page_perms: hpmp_memsim::Perms::RWX,
            isolation_perms: hpmp_memsim::Perms::RWX,
            user: true,
            epoch: 0,
        });
        Some(hpa)
    };

    // Guest-stage walk, possibly shortened by the guest PWC.
    let mut table_gpa = GuestPhysAddr::new(guest.root().raw());
    let mut level = mode.root_level();
    for probe in 1..=mode.root_level() {
        if let Some(cached) = gpwc.lookup(mode, asid, probe, gva) {
            table_gpa = GuestPhysAddr::new(cached.raw());
            level = probe - 1;
            break;
        }
    }

    loop {
        let slot_gpa = GuestPhysAddr::new(table_gpa.raw() + gva.vpn(level) * 8);
        let Some(slot_hpa) = g_translate(slot_gpa, &mut refs) else {
            return NestedWalkResult {
                refs,
                translation: None,
            };
        };
        refs.push(NestedRef {
            kind: NestedRefKind::GuestPt { level },
            addr: slot_hpa,
        });
        let pte = Pte::from_bits(mem.read_u64(slot_hpa));
        if pte.is_leaf() {
            let span = mode.level_span(level);
            let offset = gva.raw() & (span - 1);
            let data_gpa = GuestPhysAddr::new(pte.target().raw() + offset);
            let Some(data_hpa) = g_translate(data_gpa, &mut refs) else {
                return NestedWalkResult {
                    refs,
                    translation: None,
                };
            };
            let translation = Translation {
                paddr: data_hpa,
                perms: pte.perms(),
                level,
                user: pte.is_user(),
            };
            return NestedWalkResult {
                refs,
                translation: Some(translation),
            };
        }
        if !pte.is_table() || level == 0 {
            return NestedWalkResult {
                refs,
                translation: None,
            };
        }
        gpwc.insert(mode, asid, level, gva, pte.target());
        table_gpa = GuestPhysAddr::new(pte.target().raw());
        level -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pwc::WalkCacheConfig;
    use crate::tlb::TlbConfig;
    use crate::TranslationMode;
    use hpmp_memsim::{FrameAllocator, Perms};

    /// Builds a guest with one data page mapped at `GVA`, with NPT identity
    /// offset: gPA x maps to hPA x + 0x4000_0000.
    const GVA: VirtAddr = VirtAddr::new(0x20_1000);
    const HOST_OFF: u64 = 0x4000_0000;

    fn fixture() -> (PhysMem, NestedPageTable, AddressSpace) {
        let mut mem = PhysMem::new();
        let mut host_frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 512 * PAGE_SIZE);
        let mut npt = NestedPageTable::new(&mut mem, &mut host_frames).unwrap();

        // Guest-physical pool: gPAs 0x1000_0000.. ; back each gPA on demand.
        let gpa_pool_base = 0x1000_0000u64;
        for i in 0..64u64 {
            let gpa = GuestPhysAddr::new(gpa_pool_base + i * PAGE_SIZE);
            let hpa = PhysAddr::new(gpa.raw() + HOST_OFF);
            npt.map_page(&mut mem, &mut host_frames, gpa, hpa, true)
                .unwrap();
        }

        // Guest PT frames come from the guest-physical pool.
        let mut guest_pt_frames = FrameAllocator::new(PhysAddr::new(gpa_pool_base), 32 * PAGE_SIZE);
        let mut view = GuestView::new(&mut mem, &npt);
        let mut guest =
            AddressSpace::new(TranslationMode::Sv39, 9, &mut view, &mut guest_pt_frames).unwrap();
        let data_gpa = GuestPhysAddr::new(gpa_pool_base + 40 * PAGE_SIZE);
        guest
            .map_page(
                &mut view,
                &mut guest_pt_frames,
                GVA,
                data_gpa,
                Perms::RW,
                true,
            )
            .unwrap();
        (mem, npt, guest)
    }

    fn caches() -> (Tlb, WalkCache) {
        (
            Tlb::new(TlbConfig::default()),
            WalkCache::new(WalkCacheConfig::default()),
        )
    }

    #[test]
    fn cold_walk_matches_figure_8() {
        let (mem, npt, guest) = fixture();
        let (mut gtlb, mut gpwc) = caches();
        let result = nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA);
        // Figure 8: 12 nested-PT refs + 3 guest-PT refs (data ref issued by
        // the caller as the 16th).
        assert_eq!(result.nested_refs(), 12);
        assert_eq!(result.guest_refs(), 3);
        assert_eq!(result.refs.len(), 15);
        assert!(result.translation.is_some());
        // Order check: walk starts with the nL2 for the guest root.
        assert!(matches!(
            result.refs[0].kind,
            NestedRefKind::NestedPt { level: 2 }
        ));
        assert!(matches!(
            result.refs[3].kind,
            NestedRefKind::GuestPt { level: 2 }
        ));
    }

    #[test]
    fn translation_is_correct() {
        let (mem, npt, guest) = fixture();
        let (mut gtlb, mut gpwc) = caches();
        let result = nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA + 0x123);
        let t = result.translation.unwrap();
        // gPA of data page = pool base + 40 pages; hPA = gPA + HOST_OFF.
        assert_eq!(
            t.paddr,
            PhysAddr::new(0x1000_0000 + 40 * PAGE_SIZE + HOST_OFF + 0x123)
        );
    }

    #[test]
    fn gstage_tlb_removes_nested_refs() {
        let (mem, npt, guest) = fixture();
        let (mut gtlb, mut gpwc) = caches();
        nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA);
        // Second walk of the same VA: guest PWC skips to the leaf guest PTE;
        // its sub-walk and the data sub-walk hit the G-stage TLB.
        let result = nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA);
        assert_eq!(result.nested_refs(), 0);
        assert_eq!(result.guest_refs(), 1);
    }

    #[test]
    fn hfence_vvma_keeps_gstage() {
        let (mem, npt, guest) = fixture();
        let (mut gtlb, mut gpwc) = caches();
        nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA);
        // hfence.vvma: guest-stage state flushed, G-stage retained.
        gpwc.flush_all();
        let result = nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA);
        assert_eq!(result.guest_refs(), 3); // full guest walk again
        assert_eq!(result.nested_refs(), 0); // all G-stage sub-walks hit
    }

    #[test]
    fn hfence_gvma_flushes_everything() {
        let (mem, npt, guest) = fixture();
        let (mut gtlb, mut gpwc) = caches();
        nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA);
        gpwc.flush_all();
        gtlb.flush_all();
        let result = nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, GVA);
        assert_eq!(result.refs.len(), 15);
    }

    #[test]
    fn unmapped_gva_faults() {
        let (mem, npt, guest) = fixture();
        let (mut gtlb, mut gpwc) = caches();
        let result = nested_walk(
            &mem,
            &guest,
            &npt,
            &mut gtlb,
            &mut gpwc,
            VirtAddr::new(0x5000_0000),
        );
        assert!(result.translation.is_none());
    }

    #[test]
    fn npt_rejects_double_map() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let mut npt = NestedPageTable::new(&mut mem, &mut frames).unwrap();
        let gpa = GuestPhysAddr::new(0x1000);
        npt.map_page(&mut mem, &mut frames, gpa, PhysAddr::new(0x9000_0000), true)
            .unwrap();
        assert!(matches!(
            npt.map_page(&mut mem, &mut frames, gpa, PhysAddr::new(0x9000_1000), true),
            Err(MapError::AlreadyMapped(_))
        ));
    }

    #[test]
    fn npt_wide_root_indexing() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let mut npt = NestedPageTable::new(&mut mem, &mut frames).unwrap();
        // A gPA beyond 2^39 uses the extra root-index bits.
        let gpa = GuestPhysAddr::new(1 << 40);
        npt.map_page(
            &mut mem,
            &mut frames,
            gpa,
            PhysAddr::new(0x9000_0000),
            false,
        )
        .unwrap();
        assert_eq!(npt.translate(&mem, gpa), Some(PhysAddr::new(0x9000_0000)));
        // Beyond 41 bits is rejected.
        assert!(matches!(
            npt.map_page(
                &mut mem,
                &mut frames,
                GuestPhysAddr::new(1 << 41),
                PhysAddr::new(0x9000_1000),
                false
            ),
            Err(MapError::NonCanonical(_))
        ));
    }
}
