//! Translation modes (Sv39 / Sv48 / Sv57).

use hpmp_memsim::{VirtAddr, PAGE_SHIFT};

/// A RISC-V virtual-memory scheme.
///
/// The paper's headline numbers use Sv39 (3-level); the extra-dimension cost
/// grows with Sv48 and Sv57, which is why the problem "is even more serious
/// for 4-level or 5-level page table architectures".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TranslationMode {
    /// 39-bit VA, 3-level page table.
    Sv39,
    /// 48-bit VA, 4-level page table.
    Sv48,
    /// 57-bit VA, 5-level page table.
    Sv57,
}

impl TranslationMode {
    /// Number of page-table levels (equivalently, PT-page references on a
    /// full TLB-miss walk).
    pub const fn levels(self) -> usize {
        match self {
            TranslationMode::Sv39 => 3,
            TranslationMode::Sv48 => 4,
            TranslationMode::Sv57 => 5,
        }
    }

    /// Width of the virtual address in bits.
    pub const fn va_bits(self) -> u32 {
        match self {
            TranslationMode::Sv39 => 39,
            TranslationMode::Sv48 => 48,
            TranslationMode::Sv57 => 57,
        }
    }

    /// Index of the root level (levels are numbered leaf = 0).
    pub const fn root_level(self) -> usize {
        self.levels() - 1
    }

    /// Bytes of VA space covered by one entry at `level`.
    pub const fn level_span(self, level: usize) -> u64 {
        1u64 << (PAGE_SHIFT as usize + 9 * level)
    }

    /// True if `va` is canonical for this mode (fits in `va_bits`,
    /// sign-extension ignored for simplicity: we require the high bits to be
    /// zero, i.e. the positive half of the canonical space).
    pub const fn is_canonical(self, va: VirtAddr) -> bool {
        va.raw() >> self.va_bits() == 0
    }
}

impl std::fmt::Display for TranslationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TranslationMode::Sv39 => "Sv39",
            TranslationMode::Sv48 => "Sv48",
            TranslationMode::Sv57 => "Sv57",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_counts() {
        assert_eq!(TranslationMode::Sv39.levels(), 3);
        assert_eq!(TranslationMode::Sv48.levels(), 4);
        assert_eq!(TranslationMode::Sv57.levels(), 5);
        assert_eq!(TranslationMode::Sv39.root_level(), 2);
    }

    #[test]
    fn spans() {
        assert_eq!(TranslationMode::Sv39.level_span(0), 4096);
        assert_eq!(TranslationMode::Sv39.level_span(1), 2 << 20);
        assert_eq!(TranslationMode::Sv39.level_span(2), 1 << 30);
    }

    #[test]
    fn canonical() {
        assert!(TranslationMode::Sv39.is_canonical(VirtAddr::new((1 << 39) - 1)));
        assert!(!TranslationMode::Sv39.is_canonical(VirtAddr::new(1 << 39)));
        assert!(TranslationMode::Sv48.is_canonical(VirtAddr::new(1 << 39)));
    }

    #[test]
    fn display() {
        assert_eq!(TranslationMode::Sv39.to_string(), "Sv39");
    }
}
