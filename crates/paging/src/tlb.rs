//! Two-level TLB with permission inlining.
//!
//! The paper's "TLB inlining" optimisation stores the permission fetched from
//! the isolation layer (PMP / PMP Table / HPMP) inside the TLB entry, so a
//! TLB hit requires no permission walk at all — in both the baseline and
//! HPMP configurations. [`TlbEntry::isolation_perms`] is that inlined value.
//!
//! The geometry mirrors Table 1: a 32-entry fully-associative L1 TLB and a
//! 1024-entry direct-mapped L2 TLB.

use hpmp_memsim::{Perms, PhysAddr, VirtAddr, PAGE_SHIFT};

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Address-space identifier.
    pub asid: u16,
    /// Virtual page number.
    pub vpn: u64,
    /// Physical frame base the page maps to.
    pub frame: PhysAddr,
    /// Page permissions from the leaf PTE.
    pub page_perms: Perms,
    /// Inlined physical-isolation permissions (from PMP/PMP Table/HPMP).
    pub isolation_perms: Perms,
    /// Whether the mapping is user-accessible.
    pub user: bool,
    /// Isolation epoch at fill time. [`Tlb::fill`] stamps this with the
    /// TLB's current epoch (callers pass 0); entries from older epochs read
    /// as misses, so a dropped invalidation degrades to a re-walk rather
    /// than a stale grant.
    pub epoch: u64,
}

/// Where a TLB lookup hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbHit {
    /// Hit in the L1 (fully associative) TLB.
    L1,
    /// Hit in the L2 TLB (entry promoted to L1).
    L2,
}

/// Counters for one TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that the L2 caught).
    pub l2_hits: u64,
    /// Full misses (page walk required).
    pub misses: u64,
    /// Flush operations performed.
    pub flushes: u64,
    /// Lookups that matched an entry from a previous isolation epoch — a
    /// dropped invalidation caught by the epoch stamp.
    pub stale: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Overall hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.l1_hits + self.l2_hits) as f64 / lookups as f64
        }
    }

    /// Publishes the counters into `reg` under `prefix`.
    pub fn export(&self, reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) {
        let ids = TlbStatsIds::wire(reg, prefix);
        self.store(reg, &ids);
    }

    /// Publishes the counters through handles wired by [`TlbStatsIds::wire`].
    pub fn store(&self, reg: &mut hpmp_trace::MetricsRegistry, ids: &TlbStatsIds) {
        reg.store(ids.l1_hits, self.l1_hits);
        reg.store(ids.l2_hits, self.l2_hits);
        reg.store(ids.misses, self.misses);
        reg.store(ids.flushes, self.flushes);
        reg.store(ids.stale, self.stale);
    }
}

/// Interned counter handles for publishing [`TlbStats`] repeatedly without
/// re-formatting names.
#[derive(Clone, Copy, Debug)]
pub struct TlbStatsIds {
    l1_hits: hpmp_trace::CounterId,
    l2_hits: hpmp_trace::CounterId,
    misses: hpmp_trace::CounterId,
    flushes: hpmp_trace::CounterId,
    stale: hpmp_trace::CounterId,
}

impl TlbStatsIds {
    /// Intern the counter names under `prefix` once.
    pub fn wire(reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) -> TlbStatsIds {
        TlbStatsIds {
            l1_hits: reg.counter(format!("{prefix}.l1_hits")),
            l2_hits: reg.counter(format!("{prefix}.l2_hits")),
            misses: reg.counter(format!("{prefix}.misses")),
            flushes: reg.counter(format!("{prefix}.flushes")),
            stale: reg.counter(format!("{prefix}.stale")),
        }
    }
}

/// Configuration of the two TLB levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Entries in the fully-associative L1.
    pub l1_entries: usize,
    /// Entries in the direct-mapped L2 (must be a power of two).
    pub l2_entries: usize,
    /// Extra cycles for a lookup that is satisfied by the L2 TLB.
    pub l2_hit_latency: u64,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig {
            l1_entries: 32,
            l2_entries: 1024,
            l2_hit_latency: 4,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct L1Slot {
    entry: TlbEntry,
    lru: u64,
}

/// A two-level data TLB.
///
/// ```
/// use hpmp_memsim::{Perms, PhysAddr, VirtAddr};
/// use hpmp_paging::{Tlb, TlbConfig, TlbEntry};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(tlb.lookup(1, VirtAddr::new(0x1000)).is_none());
/// tlb.fill(TlbEntry {
///     asid: 1, vpn: 1, frame: PhysAddr::new(0x8000_0000),
///     page_perms: Perms::RW, isolation_perms: Perms::RWX, user: true,
///     epoch: 0,
/// });
/// assert!(tlb.lookup(1, VirtAddr::new(0x1abc)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    l1: Vec<L1Slot>,
    l2: Vec<Option<TlbEntry>>,
    clock: u64,
    epoch: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `l2_entries` is not a power of two or either size is zero.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.l1_entries > 0, "L1 TLB needs entries");
        assert!(
            config.l2_entries.is_power_of_two(),
            "L2 TLB must be a power of two"
        );
        Tlb {
            config,
            l1: Vec::with_capacity(config.l1_entries),
            l2: vec![None; config.l2_entries],
            clock: 0,
            epoch: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Looks up `(asid, va)`; on an L2 hit the entry is promoted to L1.
    /// Entries stamped with an older isolation epoch read as misses.
    pub fn lookup(&mut self, asid: u16, va: VirtAddr) -> Option<(TlbEntry, TlbHit)> {
        let vpn = va.page_number();
        self.clock += 1;
        let clock = self.clock;
        let epoch = self.epoch;
        if let Some(slot) = self
            .l1
            .iter_mut()
            .find(|s| s.entry.asid == asid && s.entry.vpn == vpn)
        {
            if slot.entry.epoch != epoch {
                self.stats.stale += 1;
                self.stats.misses += 1;
                return None;
            }
            slot.lru = clock;
            self.stats.l1_hits += 1;
            return Some((slot.entry, TlbHit::L1));
        }
        let idx = self.l2_index(asid, vpn);
        if let Some(entry) = self.l2[idx] {
            if entry.asid == asid && entry.vpn == vpn {
                if entry.epoch != epoch {
                    self.stats.stale += 1;
                    self.stats.misses += 1;
                    return None;
                }
                self.stats.l2_hits += 1;
                self.insert_l1(entry);
                return Some((entry, TlbHit::L2));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Installs a translation in both levels (as a PTW refill does),
    /// stamping it with the current isolation epoch.
    pub fn fill(&mut self, entry: TlbEntry) {
        let entry = TlbEntry {
            epoch: self.epoch,
            ..entry
        };
        let idx = self.l2_index(entry.asid, entry.vpn);
        self.l2[idx] = Some(entry);
        self.insert_l1(entry);
    }

    /// Advances the isolation epoch: every current entry becomes unhittable
    /// even if the subsequent flush is dropped by a fault. The monitor calls
    /// this as part of *committing* a permission change, the flush being
    /// only the cleanup half.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The current isolation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `sfence.vma` with no arguments / HPMP reconfiguration: drop everything.
    pub fn flush_all(&mut self) {
        self.l1.clear();
        self.l2.iter_mut().for_each(|e| *e = None);
        self.stats.flushes += 1;
    }

    /// `sfence.vma` with an ASID: drop entries belonging to `asid`.
    pub fn flush_asid(&mut self, asid: u16) {
        self.l1.retain(|s| s.entry.asid != asid);
        for e in self.l2.iter_mut() {
            if matches!(e, Some(entry) if entry.asid == asid) {
                *e = None;
            }
        }
        self.stats.flushes += 1;
    }

    /// `sfence.vma` with an address: drop the entry covering `va` in `asid`.
    pub fn flush_page(&mut self, asid: u16, va: VirtAddr) {
        let vpn = va.page_number();
        self.l1
            .retain(|s| !(s.entry.asid == asid && s.entry.vpn == vpn));
        let idx = self.l2_index(asid, vpn);
        if matches!(self.l2[idx], Some(e) if e.asid == asid && e.vpn == vpn) {
            self.l2[idx] = None;
        }
        self.stats.flushes += 1;
    }

    /// Lookup counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Clears counters without touching entries.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn insert_l1(&mut self, entry: TlbEntry) {
        self.clock += 1;
        if let Some(slot) = self
            .l1
            .iter_mut()
            .find(|s| s.entry.asid == entry.asid && s.entry.vpn == entry.vpn)
        {
            slot.entry = entry;
            slot.lru = self.clock;
            return;
        }
        let slot = L1Slot {
            entry,
            lru: self.clock,
        };
        if self.l1.len() < self.config.l1_entries {
            self.l1.push(slot);
        } else {
            let victim = self
                .l1
                .iter_mut()
                .min_by_key(|s| s.lru)
                .expect("L1 TLB is non-empty when full");
            *victim = slot;
        }
    }

    fn l2_index(&self, asid: u16, vpn: u64) -> usize {
        // Direct-mapped, indexed by VPN (ASID only disambiguates on compare,
        // as in a physically-small direct-mapped structure).
        let _ = asid;
        (vpn as usize) & (self.config.l2_entries - 1)
    }
}

/// Reconstructs the full physical address for `va` from a TLB entry.
pub fn apply_translation(entry: &TlbEntry, va: VirtAddr) -> PhysAddr {
    PhysAddr::new((entry.frame.page_number() << PAGE_SHIFT) | va.page_offset())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(asid: u16, vpn: u64) -> TlbEntry {
        TlbEntry {
            asid,
            vpn,
            frame: PhysAddr::new(vpn << PAGE_SHIFT),
            page_perms: Perms::RW,
            isolation_perms: Perms::RWX,
            user: true,
            epoch: 0,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::default());
        assert!(tlb.lookup(1, VirtAddr::new(0x1000)).is_none());
        tlb.fill(entry(1, 1));
        let (e, hit) = tlb.lookup(1, VirtAddr::new(0x1fff)).unwrap();
        assert_eq!(hit, TlbHit::L1);
        assert_eq!(
            apply_translation(&e, VirtAddr::new(0x1fff)),
            PhysAddr::new(0x1fff)
        );
    }

    #[test]
    fn asid_disambiguation() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.fill(entry(1, 1));
        assert!(tlb.lookup(2, VirtAddr::new(0x1000)).is_none());
        assert!(tlb.lookup(1, VirtAddr::new(0x1000)).is_some());
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let cfg = TlbConfig {
            l1_entries: 2,
            l2_entries: 16,
            l2_hit_latency: 4,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.fill(entry(1, 1));
        tlb.fill(entry(1, 2));
        tlb.fill(entry(1, 3)); // evicts vpn=1 from L1
        let (_, hit) = tlb.lookup(1, VirtAddr::new(0x1000)).unwrap();
        assert_eq!(hit, TlbHit::L2);
        // Promoted back to L1 now.
        let (_, hit) = tlb.lookup(1, VirtAddr::new(0x1000)).unwrap();
        assert_eq!(hit, TlbHit::L1);
    }

    #[test]
    fn l2_direct_mapped_conflict() {
        let cfg = TlbConfig {
            l1_entries: 1,
            l2_entries: 4,
            l2_hit_latency: 4,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.fill(entry(1, 0));
        tlb.fill(entry(1, 4)); // same L2 slot (0 % 4 == 4 % 4), evicts vpn=0 from L2
        tlb.fill(entry(1, 9)); // push vpn=4 out of tiny L1 too
        assert!(tlb.lookup(1, VirtAddr::new(0)).is_none());
    }

    #[test]
    fn flush_variants() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.fill(entry(1, 1));
        tlb.fill(entry(1, 2));
        tlb.fill(entry(2, 3));
        tlb.flush_page(1, VirtAddr::new(0x1000));
        assert!(tlb.lookup(1, VirtAddr::new(0x1000)).is_none());
        assert!(tlb.lookup(1, VirtAddr::new(0x2000)).is_some());
        tlb.flush_asid(1);
        assert!(tlb.lookup(1, VirtAddr::new(0x2000)).is_none());
        assert!(tlb.lookup(2, VirtAddr::new(0x3000)).is_some());
        tlb.flush_all();
        assert!(tlb.lookup(2, VirtAddr::new(0x3000)).is_none());
        assert_eq!(tlb.stats().flushes, 3);
    }

    #[test]
    fn epoch_advance_invalidates_without_flush() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.fill(entry(1, 1));
        // Simulate a dropped invalidation: the epoch advances (part of the
        // permission-change commit) but no flush ever runs.
        tlb.advance_epoch();
        assert!(tlb.lookup(1, VirtAddr::new(0x1000)).is_none());
        assert_eq!(tlb.stats().stale, 1);
        // A refill under the new epoch hits again.
        tlb.fill(entry(1, 1));
        assert!(tlb.lookup(1, VirtAddr::new(0x1000)).is_some());
        assert_eq!(tlb.epoch(), 1);
        // The L2 copy of the old entry is equally unhittable: evict the L1
        // copy and check.
        let mut tlb = Tlb::new(TlbConfig {
            l1_entries: 1,
            l2_entries: 16,
            l2_hit_latency: 4,
        });
        tlb.fill(entry(1, 1));
        tlb.advance_epoch();
        tlb.fill(entry(1, 2)); // evicts vpn=1 from the 1-entry L1
        assert!(tlb.lookup(1, VirtAddr::new(0x1000)).is_none());
        assert!(tlb.stats().stale >= 1);
    }

    #[test]
    fn stats_track_levels() {
        let cfg = TlbConfig {
            l1_entries: 1,
            l2_entries: 16,
            l2_hit_latency: 4,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.fill(entry(1, 1));
        tlb.fill(entry(1, 2)); // vpn=1 falls back to L2 only
        tlb.lookup(1, VirtAddr::new(0x1000)); // L2 hit
        tlb.lookup(1, VirtAddr::new(0x5000)); // miss
        let s = tlb.stats();
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.misses, 1);
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);
    }
}
