//! RISC-V page-table entry encoding (privileged spec, RV64).
//!
//! A PTE is a 64-bit word: bits 0–7 are the `V R W X U G A D` flags, bits 8–9
//! are software-reserved, and bits 10–53 hold the physical page number. An
//! entry with `V=1` and `R=W=X=0` is a pointer to the next-level table; any
//! other valid entry is a leaf.

use hpmp_memsim::{Perms, PhysAddr, PAGE_SHIFT};

/// A decoded RV64 page-table entry.
///
/// ```
/// use hpmp_paging::Pte;
/// use hpmp_memsim::{Perms, PhysAddr};
///
/// let leaf = Pte::leaf(PhysAddr::new(0x8000_0000), Perms::RW, true);
/// assert!(leaf.is_valid() && leaf.is_leaf());
/// assert_eq!(Pte::from_bits(leaf.to_bits()), leaf);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Pte {
    bits: u64,
}

impl Pte {
    const V: u64 = 1 << 0;
    const R: u64 = 1 << 1;
    const W: u64 = 1 << 2;
    const X: u64 = 1 << 3;
    const U: u64 = 1 << 4;
    const G: u64 = 1 << 5;
    const A: u64 = 1 << 6;
    const D: u64 = 1 << 7;
    const PPN_SHIFT: u32 = 10;
    const PPN_MASK: u64 = (1 << 44) - 1;

    /// The invalid (all-zero) entry.
    pub const INVALID: Pte = Pte { bits: 0 };

    /// Decodes a raw 64-bit entry.
    #[inline]
    pub const fn from_bits(bits: u64) -> Pte {
        Pte { bits }
    }

    /// Returns the raw 64-bit encoding.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        self.bits
    }

    /// Builds a leaf entry mapping to `frame` with `perms`; `user` sets the
    /// U bit. The A and D bits are pre-set, as Linux does for kernel
    /// mappings, so walks never take an A/D update fault.
    pub fn leaf(frame: PhysAddr, perms: Perms, user: bool) -> Pte {
        debug_assert!(!perms.is_empty(), "a leaf PTE must grant some permission");
        let mut bits = Self::V | Self::A | Self::D;
        if perms.can_read() {
            bits |= Self::R;
        }
        if perms.can_write() {
            bits |= Self::W;
        }
        if perms.can_exec() {
            bits |= Self::X;
        }
        if user {
            bits |= Self::U;
        }
        bits |= (frame.page_number() & Self::PPN_MASK) << Self::PPN_SHIFT;
        Pte { bits }
    }

    /// Builds a non-leaf entry pointing at the next-level table page.
    pub fn table(next: PhysAddr) -> Pte {
        Pte {
            bits: Self::V | ((next.page_number() & Self::PPN_MASK) << Self::PPN_SHIFT),
        }
    }

    /// True if the V bit is set.
    #[inline]
    pub const fn is_valid(self) -> bool {
        self.bits & Self::V != 0
    }

    /// True if the entry is a valid leaf (any of R/W/X set).
    #[inline]
    pub const fn is_leaf(self) -> bool {
        self.is_valid() && self.bits & (Self::R | Self::W | Self::X) != 0
    }

    /// True if the entry is a valid pointer to a next-level table.
    #[inline]
    pub const fn is_table(self) -> bool {
        self.is_valid() && self.bits & (Self::R | Self::W | Self::X) == 0
    }

    /// True if the U (user-accessible) bit is set.
    #[inline]
    pub const fn is_user(self) -> bool {
        self.bits & Self::U != 0
    }

    /// True if the G (global mapping) bit is set.
    #[inline]
    pub const fn is_global(self) -> bool {
        self.bits & Self::G != 0
    }

    /// The R/W/X permission set of a leaf entry.
    pub fn perms(self) -> Perms {
        Perms::new(
            self.bits & Self::R != 0,
            self.bits & Self::W != 0,
            self.bits & Self::X != 0,
        )
    }

    /// Physical base address of the frame (leaf) or next table (pointer).
    pub fn target(self) -> PhysAddr {
        PhysAddr::new(((self.bits >> Self::PPN_SHIFT) & Self::PPN_MASK) << PAGE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let pte = Pte::leaf(PhysAddr::new(0x8_1234_5000), Perms::RX, false);
        assert!(pte.is_valid());
        assert!(pte.is_leaf());
        assert!(!pte.is_table());
        assert!(!pte.is_user());
        assert_eq!(pte.perms(), Perms::RX);
        assert_eq!(pte.target(), PhysAddr::new(0x8_1234_5000));
    }

    #[test]
    fn table_pointer() {
        let pte = Pte::table(PhysAddr::new(0x8000_1000));
        assert!(pte.is_table());
        assert!(!pte.is_leaf());
        assert_eq!(pte.target(), PhysAddr::new(0x8000_1000));
        assert!(pte.perms().is_empty());
    }

    #[test]
    fn invalid_entry() {
        assert!(!Pte::INVALID.is_valid());
        assert!(!Pte::INVALID.is_leaf());
        assert!(!Pte::INVALID.is_table());
        assert_eq!(Pte::from_bits(0), Pte::INVALID);
    }

    #[test]
    fn user_bit() {
        let pte = Pte::leaf(PhysAddr::new(0x1000), Perms::RW, true);
        assert!(pte.is_user());
    }

    #[test]
    fn bits_survive_round_trip() {
        let pte = Pte::leaf(PhysAddr::new(0xfff_ffff_f000), Perms::RWX, true);
        assert_eq!(Pte::from_bits(pte.to_bits()), pte);
    }
}
