//! Page-walk cache (PWC).
//!
//! The PWC caches *non-leaf* PTEs so a walk can skip the upper levels of the
//! tree. Table 2 of the paper defines the TC1–TC4 microbenchmark states in
//! terms of per-level PWC hits; §8.9 sweeps the entry count (8 vs 32).
//!
//! The model is a fully-associative, LRU array keyed by
//! `(asid, level, va-prefix)` whose payload is the physical base of the
//! next-level table, exactly what a radix PWC stores. The same structure is
//! reused by the PMPTW-Cache in `hpmp-core` (keyed on physical prefixes).

use hpmp_memsim::{PhysAddr, VirtAddr, PAGE_SHIFT};

/// Configuration of a walk cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkCacheConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Hit latency in cycles (checked in parallel with the walk start; the
    /// paper's PTECache is small and fast, so this defaults to 1).
    pub hit_latency: u64,
}

impl Default for WalkCacheConfig {
    fn default() -> WalkCacheConfig {
        WalkCacheConfig {
            entries: 8,
            hit_latency: 1,
        }
    }
}

/// Counters for a walk cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

impl WalkCacheStats {
    /// Publishes the counters into `reg` under `prefix`.
    pub fn export(&self, reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) {
        let ids = WalkCacheStatsIds::wire(reg, prefix);
        self.store(reg, &ids);
    }

    /// Publishes the counters through handles wired by
    /// [`WalkCacheStatsIds::wire`].
    pub fn store(&self, reg: &mut hpmp_trace::MetricsRegistry, ids: &WalkCacheStatsIds) {
        reg.store(ids.hits, self.hits);
        reg.store(ids.misses, self.misses);
    }
}

/// Interned counter handles for publishing [`WalkCacheStats`] repeatedly
/// without re-formatting names.
#[derive(Clone, Copy, Debug)]
pub struct WalkCacheStatsIds {
    hits: hpmp_trace::CounterId,
    misses: hpmp_trace::CounterId,
}

impl WalkCacheStatsIds {
    /// Intern the counter names under `prefix` once.
    pub fn wire(reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) -> WalkCacheStatsIds {
        WalkCacheStatsIds {
            hits: reg.counter(format!("{prefix}.hits")),
            misses: reg.counter(format!("{prefix}.misses")),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Key {
    asid: u16,
    level: usize,
    prefix: u64,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    key: Key,
    table: PhysAddr,
    lru: u64,
}

/// A fully-associative cache of non-leaf walk steps.
///
/// ```
/// use hpmp_memsim::{PhysAddr, VirtAddr};
/// use hpmp_paging::{TranslationMode, WalkCache, WalkCacheConfig};
///
/// let mut pwc = WalkCache::new(WalkCacheConfig::default());
/// let va = VirtAddr::new(0x1234_5000);
/// pwc.insert(TranslationMode::Sv39, 1, 2, va, PhysAddr::new(0x8000_1000));
/// assert_eq!(
///     pwc.lookup(TranslationMode::Sv39, 1, 2, va + 0x123),
///     Some(PhysAddr::new(0x8000_1000)),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct WalkCache {
    config: WalkCacheConfig,
    slots: Vec<Slot>,
    clock: u64,
    stats: WalkCacheStats,
}

impl WalkCache {
    /// Builds an empty walk cache. A zero-entry configuration is legal and
    /// behaves as "always miss" (used to disable the PWC in experiments).
    pub fn new(config: WalkCacheConfig) -> WalkCache {
        WalkCache {
            config,
            slots: Vec::with_capacity(config.entries),
            clock: 0,
            stats: WalkCacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &WalkCacheConfig {
        &self.config
    }

    /// Looks up the cached next-level table for the walk step that consumes
    /// the PTE at `level` for `va`. `level` is the level of the PTE being
    /// skipped (root = `mode.root_level()`).
    pub fn lookup(
        &mut self,
        mode: crate::TranslationMode,
        asid: u16,
        level: usize,
        va: VirtAddr,
    ) -> Option<PhysAddr> {
        let key = Self::key(mode, asid, level, va);
        self.clock += 1;
        let clock = self.clock;
        match self.slots.iter_mut().find(|s| s.key == key) {
            Some(slot) => {
                slot.lru = clock;
                self.stats.hits += 1;
                Some(slot.table)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records that the PTE at `level` for `va` points to `table`.
    pub fn insert(
        &mut self,
        mode: crate::TranslationMode,
        asid: u16,
        level: usize,
        va: VirtAddr,
        table: PhysAddr,
    ) {
        if self.config.entries == 0 {
            return;
        }
        let key = Self::key(mode, asid, level, va);
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) {
            slot.table = table;
            slot.lru = clock;
            return;
        }
        let slot = Slot {
            key,
            table,
            lru: clock,
        };
        if self.slots.len() < self.config.entries {
            self.slots.push(slot);
        } else {
            let victim = self
                .slots
                .iter_mut()
                .min_by_key(|s| s.lru)
                .expect("non-empty when full");
            *victim = slot;
        }
    }

    /// Drops every cached step (on `sfence.vma` / HPMP reconfiguration).
    pub fn flush_all(&mut self) {
        self.slots.clear();
    }

    /// Drops cached steps belonging to `asid`.
    pub fn flush_asid(&mut self, asid: u16) {
        self.slots.retain(|s| s.key.asid != asid);
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> WalkCacheStats {
        self.stats
    }

    /// Clears counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = WalkCacheStats::default();
    }

    fn key(mode: crate::TranslationMode, asid: u16, level: usize, va: VirtAddr) -> Key {
        // The prefix is every VPN field *above and including* `level`.
        let shift = PAGE_SHIFT as usize + 9 * level;
        let _ = mode;
        Key {
            asid,
            level,
            prefix: va.raw() >> shift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TranslationMode;

    const SV39: TranslationMode = TranslationMode::Sv39;

    #[test]
    fn hit_after_insert() {
        let mut pwc = WalkCache::new(WalkCacheConfig::default());
        let va = VirtAddr::new(0x4000_0000);
        assert_eq!(pwc.lookup(SV39, 1, 2, va), None);
        pwc.insert(SV39, 1, 2, va, PhysAddr::new(0x8000_0000));
        assert_eq!(pwc.lookup(SV39, 1, 2, va), Some(PhysAddr::new(0x8000_0000)));
        assert_eq!(pwc.stats(), WalkCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn same_region_same_entry() {
        let mut pwc = WalkCache::new(WalkCacheConfig::default());
        // Two VAs in the same 1 GiB region share the L2-level entry.
        pwc.insert(
            SV39,
            1,
            2,
            VirtAddr::new(0x0000_1000),
            PhysAddr::new(0x8000_0000),
        );
        assert!(pwc.lookup(SV39, 1, 2, VirtAddr::new(0x3fff_f000)).is_some());
        // A VA in a different 1 GiB region misses.
        assert!(pwc.lookup(SV39, 1, 2, VirtAddr::new(0x4000_0000)).is_none());
    }

    #[test]
    fn levels_are_distinct() {
        let mut pwc = WalkCache::new(WalkCacheConfig::default());
        let va = VirtAddr::new(0x1000);
        pwc.insert(SV39, 1, 2, va, PhysAddr::new(0x8000_0000));
        assert!(pwc.lookup(SV39, 1, 1, va).is_none());
    }

    #[test]
    fn lru_eviction() {
        let mut pwc = WalkCache::new(WalkCacheConfig {
            entries: 2,
            hit_latency: 1,
        });
        pwc.insert(SV39, 1, 2, VirtAddr::new(0 << 30), PhysAddr::new(0x1000));
        pwc.insert(SV39, 1, 2, VirtAddr::new(1 << 30), PhysAddr::new(0x2000));
        pwc.lookup(SV39, 1, 2, VirtAddr::new(0 << 30)); // refresh first
        pwc.insert(SV39, 1, 2, VirtAddr::new(2 << 30), PhysAddr::new(0x3000)); // evict second
        assert!(pwc.lookup(SV39, 1, 2, VirtAddr::new(0 << 30)).is_some());
        assert!(pwc.lookup(SV39, 1, 2, VirtAddr::new(1 << 30)).is_none());
    }

    #[test]
    fn zero_entry_cache_never_hits() {
        let mut pwc = WalkCache::new(WalkCacheConfig {
            entries: 0,
            hit_latency: 1,
        });
        pwc.insert(
            SV39,
            1,
            2,
            VirtAddr::new(0x1000),
            PhysAddr::new(0x8000_0000),
        );
        assert!(pwc.lookup(SV39, 1, 2, VirtAddr::new(0x1000)).is_none());
    }

    #[test]
    fn flush_asid_selective() {
        let mut pwc = WalkCache::new(WalkCacheConfig::default());
        pwc.insert(SV39, 1, 2, VirtAddr::new(0x1000), PhysAddr::new(0x1000));
        pwc.insert(SV39, 2, 2, VirtAddr::new(0x1000), PhysAddr::new(0x2000));
        pwc.flush_asid(1);
        assert!(pwc.lookup(SV39, 1, 2, VirtAddr::new(0x1000)).is_none());
        assert!(pwc.lookup(SV39, 2, 2, VirtAddr::new(0x1000)).is_some());
        pwc.flush_all();
        assert!(pwc.lookup(SV39, 2, 2, VirtAddr::new(0x1000)).is_none());
    }
}
