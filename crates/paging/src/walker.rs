//! The page-table walker (PTW).
//!
//! On a TLB miss the PTW performs the radix walk, consulting the page-walk
//! cache first to skip upper levels. The walker's product is the *exact
//! ordered list of PT-page memory references* it performed — the squares in
//! the paper's Figure 2 — which the machine layer then pushes through the
//! isolation checker and the cache hierarchy. Splitting "which references
//! happen" (here) from "what each reference costs" (machine layer) is what
//! lets one walker serve the PMP, PMP-Table and HPMP configurations.

use hpmp_memsim::{PhysAddr, PhysMem, VirtAddr};

use crate::pwc::WalkCache;
use crate::space::{AddressSpace, Translation};
use crate::Pte;

/// One PT-page reference performed by a walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtRef {
    /// Page-table level of the PTE that was read (root = `levels - 1`).
    pub level: usize,
    /// Physical address of the PTE.
    pub addr: PhysAddr,
    /// The PTE value that was read.
    pub pte: Pte,
}

/// The outcome of one hardware page-table walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkResult {
    /// PT-page references actually performed, in order.
    pub pt_refs: Vec<PtRef>,
    /// The translation, or `None` on a page fault.
    pub translation: Option<Translation>,
    /// Deepest PWC level that hit, if any (1 = skipped everything above the
    /// leaf lookup).
    pub pwc_hit_level: Option<usize>,
}

impl WalkResult {
    /// Number of PT-page memory references the walk performed.
    pub fn ref_count(&self) -> usize {
        self.pt_refs.len()
    }
}

/// Performs one page-table walk for `va` in `space`, using (and refilling)
/// `pwc`.
///
/// The PWC is probed from the deepest skippable level upward, so a hit at
/// level `L` means the walk starts by reading the PTE at level `L - 1`
/// — e.g. Table 2's TC3 state (PWC hits for L2 and L1) reads only the L0
/// PTE.
///
/// ```
/// use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, PhysMem, VirtAddr, PAGE_SIZE};
/// use hpmp_paging::{walk, AddressSpace, TranslationMode, WalkCache, WalkCacheConfig};
///
/// let mut mem = PhysMem::new();
/// let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
/// let mut space = AddressSpace::new(TranslationMode::Sv39, 1, &mut mem, &mut frames).unwrap();
/// space.map_page(&mut mem, &mut frames, VirtAddr::new(0x1000), PhysAddr::new(0x9000_0000),
///                Perms::RW, true).unwrap();
/// let mut pwc = WalkCache::new(WalkCacheConfig::default());
///
/// let cold = walk(&mem, &space, &mut pwc, VirtAddr::new(0x1000));
/// assert_eq!(cold.ref_count(), 3); // Sv39: L2, L1, L0
/// let warm = walk(&mem, &space, &mut pwc, VirtAddr::new(0x1000));
/// assert_eq!(warm.ref_count(), 1); // PWC skips to the leaf PTE
/// ```
pub fn walk(mem: &PhysMem, space: &AddressSpace, pwc: &mut WalkCache, va: VirtAddr) -> WalkResult {
    let mode = space.mode();
    let asid = space.asid();
    if !mode.is_canonical(va) {
        return WalkResult {
            pt_refs: Vec::new(),
            translation: None,
            pwc_hit_level: None,
        };
    }

    // Probe the PWC from the deepest (most useful) level upward. An entry at
    // `level` caches the table produced by consuming the PTE *at* `level`,
    // i.e. the table walked at `level - 1`.
    let mut table = space.root();
    let mut level = mode.root_level();
    let mut pwc_hit_level = None;
    for probe in 1..=mode.root_level() {
        if let Some(cached) = pwc.lookup(mode, asid, probe, va) {
            table = cached;
            level = probe - 1;
            pwc_hit_level = Some(probe);
            break;
        }
    }

    let mut pt_refs = Vec::with_capacity(level + 1);
    loop {
        let slot = AddressSpace::pte_addr(table, va, level);
        let pte = Pte::from_bits(mem.read_u64(slot));
        pt_refs.push(PtRef {
            level,
            addr: slot,
            pte,
        });
        if pte.is_leaf() {
            let span = mode.level_span(level);
            let offset = va.raw() & (span - 1);
            let translation = Translation {
                paddr: PhysAddr::new(pte.target().raw() + offset),
                perms: pte.perms(),
                level,
                user: pte.is_user(),
            };
            return WalkResult {
                pt_refs,
                translation: Some(translation),
                pwc_hit_level,
            };
        }
        if !pte.is_table() || level == 0 {
            // Page fault: invalid PTE or a pointer where a leaf must be.
            return WalkResult {
                pt_refs,
                translation: None,
                pwc_hit_level,
            };
        }
        // Refill the PWC with this non-leaf step.
        pwc.insert(mode, asid, level, va, pte.target());
        table = pte.target();
        level -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pwc::WalkCacheConfig;
    use crate::TranslationMode;
    use hpmp_memsim::{FrameAllocator, Perms, PAGE_SIZE};

    fn fixture() -> (PhysMem, FrameAllocator, AddressSpace, WalkCache) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 256 * PAGE_SIZE);
        let space = AddressSpace::new(TranslationMode::Sv39, 3, &mut mem, &mut frames).unwrap();
        let pwc = WalkCache::new(WalkCacheConfig::default());
        (mem, frames, space, pwc)
    }

    #[test]
    fn cold_walk_reads_every_level() {
        let (mut mem, mut frames, mut space, mut pwc) = fixture();
        space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x1000),
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                true,
            )
            .unwrap();
        let result = walk(&mem, &space, &mut pwc, VirtAddr::new(0x1234));
        assert_eq!(result.ref_count(), 3);
        assert_eq!(result.pt_refs[0].level, 2);
        assert_eq!(result.pt_refs[1].level, 1);
        assert_eq!(result.pt_refs[2].level, 0);
        assert_eq!(result.pwc_hit_level, None);
        let t = result.translation.unwrap();
        assert_eq!(t.paddr, PhysAddr::new(0x9000_0234));
    }

    #[test]
    fn warm_pwc_skips_to_leaf() {
        let (mut mem, mut frames, mut space, mut pwc) = fixture();
        for i in 0..2u64 {
            space
                .map_page(
                    &mut mem,
                    &mut frames,
                    VirtAddr::new(0x1000 + i * PAGE_SIZE),
                    PhysAddr::new(0x9000_0000 + i * PAGE_SIZE),
                    Perms::RW,
                    true,
                )
                .unwrap();
        }
        walk(&mem, &space, &mut pwc, VirtAddr::new(0x1000));
        // Adjacent page: both upper PTEs cached.
        let result = walk(&mem, &space, &mut pwc, VirtAddr::new(0x2000));
        assert_eq!(result.ref_count(), 1);
        assert_eq!(result.pt_refs[0].level, 0);
        assert_eq!(result.pwc_hit_level, Some(1));
    }

    #[test]
    fn partial_pwc_hit() {
        let (mut mem, mut frames, mut space, mut pwc) = fixture();
        // Two pages in the same 1 GiB region but different 2 MiB regions.
        space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x0000_1000),
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                true,
            )
            .unwrap();
        space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x0020_0000),
                PhysAddr::new(0x9010_0000),
                Perms::RW,
                true,
            )
            .unwrap();
        walk(&mem, &space, &mut pwc, VirtAddr::new(0x0000_1000));
        let result = walk(&mem, &space, &mut pwc, VirtAddr::new(0x0020_0000));
        // L2 step cached (same 1 GiB), L1 differs => read L1 + L0.
        assert_eq!(result.ref_count(), 2);
        assert_eq!(result.pwc_hit_level, Some(2));
    }

    #[test]
    fn fault_on_unmapped() {
        let (mem, _frames, space, mut pwc) = fixture();
        let result = walk(&mem, &space, &mut pwc, VirtAddr::new(0x1000));
        assert!(result.translation.is_none());
        assert_eq!(result.ref_count(), 1); // read the invalid root PTE
    }

    #[test]
    fn huge_page_walk_is_shorter() {
        let (mut mem, mut frames, mut space, mut pwc) = fixture();
        space
            .map_huge_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x4000_0000),
                PhysAddr::new(0x4000_0000),
                Perms::RX,
                false,
                2,
            )
            .unwrap();
        let result = walk(&mem, &space, &mut pwc, VirtAddr::new(0x4012_3456));
        assert_eq!(result.ref_count(), 1); // 1 GiB leaf at the root level
        let t = result.translation.unwrap();
        assert_eq!(t.level, 2);
        assert_eq!(t.paddr, PhysAddr::new(0x4012_3456));
    }

    #[test]
    fn non_canonical_faults_without_refs() {
        let (mem, _frames, space, mut pwc) = fixture();
        let result = walk(&mem, &space, &mut pwc, VirtAddr::new(1 << 40));
        assert!(result.translation.is_none());
        assert_eq!(result.ref_count(), 0);
    }

    #[test]
    fn walk_agrees_with_software_translate() {
        let (mut mem, mut frames, mut space, mut pwc) = fixture();
        let va = VirtAddr::new(0x7fff_f000);
        space
            .map_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x9abc_d000),
                Perms::RWX,
                true,
            )
            .unwrap();
        let hw = walk(&mem, &space, &mut pwc, va).translation.unwrap();
        let sw = space.translate(&mem, va).unwrap();
        assert_eq!(hw, sw);
    }
}
