//! `satp` / `hgatp` register encodings (RV64 privileged spec).
//!
//! The monitor and OS program translation through these CSRs; modelling
//! their exact bit layout (MODE 63:60, ASID/VMID 59:44, PPN 43:0) keeps the
//! software layer honest about what a context switch actually writes.

use hpmp_memsim::{PhysAddr, PAGE_SHIFT};

use crate::mode::TranslationMode;

/// MODE field values for `satp` (RV64).
const MODE_BARE: u64 = 0;
const MODE_SV39: u64 = 8;
const MODE_SV48: u64 = 9;
const MODE_SV57: u64 = 10;

/// A decoded `satp` value: translation mode, ASID and root-table PPN.
///
/// ```
/// use hpmp_memsim::PhysAddr;
/// use hpmp_paging::{Satp, TranslationMode};
///
/// let satp = Satp::new(TranslationMode::Sv39, 7, PhysAddr::new(0x8000_1000));
/// let decoded = Satp::from_bits(satp.to_bits()).expect("valid");
/// assert_eq!(decoded.mode(), Some(TranslationMode::Sv39));
/// assert_eq!(decoded.asid(), 7);
/// assert_eq!(decoded.root(), PhysAddr::new(0x8000_1000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Satp {
    bits: u64,
}

impl Satp {
    /// The Bare encoding: translation off.
    pub const BARE: Satp = Satp { bits: 0 };

    /// Builds a `satp` for `mode` with the given ASID and root-table page.
    pub fn new(mode: TranslationMode, asid: u16, root: PhysAddr) -> Satp {
        let mode_bits = match mode {
            TranslationMode::Sv39 => MODE_SV39,
            TranslationMode::Sv48 => MODE_SV48,
            TranslationMode::Sv57 => MODE_SV57,
        };
        Satp {
            bits: (mode_bits << 60)
                | ((asid as u64) << 44)
                | (root.page_number() & ((1 << 44) - 1)),
        }
    }

    /// Decodes a raw CSR value; `None` for reserved MODE encodings.
    pub fn from_bits(bits: u64) -> Option<Satp> {
        match bits >> 60 {
            MODE_BARE | MODE_SV39 | MODE_SV48 | MODE_SV57 => Some(Satp { bits }),
            _ => None,
        }
    }

    /// Raw CSR encoding.
    pub const fn to_bits(self) -> u64 {
        self.bits
    }

    /// The translation mode, or `None` for Bare.
    pub fn mode(self) -> Option<TranslationMode> {
        match self.bits >> 60 {
            MODE_SV39 => Some(TranslationMode::Sv39),
            MODE_SV48 => Some(TranslationMode::Sv48),
            MODE_SV57 => Some(TranslationMode::Sv57),
            _ => None,
        }
    }

    /// True for the Bare (translation-off) encoding.
    pub fn is_bare(self) -> bool {
        self.bits >> 60 == MODE_BARE
    }

    /// The address-space identifier.
    pub fn asid(self) -> u16 {
        ((self.bits >> 44) & 0xffff) as u16
    }

    /// Physical base of the root page table.
    pub fn root(self) -> PhysAddr {
        PhysAddr::new((self.bits & ((1 << 44) - 1)) << PAGE_SHIFT)
    }
}

/// A decoded `hgatp` value (hypervisor G-stage): like `satp` but the ASID
/// field is a VMID and MODE 8 means Sv39x4 (the root is 16 KiB).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Hgatp {
    bits: u64,
}

impl Hgatp {
    /// G-stage translation off.
    pub const BARE: Hgatp = Hgatp { bits: 0 };

    /// Builds an `hgatp` for Sv39x4 with the given VMID and root.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not 16 KiB aligned (the Sv39x4 requirement).
    pub fn sv39x4(vmid: u16, root: PhysAddr) -> Hgatp {
        assert!(
            root.is_aligned(16 * 1024),
            "Sv39x4 root must be 16 KiB aligned"
        );
        Hgatp {
            bits: (MODE_SV39 << 60)
                | (((vmid & 0x3fff) as u64) << 44)
                | (root.page_number() & ((1 << 44) - 1)),
        }
    }

    /// Raw CSR encoding.
    pub const fn to_bits(self) -> u64 {
        self.bits
    }

    /// Decodes a raw CSR value; `None` for reserved MODE encodings.
    pub fn from_bits(bits: u64) -> Option<Hgatp> {
        match bits >> 60 {
            MODE_BARE | MODE_SV39 => Some(Hgatp { bits }),
            _ => None,
        }
    }

    /// The virtual-machine identifier (14 bits on RV64).
    pub fn vmid(self) -> u16 {
        ((self.bits >> 44) & 0x3fff) as u16
    }

    /// Physical base of the (16 KiB) root.
    pub fn root(self) -> PhysAddr {
        PhysAddr::new((self.bits & ((1 << 44) - 1)) << PAGE_SHIFT)
    }

    /// True for the Bare encoding.
    pub fn is_bare(self) -> bool {
        self.bits >> 60 == MODE_BARE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satp_round_trip_all_modes() {
        for mode in [
            TranslationMode::Sv39,
            TranslationMode::Sv48,
            TranslationMode::Sv57,
        ] {
            let satp = Satp::new(mode, 42, PhysAddr::new(0x8123_4000));
            let decoded = Satp::from_bits(satp.to_bits()).unwrap();
            assert_eq!(decoded.mode(), Some(mode));
            assert_eq!(decoded.asid(), 42);
            assert_eq!(decoded.root(), PhysAddr::new(0x8123_4000));
            assert!(!decoded.is_bare());
        }
    }

    #[test]
    fn bare_is_zero() {
        assert_eq!(Satp::BARE.to_bits(), 0);
        assert!(Satp::BARE.is_bare());
        assert_eq!(Satp::BARE.mode(), None);
    }

    #[test]
    fn reserved_modes_rejected() {
        assert!(Satp::from_bits(5 << 60).is_none());
        assert!(Satp::from_bits(15 << 60).is_none());
        assert!(Hgatp::from_bits(9 << 60).is_none());
    }

    #[test]
    fn mode_field_values_match_spec() {
        let satp = Satp::new(TranslationMode::Sv39, 0, PhysAddr::new(0));
        assert_eq!(satp.to_bits() >> 60, 8);
        let satp = Satp::new(TranslationMode::Sv48, 0, PhysAddr::new(0));
        assert_eq!(satp.to_bits() >> 60, 9);
        let satp = Satp::new(TranslationMode::Sv57, 0, PhysAddr::new(0));
        assert_eq!(satp.to_bits() >> 60, 10);
    }

    #[test]
    fn hgatp_round_trip() {
        let hgatp = Hgatp::sv39x4(99, PhysAddr::new(0x8000_4000));
        let decoded = Hgatp::from_bits(hgatp.to_bits()).unwrap();
        assert_eq!(decoded.vmid(), 99);
        assert_eq!(decoded.root(), PhysAddr::new(0x8000_4000));
        assert!(!decoded.is_bare());
        assert!(Hgatp::BARE.is_bare());
    }

    #[test]
    #[should_panic(expected = "16 KiB aligned")]
    fn hgatp_requires_alignment() {
        Hgatp::sv39x4(0, PhysAddr::new(0x8000_1000));
    }
}
