//! # hpmp-paging
//!
//! RISC-V virtual-memory substrate for the HPMP (MICRO '23) reproduction:
//! Sv39/Sv48/Sv57 page tables built in simulated physical memory, the
//! hardware page-table walker (which reports the exact memory-reference
//! sequence of Figure 2), a two-level TLB with permission inlining, a
//! page-walk cache (the paper's PTECache), and the hypervisor extension's
//! two-stage Sv39×Sv39x4 walk (Figure 8).
//!
//! ```
//! use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, PhysMem, VirtAddr, PAGE_SIZE};
//! use hpmp_paging::{walk, AddressSpace, TranslationMode, WalkCache, WalkCacheConfig};
//!
//! let mut mem = PhysMem::new();
//! let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
//! let mut space = AddressSpace::new(TranslationMode::Sv39, 1, &mut mem, &mut frames).unwrap();
//! space.map_page(&mut mem, &mut frames, VirtAddr::new(0x1000),
//!                PhysAddr::new(0x9000_0000), Perms::RW, true).unwrap();
//!
//! let mut pwc = WalkCache::new(WalkCacheConfig::default());
//! let result = walk(&mem, &space, &mut pwc, VirtAddr::new(0x1000));
//! assert_eq!(result.ref_count(), 3); // the three squares of Figure 2-a
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mode;
mod nested;
mod pte;
mod pwc;
mod satp;
mod space;
mod tlb;
mod walker;

pub use mode::TranslationMode;
pub use nested::{
    nested_walk, GuestPhysAddr, GuestView, NestedPageTable, NestedRef, NestedRefKind,
    NestedWalkResult, GSTAGE_VMID,
};
pub use pte::Pte;
pub use pwc::{WalkCache, WalkCacheConfig, WalkCacheStats, WalkCacheStatsIds};
pub use satp::{Hgatp, Satp};
pub use space::{AddressSpace, MapError, PtFrameSource, Translation};
pub use tlb::{apply_translation, Tlb, TlbConfig, TlbEntry, TlbHit, TlbStats, TlbStatsIds};
pub use walker::{walk, PtRef, WalkResult};
