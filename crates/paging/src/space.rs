//! Address spaces: building and editing page-table trees in simulated
//! physical memory.
//!
//! The placement of the *page-table pages themselves* is the central knob of
//! the whole reproduction — Penglai-HPMP's benefit comes from the OS placing
//! all PT pages in one contiguous "fast" GMS. That placement is injected via
//! the [`PtFrameSource`] trait, so the OS layer can choose between a
//! scattered allocator (the baseline) and a contiguous pool (HPMP).

use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, VirtAddr, WordStore, PAGE_SIZE};

use crate::mode::TranslationMode;
use crate::pte::Pte;

/// Source of physical frames used for page-table pages.
///
/// Implementors decide *where* PT pages live; the address space only cares
/// that it gets a zeroed 4 KiB frame.
pub trait PtFrameSource: std::fmt::Debug {
    /// Allocates one frame for a page-table page.
    ///
    /// Returning `None` models out-of-memory and aborts the mapping
    /// operation with [`MapError::OutOfPtFrames`].
    fn alloc_pt_frame(&mut self) -> Option<PhysAddr>;
}

impl PtFrameSource for FrameAllocator {
    fn alloc_pt_frame(&mut self) -> Option<PhysAddr> {
        self.alloc()
    }
}

/// Error produced by mapping operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The virtual address is not canonical for the translation mode.
    NonCanonical(VirtAddr),
    /// The frame source ran out of page-table frames.
    OutOfPtFrames,
    /// The virtual page is already mapped.
    AlreadyMapped(VirtAddr),
    /// A huge-page leaf sits where a table pointer is needed.
    HugePageConflict(VirtAddr),
    /// Address not aligned to the requested page size.
    Misaligned(VirtAddr),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::NonCanonical(va) => write!(f, "non-canonical virtual address {va}"),
            MapError::OutOfPtFrames => f.write_str("out of page-table frames"),
            MapError::AlreadyMapped(va) => write!(f, "virtual page {va} already mapped"),
            MapError::HugePageConflict(va) => {
                write!(f, "huge page conflicts with table at {va}")
            }
            MapError::Misaligned(va) => write!(f, "address {va} not aligned to page size"),
        }
    }
}

impl std::error::Error for MapError {}

/// A translation produced by a software walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Physical address corresponding to the queried virtual address.
    pub paddr: PhysAddr,
    /// Permissions of the leaf mapping.
    pub perms: Perms,
    /// Level at which the leaf was found (0 = 4 KiB page, 1 = 2 MiB, ...).
    pub level: usize,
    /// Whether the leaf is user-accessible.
    pub user: bool,
}

/// A page-table tree rooted in simulated physical memory.
///
/// ```
/// use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, PhysMem, VirtAddr, PAGE_SIZE};
/// use hpmp_paging::{AddressSpace, TranslationMode};
///
/// let mut mem = PhysMem::new();
/// let mut pt_frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
/// let mut space = AddressSpace::new(TranslationMode::Sv39, 1, &mut mem, &mut pt_frames)
///     .expect("root frame");
/// space
///     .map_page(&mut mem, &mut pt_frames, VirtAddr::new(0x1000), PhysAddr::new(0x9000_0000),
///               Perms::RW, true)
///     .expect("map");
/// let t = space.translate(&mem, VirtAddr::new(0x1234)).expect("translate");
/// assert_eq!(t.paddr, PhysAddr::new(0x9000_0234));
/// ```
#[derive(Debug)]
pub struct AddressSpace {
    mode: TranslationMode,
    asid: u16,
    root: PhysAddr,
    /// Every PT page in this tree, in allocation order (root first).
    pt_pages: Vec<PhysAddr>,
    mapped_pages: u64,
}

impl AddressSpace {
    /// Creates an empty address space, allocating the root PT page.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::OutOfPtFrames`] if the frame source is exhausted.
    pub fn new(
        mode: TranslationMode,
        asid: u16,
        mem: &mut dyn WordStore,
        frames: &mut dyn PtFrameSource,
    ) -> Result<AddressSpace, MapError> {
        let root = frames.alloc_pt_frame().ok_or(MapError::OutOfPtFrames)?;
        mem.zero_page(root);
        Ok(AddressSpace {
            mode,
            asid,
            root,
            pt_pages: vec![root],
            mapped_pages: 0,
        })
    }

    /// The translation mode of this space.
    pub fn mode(&self) -> TranslationMode {
        self.mode
    }

    /// The address-space identifier (ASID) used to tag TLB entries.
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Physical address of the root page-table page (the `satp` PPN).
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// All page-table pages in this tree, root first.
    pub fn pt_pages(&self) -> &[PhysAddr] {
        &self.pt_pages
    }

    /// Number of leaf mappings installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Maps one 4 KiB page.
    ///
    /// # Errors
    ///
    /// Fails if the VA is non-canonical or already mapped, if an intermediate
    /// level is occupied by a huge-page leaf, or if PT frames run out.
    pub fn map_page(
        &mut self,
        mem: &mut dyn WordStore,
        frames: &mut dyn PtFrameSource,
        va: VirtAddr,
        pa: PhysAddr,
        perms: Perms,
        user: bool,
    ) -> Result<(), MapError> {
        self.map_at_level(mem, frames, va, pa, perms, user, 0)
    }

    /// Maps a huge page at `level` (1 = 2 MiB, 2 = 1 GiB, ...).
    ///
    /// # Errors
    ///
    /// As [`AddressSpace::map_page`], plus [`MapError::Misaligned`] if `va`
    /// or `pa` is not aligned to the huge-page size.
    #[allow(clippy::too_many_arguments)]
    pub fn map_huge_page(
        &mut self,
        mem: &mut dyn WordStore,
        frames: &mut dyn PtFrameSource,
        va: VirtAddr,
        pa: PhysAddr,
        perms: Perms,
        user: bool,
        level: usize,
    ) -> Result<(), MapError> {
        let span = self.mode.level_span(level);
        if !va.is_aligned(span) || !pa.is_aligned(span) {
            return Err(MapError::Misaligned(va));
        }
        self.map_at_level(mem, frames, va, pa, perms, user, level)
    }

    #[allow(clippy::too_many_arguments)]
    fn map_at_level(
        &mut self,
        mem: &mut dyn WordStore,
        frames: &mut dyn PtFrameSource,
        va: VirtAddr,
        pa: PhysAddr,
        perms: Perms,
        user: bool,
        target_level: usize,
    ) -> Result<(), MapError> {
        if !self.mode.is_canonical(va) {
            return Err(MapError::NonCanonical(va));
        }
        let mut table = self.root;
        let mut level = self.mode.root_level();
        while level > target_level {
            let slot = Self::pte_addr(table, va, level);
            let pte = Pte::from_bits(mem.read_u64(slot));
            if pte.is_leaf() {
                return Err(MapError::HugePageConflict(va));
            }
            table = if pte.is_table() {
                pte.target()
            } else {
                let frame = frames.alloc_pt_frame().ok_or(MapError::OutOfPtFrames)?;
                mem.zero_page(frame);
                mem.write_u64(slot, Pte::table(frame).to_bits());
                self.pt_pages.push(frame);
                frame
            };
            level -= 1;
        }
        let slot = Self::pte_addr(table, va, target_level);
        let existing = Pte::from_bits(mem.read_u64(slot));
        if existing.is_valid() {
            return Err(MapError::AlreadyMapped(va));
        }
        mem.write_u64(slot, Pte::leaf(pa, perms, user).to_bits());
        self.mapped_pages += 1;
        Ok(())
    }

    /// Changes the permissions of the leaf mapping covering `va`
    /// (`mprotect`). Returns the old translation, or `None` if unmapped.
    /// The frame and user bit are preserved.
    pub fn protect_page(
        &mut self,
        mem: &mut dyn WordStore,
        va: VirtAddr,
        perms: Perms,
    ) -> Option<Translation> {
        let (slot, old) = self.locate(mem, va)?;
        let new = Pte::leaf(
            PhysAddr::new(old.paddr.raw() - (va.raw() & (self.mode.level_span(old.level) - 1))),
            perms,
            old.user,
        );
        mem.write_u64(slot, new.to_bits());
        Some(old)
    }

    /// Replaces the frame and permissions of the leaf mapping covering `va`
    /// (the copy-on-write resolution path). Returns the old translation.
    pub fn remap_page(
        &mut self,
        mem: &mut dyn WordStore,
        va: VirtAddr,
        frame: PhysAddr,
        perms: Perms,
    ) -> Option<Translation> {
        let (slot, old) = self.locate(mem, va)?;
        mem.write_u64(slot, Pte::leaf(frame, perms, old.user).to_bits());
        Some(old)
    }

    /// Removes the leaf mapping covering `va`. Returns the old translation,
    /// or `None` if the page was not mapped. Intermediate tables are not
    /// reclaimed (as in most kernels' fast path).
    pub fn unmap_page(&mut self, mem: &mut dyn WordStore, va: VirtAddr) -> Option<Translation> {
        let (slot, translation) = self.locate(mem, va)?;
        mem.write_u64(slot, Pte::INVALID.to_bits());
        self.mapped_pages = self.mapped_pages.saturating_sub(1);
        Some(translation)
    }

    /// Software walk: translates `va` without modelling timing.
    pub fn translate(&self, mem: &dyn WordStore, va: VirtAddr) -> Option<Translation> {
        self.locate(mem, va).map(|(_, t)| t)
    }

    fn locate(&self, mem: &dyn WordStore, va: VirtAddr) -> Option<(PhysAddr, Translation)> {
        if !self.mode.is_canonical(va) {
            return None;
        }
        let mut table = self.root;
        let mut level = self.mode.root_level();
        loop {
            let slot = Self::pte_addr(table, va, level);
            let pte = Pte::from_bits(mem.read_u64(slot));
            if pte.is_leaf() {
                let span = self.mode.level_span(level);
                let offset = va.raw() & (span - 1);
                let translation = Translation {
                    paddr: PhysAddr::new(pte.target().raw() + offset),
                    perms: pte.perms(),
                    level,
                    user: pte.is_user(),
                };
                return Some((slot, translation));
            }
            if !pte.is_table() || level == 0 {
                return None;
            }
            table = pte.target();
            level -= 1;
        }
    }

    /// Physical address of the PTE slot for `va` at `level` inside `table`.
    pub fn pte_addr(table: PhysAddr, va: VirtAddr, level: usize) -> PhysAddr {
        debug_assert!(table.is_aligned(PAGE_SIZE));
        PhysAddr::new(table.raw() + va.vpn(level) * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_memsim::PhysMem;

    fn setup() -> (PhysMem, FrameAllocator, AddressSpace) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 256 * PAGE_SIZE);
        let space = AddressSpace::new(TranslationMode::Sv39, 7, &mut mem, &mut frames).unwrap();
        (mem, frames, space)
    }

    #[test]
    fn map_and_translate() {
        let (mut mem, mut frames, mut space) = setup();
        space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x4000),
                PhysAddr::new(0x9000_1000),
                Perms::RW,
                true,
            )
            .unwrap();
        let t = space.translate(&mem, VirtAddr::new(0x4abc)).unwrap();
        assert_eq!(t.paddr, PhysAddr::new(0x9000_1abc));
        assert_eq!(t.perms, Perms::RW);
        assert_eq!(t.level, 0);
        assert!(t.user);
        // Sv39: root + level1 + level0 = 3 PT pages for one mapping.
        assert_eq!(space.pt_pages().len(), 3);
        assert_eq!(space.mapped_pages(), 1);
    }

    #[test]
    fn unmapped_va_is_none() {
        let (mem, _frames, space) = setup();
        assert!(space.translate(&mem, VirtAddr::new(0x4000)).is_none());
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut frames, mut space) = setup();
        let va = VirtAddr::new(0x4000);
        space
            .map_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x9000_0000),
                Perms::READ,
                false,
            )
            .unwrap();
        let err = space
            .map_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x9000_1000),
                Perms::READ,
                false,
            )
            .unwrap_err();
        assert_eq!(err, MapError::AlreadyMapped(va));
    }

    #[test]
    fn neighbouring_pages_share_tables() {
        let (mut mem, mut frames, mut space) = setup();
        for i in 0..8u64 {
            space
                .map_page(
                    &mut mem,
                    &mut frames,
                    VirtAddr::new(0x4000 + i * PAGE_SIZE),
                    PhysAddr::new(0x9000_0000 + i * PAGE_SIZE),
                    Perms::RW,
                    true,
                )
                .unwrap();
        }
        assert_eq!(space.pt_pages().len(), 3);
    }

    #[test]
    fn distant_pages_grow_tree() {
        let (mut mem, mut frames, mut space) = setup();
        space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x4000),
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                true,
            )
            .unwrap();
        // Different 1 GiB region => new L1 and L0 tables.
        space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(2 << 30),
                PhysAddr::new(0x9100_0000),
                Perms::RW,
                true,
            )
            .unwrap();
        assert_eq!(space.pt_pages().len(), 5);
    }

    #[test]
    fn unmap_removes_translation() {
        let (mut mem, mut frames, mut space) = setup();
        let va = VirtAddr::new(0x4000);
        space
            .map_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                true,
            )
            .unwrap();
        let old = space.unmap_page(&mut mem, va).unwrap();
        assert_eq!(old.paddr, PhysAddr::new(0x9000_0000));
        assert!(space.translate(&mem, va).is_none());
        assert!(space.unmap_page(&mut mem, va).is_none());
    }

    #[test]
    fn protect_page_changes_perms_in_place() {
        let (mut mem, mut frames, mut space) = setup();
        let va = VirtAddr::new(0x4000);
        space
            .map_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                true,
            )
            .unwrap();
        let old = space.protect_page(&mut mem, va, Perms::READ).unwrap();
        assert_eq!(old.perms, Perms::RW);
        let t = space.translate(&mem, va + 0x10).unwrap();
        assert_eq!(t.perms, Perms::READ);
        assert_eq!(t.paddr, PhysAddr::new(0x9000_0010), "frame preserved");
        assert!(t.user, "user bit preserved");
        assert!(space
            .protect_page(&mut mem, VirtAddr::new(0x9_9000), Perms::READ)
            .is_none());
    }

    #[test]
    fn remap_page_swaps_frame() {
        let (mut mem, mut frames, mut space) = setup();
        let va = VirtAddr::new(0x4000);
        space
            .map_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x9000_0000),
                Perms::READ,
                true,
            )
            .unwrap();
        let old = space
            .remap_page(&mut mem, va, PhysAddr::new(0x9100_0000), Perms::RW)
            .unwrap();
        assert_eq!(old.paddr, PhysAddr::new(0x9000_0000));
        let t = space.translate(&mem, va).unwrap();
        assert_eq!(t.paddr, PhysAddr::new(0x9100_0000));
        assert_eq!(t.perms, Perms::RW);
    }

    #[test]
    fn huge_page_mapping() {
        let (mut mem, mut frames, mut space) = setup();
        let va = VirtAddr::new(2 << 20); // 2 MiB aligned
        space
            .map_huge_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x4000_0000),
                Perms::RX,
                false,
                1,
            )
            .unwrap();
        let t = space
            .translate(&mem, VirtAddr::new((2 << 20) + 0x12345))
            .unwrap();
        assert_eq!(t.level, 1);
        assert_eq!(t.paddr, PhysAddr::new(0x4000_0000 + 0x12345));
        // Only root + one L1 table.
        assert_eq!(space.pt_pages().len(), 2);
    }

    #[test]
    fn huge_page_alignment_enforced() {
        let (mut mem, mut frames, mut space) = setup();
        let err = space
            .map_huge_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x1000),
                PhysAddr::new(0x4000_0000),
                Perms::RX,
                false,
                1,
            )
            .unwrap_err();
        assert!(matches!(err, MapError::Misaligned(_)));
    }

    #[test]
    fn huge_page_blocks_small_mapping() {
        let (mut mem, mut frames, mut space) = setup();
        space
            .map_huge_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0),
                PhysAddr::new(0x4000_0000),
                Perms::RW,
                false,
                1,
            )
            .unwrap();
        let err = space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x1000),
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                false,
            )
            .unwrap_err();
        assert!(matches!(err, MapError::HugePageConflict(_)));
    }

    #[test]
    fn non_canonical_rejected() {
        let (mut mem, mut frames, mut space) = setup();
        let va = VirtAddr::new(1 << 40);
        let err = space
            .map_page(
                &mut mem,
                &mut frames,
                va,
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                false,
            )
            .unwrap_err();
        assert_eq!(err, MapError::NonCanonical(va));
        assert!(space.translate(&mem, va).is_none());
    }

    #[test]
    fn out_of_frames_reported() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), PAGE_SIZE);
        let mut space = AddressSpace::new(TranslationMode::Sv39, 0, &mut mem, &mut frames).unwrap();
        let err = space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x1000),
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                false,
            )
            .unwrap_err();
        assert_eq!(err, MapError::OutOfPtFrames);
    }

    #[test]
    fn sv48_uses_four_levels() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let mut space = AddressSpace::new(TranslationMode::Sv48, 0, &mut mem, &mut frames).unwrap();
        space
            .map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x1000),
                PhysAddr::new(0x9000_0000),
                Perms::RW,
                false,
            )
            .unwrap();
        assert_eq!(space.pt_pages().len(), 4);
    }
}
