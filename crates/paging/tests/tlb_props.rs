//! Property tests: the two-level TLB against a reference model, and walk
//! determinism under arbitrary PWC state.

use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, PhysMem, VirtAddr, PAGE_SIZE};
use hpmp_paging::{
    walk, AddressSpace, Tlb, TlbConfig, TlbEntry, TranslationMode, WalkCache,
    WalkCacheConfig,
};
use proptest::prelude::*;

fn entry(asid: u16, vpn: u64) -> TlbEntry {
    TlbEntry {
        asid,
        vpn,
        frame: PhysAddr::new(vpn << 12),
        page_perms: Perms::RW,
        isolation_perms: Perms::RWX,
        user: true,
    }
}

proptest! {
    /// A filled translation remains visible until a flush that covers it;
    /// flushes never over- or under-remove across ASIDs.
    #[test]
    fn flush_scoping(
        fills in prop::collection::vec((0u16..4, 0u64..64), 1..48),
        flush_asid in 0u16..4,
    ) {
        let mut tlb = Tlb::new(TlbConfig { l1_entries: 64, l2_entries: 1024,
                                           l2_hit_latency: 4 });
        for &(asid, vpn) in &fills {
            tlb.fill(entry(asid, vpn));
        }
        tlb.flush_asid(flush_asid);
        for &(asid, vpn) in &fills {
            let hit = tlb.lookup(asid, VirtAddr::new(vpn << 12)).is_some();
            if asid == flush_asid {
                prop_assert!(!hit, "asid {asid} vpn {vpn} must be flushed");
            }
            // Survivors may still have been evicted by capacity, so only
            // the flushed direction is asserted.
        }
    }

    /// With capacity to spare, every fill is retrievable and returns the
    /// exact entry.
    #[test]
    fn fills_are_faithful(fills in prop::collection::vec((0u16..4, 0u64..512), 1..32)) {
        let mut tlb = Tlb::new(TlbConfig { l1_entries: 64, l2_entries: 1024,
                                           l2_hit_latency: 4 });
        let mut last = std::collections::HashMap::new();
        for &(asid, vpn) in &fills {
            tlb.fill(entry(asid, vpn));
            last.insert((asid, vpn), ());
        }
        // Direct-mapped L2 conflicts only occur for equal vpn%1024; with
        // vpn < 512 every (asid, vpn) pair with distinct vpn coexists —
        // same-vpn different-asid pairs can conflict, so check only the
        // most recent fill per vpn.
        let mut latest_by_vpn = std::collections::HashMap::new();
        for &(asid, vpn) in &fills {
            latest_by_vpn.insert(vpn, asid);
        }
        for (&vpn, &asid) in &latest_by_vpn {
            let hit = tlb.lookup(asid, VirtAddr::new(vpn << 12));
            prop_assert!(hit.is_some(), "latest fill for vpn {vpn} lost");
            let (e, _) = hit.unwrap();
            prop_assert_eq!(e.frame, PhysAddr::new(vpn << 12));
        }
    }

    /// The hardware walk returns the same translation no matter what PWC
    /// state it starts from (caches accelerate, never change, the result).
    #[test]
    fn walk_invariant_under_pwc_state(
        pages in prop::collection::vec(0u64..256, 1..16),
        probes in prop::collection::vec(0u64..256, 1..16),
        pwc_entries in 0usize..9,
    ) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 128 * PAGE_SIZE);
        let mut space =
            AddressSpace::new(TranslationMode::Sv39, 1, &mut mem, &mut frames).unwrap();
        for (i, &p) in pages.iter().enumerate() {
            let _ = space.map_page(&mut mem, &mut frames,
                                   VirtAddr::new(0x40_0000 + p * PAGE_SIZE),
                                   PhysAddr::new(0x9000_0000 + (i as u64) * PAGE_SIZE),
                                   Perms::RW, true);
        }
        let mut pwc = WalkCache::new(WalkCacheConfig { entries: pwc_entries,
                                                       hit_latency: 1 });
        for &p in &probes {
            let va = VirtAddr::new(0x40_0000 + p * PAGE_SIZE);
            let with_pwc = walk(&mem, &space, &mut pwc, va).translation;
            let mut cold = WalkCache::new(WalkCacheConfig { entries: 0, hit_latency: 1 });
            let without = walk(&mem, &space, &mut cold, va).translation;
            prop_assert_eq!(with_pwc, without, "PWC changed a translation at {}", va);
        }
    }
}
