//! Randomised tests: the two-level TLB against a reference model, and walk
//! determinism under arbitrary PWC state. Driven by the in-repo
//! [`SplitMix64`] PRNG with fixed seeds, so every run is deterministic and
//! reproducible.

use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, PhysMem, SplitMix64, VirtAddr, PAGE_SIZE};
use hpmp_paging::{
    walk, AddressSpace, Tlb, TlbConfig, TlbEntry, TranslationMode, WalkCache, WalkCacheConfig,
};

fn entry(asid: u16, vpn: u64) -> TlbEntry {
    TlbEntry {
        asid,
        vpn,
        frame: PhysAddr::new(vpn << 12),
        page_perms: Perms::RW,
        isolation_perms: Perms::RWX,
        user: true,
        epoch: 0,
    }
}

#[test]
fn flush_scoping() {
    let mut rng = SplitMix64::seed_from_u64(0x71b1);
    for _ in 0..128 {
        let mut tlb = Tlb::new(TlbConfig {
            l1_entries: 64,
            l2_entries: 1024,
            l2_hit_latency: 4,
        });
        let len = rng.gen_range(1..48) as usize;
        let fills: Vec<(u16, u64)> = (0..len)
            .map(|_| (rng.gen_range(0..4) as u16, rng.gen_range(0..64)))
            .collect();
        let flush_asid = rng.gen_range(0..4) as u16;
        for &(asid, vpn) in &fills {
            tlb.fill(entry(asid, vpn));
        }
        tlb.flush_asid(flush_asid);
        for &(asid, vpn) in &fills {
            let hit = tlb.lookup(asid, VirtAddr::new(vpn << 12)).is_some();
            if asid == flush_asid {
                assert!(!hit, "asid {asid} vpn {vpn} must be flushed");
            }
            // Survivors may still have been evicted by capacity, so only
            // the flushed direction is asserted.
        }
    }
}

#[test]
fn fills_are_faithful() {
    let mut rng = SplitMix64::seed_from_u64(0x71b2);
    for _ in 0..128 {
        let mut tlb = Tlb::new(TlbConfig {
            l1_entries: 64,
            l2_entries: 1024,
            l2_hit_latency: 4,
        });
        let len = rng.gen_range(1..32) as usize;
        let fills: Vec<(u16, u64)> = (0..len)
            .map(|_| (rng.gen_range(0..4) as u16, rng.gen_range(0..512)))
            .collect();
        for &(asid, vpn) in &fills {
            tlb.fill(entry(asid, vpn));
        }
        // Direct-mapped L2 conflicts only occur for equal vpn%1024; with
        // vpn < 512 every (asid, vpn) pair with distinct vpn coexists —
        // same-vpn different-asid pairs can conflict, so check only the
        // most recent fill per vpn.
        let mut latest_by_vpn = std::collections::HashMap::new();
        for &(asid, vpn) in &fills {
            latest_by_vpn.insert(vpn, asid);
        }
        for (&vpn, &asid) in &latest_by_vpn {
            let hit = tlb.lookup(asid, VirtAddr::new(vpn << 12));
            assert!(hit.is_some(), "latest fill for vpn {vpn} lost");
            let (e, _) = hit.unwrap();
            assert_eq!(e.frame, PhysAddr::new(vpn << 12));
        }
    }
}

#[test]
fn walk_invariant_under_pwc_state() {
    let mut rng = SplitMix64::seed_from_u64(0x71b3);
    for _ in 0..48 {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 128 * PAGE_SIZE);
        let mut space = AddressSpace::new(TranslationMode::Sv39, 1, &mut mem, &mut frames).unwrap();
        let n_pages = rng.gen_range(1..16) as usize;
        for i in 0..n_pages {
            let _ = space.map_page(
                &mut mem,
                &mut frames,
                VirtAddr::new(0x40_0000 + rng.gen_range(0..256) * PAGE_SIZE),
                PhysAddr::new(0x9000_0000 + (i as u64) * PAGE_SIZE),
                Perms::RW,
                true,
            );
        }
        let pwc_entries = rng.gen_range(0..9) as usize;
        let mut pwc = WalkCache::new(WalkCacheConfig {
            entries: pwc_entries,
            hit_latency: 1,
        });
        let n_probes = rng.gen_range(1..16) as usize;
        for _ in 0..n_probes {
            let va = VirtAddr::new(0x40_0000 + rng.gen_range(0..256) * PAGE_SIZE);
            let with_pwc = walk(&mem, &space, &mut pwc, va).translation;
            let mut cold = WalkCache::new(WalkCacheConfig {
                entries: 0,
                hit_latency: 1,
            });
            let without = walk(&mem, &space, &mut cold, va).translation;
            assert_eq!(with_pwc, without, "PWC changed a translation at {va}");
        }
    }
}
