//! Differential fuzz bodies for the `fuzz/` cargo-fuzz targets.
//!
//! The actual properties live here, in-tree, so they run in three ways:
//!
//! 1. As libFuzzer targets (`cargo fuzz run pmpte_decode`, …): the thin
//!    wrappers in `fuzz/fuzz_targets/` call straight into these functions.
//!    That layer needs the external `libfuzzer-sys` crate and a nightly
//!    toolchain, so it lives outside the workspace.
//! 2. As the deterministic corpus smoke ([`smoke`], driven by
//!    `hpmp-verify fuzz`): every committed seed is replayed, then a
//!    [`SplitMix64`]-derived mutation storm runs over them — no external
//!    dependency, byte-identical across runs, suitable for tier-1 CI.
//! 3. As plain unit tests below.
//!
//! Every body takes arbitrary bytes and must not panic; where the input
//! parses, the body asserts a differential property (an independent
//! reference implementation agrees, or a round-trip is the identity).

use hpmp_core::{LeafPmpte, MalformedPmpte, RootPmpte};
use hpmp_faults::CampaignSpec;
use hpmp_memsim::SplitMix64;
use hpmp_penglai::TeeFlavor;
use hpmp_trace::json::parse_json;
use hpmp_trace::{BenchReport, HostProfile, Snapshot, SpanStream, Timeline, TraceReader};

fn word(data: &[u8], offset: usize) -> u64 {
    let mut bytes = [0u8; 8];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = data.get(offset + i).copied().unwrap_or(0);
    }
    u64::from_le_bytes(bytes)
}

/// Independent reference for root-pmpte validation: bits 4–12 and 49–62
/// are reserved-zero, and the whole word must have even parity (the bit
/// positions are spelled out here from Figure 6-c rather than reusing the
/// production masks, so a mask typo in either side is a mismatch, not a
/// silently shared bug).
fn reference_root_decode(bits: u64) -> Result<(bool, u8, u64), MalformedPmpte> {
    let reserved = (0x1ffu64 << 4) | (0x3fffu64 << 49);
    if bits & reserved != 0 {
        return Err(MalformedPmpte::ReservedBits(bits));
    }
    if bits.count_ones() % 2 == 1 {
        return Err(MalformedPmpte::ParityMismatch(bits));
    }
    let valid = bits & 1 != 0;
    let rwx = ((bits >> 1) & 0x7) as u8;
    let ppn = (bits >> 13) & ((1u64 << 36) - 1);
    Ok((valid, rwx, ppn))
}

/// Independent reference for leaf-pmpte validation: each 4-bit nibble's
/// bit 3 must equal the parity of its three permission bits.
fn reference_leaf_ok(bits: u64) -> bool {
    (0..16).all(|i| {
        let nibble = (bits >> (i * 4)) & 0xf;
        let perms = nibble & 0x7;
        let parity = (nibble >> 3) & 1;
        parity == (perms.count_ones() as u64 & 1)
    })
}

/// Fuzz body: pmpte decode must agree with the parity-checked reference
/// or reject fail-closed. The first 8 bytes are a root pmpte, the next 8
/// a leaf pmpte (missing bytes read as zero).
///
/// # Panics
///
/// Panics when production decode and the reference disagree, or when a
/// legal encoding fails to round-trip — each panic is a finding.
pub fn fuzz_pmpte_decode(data: &[u8]) {
    let root_bits = word(data, 0);
    match (
        RootPmpte::decode(root_bits),
        reference_root_decode(root_bits),
    ) {
        (Ok(entry), Ok((valid, rwx, ppn))) => {
            assert_eq!(entry.to_bits(), root_bits, "decode must be lossless");
            assert!(!entry.is_malformed());
            assert_eq!(entry.is_valid(), valid);
            if entry.is_huge() {
                assert_eq!(entry.perms().bits(), rwx, "huge perms disagree");
                assert_ne!(rwx, 0, "huge entry with empty perms");
            }
            if entry.is_pointer() {
                assert_eq!(rwx, 0, "pointer with perms set");
                assert_eq!(
                    entry.leaf_table().page_number(),
                    ppn,
                    "pointer PPN disagrees"
                );
            }
        }
        (Err(got), Err(want)) => {
            assert_eq!(got, want, "rejection reasons disagree");
            assert!(RootPmpte::from_bits(root_bits).is_malformed());
        }
        (got, want) => {
            panic!("root pmpte {root_bits:#018x}: production says {got:?}, reference says {want:?}")
        }
    }

    let leaf_bits = word(data, 8);
    let reference_ok = reference_leaf_ok(leaf_bits);
    match LeafPmpte::decode(leaf_bits) {
        Ok(entry) => {
            assert!(
                reference_ok,
                "leaf pmpte {leaf_bits:#018x} accepted but a nibble parity is bad"
            );
            assert_eq!(entry.to_bits(), leaf_bits);
            for i in 0..16 {
                let nibble = (leaf_bits >> (i * 4)) & 0x7;
                assert_eq!(u64::from(entry.perm(i).bits()), nibble);
                // Rewriting a page with its own permission is the identity.
                assert_eq!(entry.with_perm(i, entry.perm(i)), entry);
            }
        }
        Err(_) => {
            assert!(
                !reference_ok,
                "leaf pmpte {leaf_bits:#018x} rejected but every nibble parity is good"
            );
            assert!(LeafPmpte::from_bits(leaf_bits).is_malformed());
        }
    }
}

/// Fuzz body: `CampaignSpec` parsing must never panic, and any spec that
/// parses must survive parse → canonical → parse as the identity.
pub fn fuzz_campaign_spec(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    if let Ok(spec) = CampaignSpec::parse(&text) {
        let canon = spec.canonical();
        let again = CampaignSpec::parse(&canon)
            .unwrap_or_else(|e| panic!("canonical `{canon}` must reparse: {e}"));
        assert_eq!(again, spec, "canonical round-trip must be the identity");
        assert_eq!(again.canonical(), canon, "canonical must be a fixed point");
        // Derived quantities must hold on anything that parses.
        let total: u64 = (0..spec.shards).map(|s| spec.shard_trials(s)).sum();
        assert_eq!(total, spec.faults, "shard split must cover the total");
        if spec.flavor == TeeFlavor::PenglaiPmp {
            assert!(
                !spec
                    .effective_classes()
                    .contains(&hpmp_faults::FaultClass::PmpteFlip),
                "PMP flavour must drop pmpte flips"
            );
        }
    }
}

/// Fuzz body: every versioned JSON reader must reject arbitrary bytes
/// with a typed error, never a panic.
pub fn fuzz_json_readers(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let _ = parse_json(&text);
    let _ = Snapshot::from_json(&text);
    let _ = BenchReport::from_json(&text);
    let _ = HostProfile::from_json(&text);
    let _ = SpanStream::parse(data);
    let _ = Timeline::parse(data);
    if let Ok(mut reader) = TraceReader::new(data) {
        let _ = reader.read_all();
    }
}

/// A fuzz body: takes arbitrary bytes, panics on a property violation.
pub type FuzzBody = fn(&[u8]);

/// The three fuzz targets, by the name `cargo fuzz` knows them under.
pub const TARGETS: [(&str, FuzzBody); 3] = [
    ("pmpte_decode", fuzz_pmpte_decode),
    ("campaign_spec", fuzz_campaign_spec),
    ("json_readers", fuzz_json_readers),
];

/// Looks up a fuzz body by target name.
pub fn target(name: &str) -> Option<FuzzBody> {
    TARGETS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, body)| body)
}

/// Outcome of one deterministic corpus smoke run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SmokeReport {
    /// Committed seeds replayed.
    pub seeds: usize,
    /// Mutated inputs generated and executed.
    pub mutations: usize,
}

/// Deterministic corpus smoke: replays every seed in `corpus` through
/// `body`, then runs `iters` mutations — each derived from a seed (or from
/// empty input when the corpus is empty) by [`SplitMix64`]-driven byte
/// flips, truncation and extension, exactly reproducible from `seed`.
///
/// This is the dependency-free stand-in the CI smoke job runs on stable;
/// `cargo fuzz run` drives the same bodies coverage-guided when a nightly
/// toolchain and `libfuzzer-sys` are available.
///
/// # Panics
///
/// Panics when the body panics — i.e. when a property fails.
pub fn smoke(body: fn(&[u8]), corpus: &[Vec<u8>], iters: usize, seed: u64) -> SmokeReport {
    for input in corpus {
        body(input);
    }
    let mut rng = SplitMix64::seed_from_u64(seed);
    for _ in 0..iters {
        let mut input = if corpus.is_empty() {
            Vec::new()
        } else {
            corpus[rng.gen_range(0..corpus.len() as u64) as usize].clone()
        };
        for _ in 0..rng.gen_range(1..8) {
            match rng.gen_range(0..4) {
                // Flip one bit.
                0 if !input.is_empty() => {
                    let i = rng.gen_range(0..input.len() as u64) as usize;
                    input[i] ^= 1 << rng.gen_range(0..8);
                }
                // Overwrite one byte.
                1 if !input.is_empty() => {
                    let i = rng.gen_range(0..input.len() as u64) as usize;
                    input[i] = rng.gen_range(0..256) as u8;
                }
                // Truncate.
                2 if !input.is_empty() => {
                    let i = rng.gen_range(0..input.len() as u64) as usize;
                    input.truncate(i);
                }
                // Append a few bytes.
                _ => {
                    for _ in 0..rng.gen_range(1..9) {
                        input.push(rng.gen_range(0..256) as u8);
                    }
                }
            }
        }
        body(&input);
    }
    SmokeReport {
        seeds: corpus.len(),
        mutations: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Legal encodings must pass the differential check.
    #[test]
    fn legal_pmptes_pass_the_differential_body() {
        use hpmp_memsim::{Perms, PhysAddr};
        let mut data = [0u8; 16];
        for root in [
            RootPmpte::INVALID,
            RootPmpte::pointer(PhysAddr::new(0x8040_0000)),
            RootPmpte::huge(Perms::RW),
            RootPmpte::huge(Perms::RWX),
        ] {
            data[..8].copy_from_slice(&root.to_bits().to_le_bytes());
            for leaf in [
                LeafPmpte::splat(Perms::NONE),
                LeafPmpte::splat(Perms::RW).with_perm(3, Perms::RX),
            ] {
                data[8..].copy_from_slice(&leaf.to_bits().to_le_bytes());
                fuzz_pmpte_decode(&data);
            }
        }
    }

    #[test]
    fn bodies_survive_a_mutation_storm() {
        let corpora: [(&str, Vec<Vec<u8>>); 3] = [
            ("pmpte_decode", vec![vec![0u8; 16], vec![0xff; 16]]),
            (
                "campaign_spec",
                vec![b"faults=10,shards=2".to_vec(), b"flavor=pmp".to_vec()],
            ),
            ("json_readers", vec![b"{\"a\":1}".to_vec(), b"[]".to_vec()]),
        ];
        for (name, corpus) in corpora {
            let body = target(name).expect("known target");
            let report = smoke(body, &corpus, 500, 0x5eed);
            assert_eq!(report.mutations, 500);
        }
    }

    #[test]
    fn smoke_is_deterministic_and_unknown_targets_are_none() {
        assert!(target("nonsense").is_none());
        let body = target("json_readers").unwrap();
        let a = smoke(body, &[b"x".to_vec()], 50, 7);
        let b = smoke(body, &[b"x".to_vec()], 50, 7);
        assert_eq!(a, b);
    }
}
