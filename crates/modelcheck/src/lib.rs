//! # hpmp-modelcheck
//!
//! Exhaustive small-scope verification of the secure monitor, promoting
//! the shootdown battery's sampled fail-closed property ("held on 1000
//! random schedules") to a bounded guarantee ("holds on **all** schedules
//! of up to k ops across n harts"), in the spirit of Cheang et al.,
//! "Verifying RISC-V Physical Memory Protection".
//!
//! Three pieces:
//!
//! * [`bmc`] — the bounded model checker: explicit-state DFS over forked
//!   [`hpmp_penglai::SmpSystem`]s with fingerprint-canonicalized pruning
//!   and a lockstep fail-closed check against the cache-free oracle.
//! * [`schedule`] — the replayable counterexample format, shared with the
//!   pinned regression cases in `tests/shootdown.rs`.
//! * [`fuzz`] — the differential fuzz bodies behind the three cargo-fuzz
//!   targets in `fuzz/`, plus a deterministic, dependency-free corpus
//!   smoke driver for stable-toolchain CI.
//!
//! The `hpmp-verify` binary fronts all of it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bmc;
pub mod fuzz;
pub mod schedule;

pub use bmc::{fail_closed_violation, run_bmc, BmcConfig, BmcReport, Counterexample, Plant};
pub use fuzz::{smoke, SmokeReport};
pub use schedule::{MonitorOp, Schedule, ScheduledOp, PRESSURE_REGION, SMALL_REGION};
