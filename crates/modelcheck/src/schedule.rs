//! Replayable op schedules: the counterexample exchange format.
//!
//! A [`Schedule`] is an explicit, totally ordered sequence of monitor ops,
//! each tagged with the hart that drives it. The bounded model checker
//! emits counterexamples in this form; `tests/shootdown.rs` pins them as
//! regression cases and replays them with [`Schedule::run`]. The text
//! format round-trips through [`Schedule::parse`] and `Display`, e.g.:
//!
//! ```text
//! h0:create h1:switch(1) h0:alloc(1,fast) h1:free(1,0)
//! ```
//!
//! Domain ids in a schedule are the monitor's own deterministic ids
//! (`create` assigns 1, 2, … in order), so a schedule replayed against a
//! fresh boot resolves identically to the search run that produced it.

use hpmp_penglai::{DomainId, GmsLabel, MonitorError, SmpSystem};
use hpmp_trace::TraceSink;

/// Region size for plain `create`/`alloc` ops: 1 MiB.
pub const SMALL_REGION: u64 = 1 << 20;
/// Region size for pressure (`big`) allocations: 16 MiB. Three of these
/// exhaust the 64 MiB arena of a 128 MiB boot, which is what drives the
/// monitor through its compaction/table-only/admission ladder inside a
/// small op bound.
pub const PRESSURE_REGION: u64 = 16 << 20;

/// One monitor operation, hart-agnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorOp {
    /// `create` — create an enclave with a [`SMALL_REGION`] initial
    /// region, [`GmsLabel::Slow`].
    Create,
    /// `destroy(d)` — destroy enclave `d`.
    Destroy(u32),
    /// `alloc(d,label[,big])` — allocate a region for `d`;
    /// [`PRESSURE_REGION`] bytes when `big`, else [`SMALL_REGION`].
    Alloc {
        /// Owning domain id.
        domain: u32,
        /// Requested placement label.
        label: GmsLabel,
        /// Pressure-sized allocation (compaction-triggering).
        pressure: bool,
    },
    /// `free(d,slot)` — free the `slot`-th region of `d`'s GMS list.
    Free {
        /// Owning domain id.
        domain: u32,
        /// Index into the domain's GMS list at issue time.
        slot: usize,
    },
    /// `relabel(d,slot,label)` — relabel the `slot`-th region of `d`.
    Relabel {
        /// Owning domain id.
        domain: u32,
        /// Index into the domain's GMS list at issue time.
        slot: usize,
        /// The new label.
        label: GmsLabel,
    },
    /// `switch(d)` / `switch(host)` — schedule domain `d` on the hart.
    Switch(u32),
}

/// A [`MonitorOp`] driven from a specific hart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledOp {
    /// The hart the op runs on.
    pub hart: u16,
    /// The operation.
    pub op: MonitorOp,
}

/// An explicit interleaving of monitor ops across harts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<ScheduledOp>);

fn label_key(label: GmsLabel) -> &'static str {
    match label {
        GmsLabel::Fast => "fast",
        GmsLabel::Slow => "slow",
    }
}

fn parse_label(s: &str) -> Result<GmsLabel, String> {
    match s {
        "fast" => Ok(GmsLabel::Fast),
        "slow" => Ok(GmsLabel::Slow),
        other => Err(format!("unknown label `{other}`")),
    }
}

impl std::fmt::Display for MonitorOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MonitorOp::Create => f.write_str("create"),
            MonitorOp::Destroy(d) => write!(f, "destroy({d})"),
            MonitorOp::Alloc {
                domain,
                label,
                pressure,
            } => {
                write!(f, "alloc({domain},{}", label_key(label))?;
                if pressure {
                    f.write_str(",big")?;
                }
                f.write_str(")")
            }
            MonitorOp::Free { domain, slot } => write!(f, "free({domain},{slot})"),
            MonitorOp::Relabel {
                domain,
                slot,
                label,
            } => write!(f, "relabel({domain},{slot},{})", label_key(label)),
            MonitorOp::Switch(d) => {
                if d == DomainId::HOST.0 {
                    f.write_str("switch(host)")
                } else {
                    write!(f, "switch({d})")
                }
            }
        }
    }
}

impl std::fmt::Display for ScheduledOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}:{}", self.hart, self.op)
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, op) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

impl ScheduledOp {
    fn parse(tok: &str) -> Result<ScheduledOp, String> {
        let (hart_part, op_part) = tok
            .split_once(':')
            .ok_or_else(|| format!("expected h<hart>:<op>, got `{tok}`"))?;
        let hart: u16 = hart_part
            .strip_prefix('h')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("bad hart tag `{hart_part}`"))?;
        let (name, args) = match op_part.split_once('(') {
            None => (op_part, Vec::new()),
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed args in `{op_part}`"))?;
                (name, inner.split(',').map(str::trim).collect())
            }
        };
        let domain = |idx: usize| -> Result<u32, String> {
            let raw = *args
                .get(idx)
                .ok_or_else(|| format!("`{op_part}` is missing argument {idx}"))?;
            if raw == "host" {
                return Ok(DomainId::HOST.0);
            }
            raw.parse()
                .map_err(|_| format!("bad domain id `{raw}` in `{op_part}`"))
        };
        let slot = |idx: usize| -> Result<usize, String> {
            args.get(idx)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad slot in `{op_part}`"))
        };
        let op = match name {
            "create" => MonitorOp::Create,
            "destroy" => MonitorOp::Destroy(domain(0)?),
            "alloc" => MonitorOp::Alloc {
                domain: domain(0)?,
                label: parse_label(args.get(1).copied().unwrap_or(""))?,
                pressure: match args.get(2) {
                    None => false,
                    Some(&"big") => true,
                    Some(other) => return Err(format!("unknown alloc flag `{other}`")),
                },
            },
            "free" => MonitorOp::Free {
                domain: domain(0)?,
                slot: slot(1)?,
            },
            "relabel" => MonitorOp::Relabel {
                domain: domain(0)?,
                slot: slot(1)?,
                label: parse_label(args.get(2).copied().unwrap_or(""))?,
            },
            "switch" => MonitorOp::Switch(domain(0)?),
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok(ScheduledOp { hart, op })
    }
}

impl Schedule {
    /// Parses the whitespace-separated text form. Empty input is the empty
    /// schedule.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first malformed token.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        text.split_whitespace()
            .map(ScheduledOp::parse)
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the schedule has no ops.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Applies every op in order to `smp`, returning each op's outcome.
    ///
    /// Monitor errors ([`MonitorError::OutOfMemory`],
    /// [`MonitorError::ResourceExhausted`], …) are *outcomes*, not replay
    /// failures: a refused allocation is a legitimate transition (it may
    /// still have compacted memory and shot down remote harts), so replay
    /// records it and continues.
    ///
    /// # Errors
    ///
    /// Fails only when an op cannot be *issued* at all — it names a domain
    /// or region slot that does not exist at that point, meaning the
    /// schedule is being replayed against a different boot state than the
    /// one that produced it.
    pub fn run<S: TraceSink>(
        &self,
        smp: &mut SmpSystem<S>,
    ) -> Result<Vec<Result<(), MonitorError>>, String> {
        self.0.iter().map(|s| apply(smp, *s)).collect()
    }
}

/// Applies one scheduled op; see [`Schedule::run`] for the error contract.
pub fn apply<S: TraceSink>(
    smp: &mut SmpSystem<S>,
    s: ScheduledOp,
) -> Result<Result<(), MonitorError>, String> {
    let region_base = |smp: &SmpSystem<S>, domain: u32, slot: usize| {
        let gmss = smp
            .monitor()
            .regions_of(DomainId(domain))
            .map_err(|e| format!("op `{s}` names a dead domain: {e}"))?;
        gmss.get(slot).map(|g| g.region.base).ok_or_else(|| {
            format!(
                "op `{s}` names slot {slot} but the domain has {} regions",
                gmss.len()
            )
        })
    };
    let out = match s.op {
        MonitorOp::Create => smp
            .create_domain_on(s.hart, SMALL_REGION, GmsLabel::Slow)
            .map(|_| ()),
        MonitorOp::Destroy(d) => smp.destroy_domain_on(s.hart, DomainId(d)).map(|_| ()),
        MonitorOp::Alloc {
            domain,
            label,
            pressure,
        } => {
            let size = if pressure {
                PRESSURE_REGION
            } else {
                SMALL_REGION
            };
            smp.alloc_on(s.hart, DomainId(domain), size, label)
                .map(|_| ())
        }
        MonitorOp::Free { domain, slot } => {
            let base = region_base(smp, domain, slot)?;
            smp.free_on(s.hart, DomainId(domain), base).map(|_| ())
        }
        MonitorOp::Relabel {
            domain,
            slot,
            label,
        } => {
            let base = region_base(smp, domain, slot)?;
            smp.relabel_on(s.hart, DomainId(domain), base, label)
                .map(|_| ())
        }
        MonitorOp::Switch(d) => smp.switch_on(s.hart, DomainId(d)).map(|_| ()),
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_form_round_trips() {
        let text = "h0:create h1:switch(1) h0:alloc(1,fast) h0:alloc(1,slow,big) \
                    h1:free(1,0) h0:relabel(1,1,slow) h1:destroy(1) h0:switch(host)";
        let sched = Schedule::parse(text).expect("parse");
        assert_eq!(sched.len(), 8);
        assert_eq!(Schedule::parse(&sched.to_string()).expect("reparse"), sched);
        assert_eq!(sched.0[1].op, MonitorOp::Switch(1));
        assert_eq!(sched.0[7].op, MonitorOp::Switch(DomainId::HOST.0));
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in [
            "create",           // missing hart tag
            "h0:alloc(1",       // unclosed args
            "h0:alloc(1,warm)", // unknown label
            "h0:alloc(1,fast,huge)",
            "hx:create",
            "h0:frob(1)",
            "h0:destroy(q)",
            "h0:free(1)", // missing slot
        ] {
            assert!(Schedule::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn empty_schedule_is_empty() {
        let sched = Schedule::parse("  \n ").expect("whitespace only");
        assert!(sched.is_empty());
        assert_eq!(sched.to_string(), "");
    }
}
