//! `hpmp-verify`: bounded model checking and fuzz smoke from the CLI.
//!
//! ```text
//! hpmp-verify bmc [--depth K] [--harts N] [--flavor pmp|pmpt|hpmp|all]
//!                 [--max-enclaves M] [--ram-mib MIB]
//!                 [--plant none|suppress-shootdown] [--expect-violation]
//!                 [--seed-out FILE]
//! hpmp-verify fuzz [--target pmpte_decode|campaign_spec|json_readers|all]
//!                  [--corpus DIR] [--iters N] [--seed S]
//! ```
//!
//! `bmc` exits 0 when the outcome matches the expectation (clean search,
//! or a counterexample under `--expect-violation`) and 1 otherwise, so CI
//! can run both directions: the clean sweep must verify, the planted
//! fault must be caught. `--seed-out` writes the counterexample schedule
//! to a file in the `tests/shootdown.rs` replay format.
//!
//! `fuzz` replays the committed seed corpora and a deterministic mutation
//! storm through the same bodies the cargo-fuzz targets wrap; any
//! property failure panics (non-zero exit).

use std::process::ExitCode;

use hpmp_modelcheck::bmc::{run_bmc, BmcConfig, Plant};
use hpmp_modelcheck::fuzz;
use hpmp_penglai::TeeFlavor;

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: hpmp-verify bmc [--depth K] [--harts N] [--flavor pmp|pmpt|hpmp|all]\n\
         \x20                      [--max-enclaves M] [--ram-mib MIB]\n\
         \x20                      [--plant none|suppress-shootdown] [--expect-violation]\n\
         \x20                      [--seed-out FILE]\n\
         \x20      hpmp-verify fuzz [--target <name>|all] [--corpus DIR] [--iters N] [--seed S]"
    );
    ExitCode::from(2)
}

fn parse_flavors(s: &str) -> Result<Vec<TeeFlavor>, String> {
    match s {
        "pmp" => Ok(vec![TeeFlavor::PenglaiPmp]),
        "pmpt" => Ok(vec![TeeFlavor::PenglaiPmpt]),
        "hpmp" => Ok(vec![TeeFlavor::PenglaiHpmp]),
        "all" => Ok(vec![
            TeeFlavor::PenglaiPmp,
            TeeFlavor::PenglaiPmpt,
            TeeFlavor::PenglaiHpmp,
        ]),
        other => Err(format!("unknown flavor `{other}`")),
    }
}

struct Args(Vec<String>);

impl Args {
    /// Consumes `--flag value` if present.
    fn take_value(&mut self, flag: &str) -> Result<Option<String>, String> {
        if let Some(pos) = self.0.iter().position(|a| a == flag) {
            if pos + 1 >= self.0.len() {
                return Err(format!("{flag} needs a value"));
            }
            self.0.remove(pos);
            return Ok(Some(self.0.remove(pos)));
        }
        Ok(None)
    }

    /// Consumes `--flag` if present.
    fn take_flag(&mut self, flag: &str) -> bool {
        if let Some(pos) = self.0.iter().position(|a| a == flag) {
            self.0.remove(pos);
            return true;
        }
        false
    }

    fn finish(self) -> Result<(), String> {
        match self.0.first() {
            None => Ok(()),
            Some(stray) => Err(format!("unrecognized argument `{stray}`")),
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value `{value}` for {flag}"))
}

fn cmd_bmc(mut args: Args) -> Result<ExitCode, String> {
    let mut config = BmcConfig::default();
    if let Some(v) = args.take_value("--depth")? {
        config.depth = parse_num("--depth", &v)?;
    }
    if let Some(v) = args.take_value("--harts")? {
        config.harts = parse_num("--harts", &v)?;
    }
    if let Some(v) = args.take_value("--max-enclaves")? {
        config.max_enclaves = parse_num("--max-enclaves", &v)?;
    }
    if let Some(v) = args.take_value("--ram-mib")? {
        config.ram_mib = parse_num("--ram-mib", &v)?;
    }
    let flavors = parse_flavors(&args.take_value("--flavor")?.unwrap_or_else(|| "all".into()))?;
    config.plant = match args.take_value("--plant")?.as_deref() {
        None | Some("none") => Plant::None,
        Some("suppress-shootdown") => Plant::SuppressShootdowns,
        Some(other) => return Err(format!("unknown plant `{other}`")),
    };
    let expect_violation = args.take_flag("--expect-violation");
    let seed_out = args.take_value("--seed-out")?;
    args.finish()?;

    let mut all_match = true;
    for flavor in flavors {
        config.flavor = flavor;
        let report = run_bmc(config);
        println!("{report}");
        match &report.counterexample {
            Some(cx) => {
                if let Some(path) = &seed_out {
                    std::fs::write(path, format!("{}\n", cx.schedule))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    println!("bmc: counterexample schedule written to {path}");
                }
                if !expect_violation {
                    all_match = false;
                }
            }
            None => {
                if expect_violation {
                    println!(
                        "bmc: expected a counterexample under plant={} — none found",
                        config.plant
                    );
                    all_match = false;
                }
            }
        }
        println!();
    }
    Ok(if all_match {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Loads every regular file under `dir`, sorted by file name so the replay
/// order (and thus any failure) is deterministic.
fn load_corpus(dir: &std::path::Path) -> Result<Vec<Vec<u8>>, String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading corpus dir {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    entries
        .iter()
        .map(|p| std::fs::read(p).map_err(|e| format!("reading {}: {e}", p.display())))
        .collect()
}

fn cmd_fuzz(mut args: Args) -> Result<ExitCode, String> {
    let which = args.take_value("--target")?.unwrap_or_else(|| "all".into());
    let corpus_root = args
        .take_value("--corpus")?
        .unwrap_or_else(|| "fuzz/corpus".into());
    let iters: usize = parse_num(
        "--iters",
        &args.take_value("--iters")?.unwrap_or_else(|| "2000".into()),
    )?;
    let seed: u64 = parse_num(
        "--seed",
        &args.take_value("--seed")?.unwrap_or_else(|| "1".into()),
    )?;
    args.finish()?;

    let selected: Vec<(&str, fuzz::FuzzBody)> = if which == "all" {
        fuzz::TARGETS.to_vec()
    } else {
        match fuzz::target(&which) {
            Some(body) => vec![(
                fuzz::TARGETS
                    .iter()
                    .find(|(n, _)| *n == which)
                    .map(|(n, _)| *n)
                    .unwrap(),
                body,
            )],
            None => return Err(format!("unknown fuzz target `{which}`")),
        }
    };
    for (name, body) in selected {
        let dir = std::path::Path::new(&corpus_root).join(name);
        let corpus = if dir.is_dir() {
            load_corpus(&dir)?
        } else {
            Vec::new()
        };
        let report = fuzz::smoke(body, &corpus, iters, seed);
        println!(
            "fuzz: target={name} seeds={} mutations={} — clean",
            report.seeds, report.mutations
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage("missing subcommand");
    }
    let sub = argv.remove(0);
    let result = match sub.as_str() {
        "bmc" => cmd_bmc(Args(argv)),
        "fuzz" => cmd_fuzz(Args(argv)),
        other => return usage(&format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => usage(&e),
    }
}
