//! The bounded model checker: exhaustive enumeration of every k-op
//! interleaving across n harts, with fingerprint-canonicalized pruning.
//!
//! ## What is proved
//!
//! From a freshly booted [`SmpSystem`], the checker applies every sequence
//! of up to `depth` monitor ops (create/destroy, GMS alloc/free/relabel —
//! including pressure-sized, compaction-triggering placements — and domain
//! switches), each issued from every hart, by explicit depth-first search
//! over forked system states. After *every* op it probes the fail-closed
//! property on *every* hart: the fast-path permission check (the
//! architectural register-file check, cache-free) must never grant an
//! access the cache-free oracle denies. A grant-where-oracle-denies is a
//! counterexample; the search emits the op prefix that reached it as a
//! replayable [`Schedule`].
//!
//! ## Pruning and soundness
//!
//! States are canonicalized by [`SmpSystem::state_fingerprint`], which
//! covers everything the transition function and the checked property
//! read (register images, scheduling, the monitor's logical state) and
//! excludes pure accounting (cycles, metrics). Two states with equal
//! fingerprints behave identically under every future op sequence, so a
//! branch reaching an already-visited fingerprint with no more remaining
//! depth than before can be pruned without losing any counterexample.
//! DESIGN.md §13 gives the full argument.
//!
//! ## Minimality
//!
//! The search runs iterative deepening: all schedules of length 1, then 2,
//! …, up to `depth`. The first counterexample found is therefore one of
//! minimal length, and — because the op menu is enumerated in a fixed
//! deterministic order — it is *the same* minimal counterexample on every
//! run, as are the explored/pruned/transition counts.

use std::collections::HashMap;

use crate::schedule::{MonitorOp, Schedule, ScheduledOp};
use hpmp_core::PmptwCache;
use hpmp_machine::MachineConfig;
use hpmp_memsim::{AccessKind, PhysAddr, PrivMode};
use hpmp_penglai::{DomainId, GmsLabel, MonitorError, SmpSystem, TeeFlavor};

/// A fault deliberately planted before the search, to demonstrate the
/// checker can find the bug class it guards against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Plant {
    /// No fault: the property is expected to hold.
    #[default]
    None,
    /// Suppress cross-hart shootdown delivery ([`SmpSystem::
    /// set_shootdown_suppression`]): remote harts keep stale register
    /// images and cached grants — the exact window the shootdown protocol
    /// exists to close.
    SuppressShootdowns,
}

impl std::fmt::Display for Plant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Plant::None => "none",
            Plant::SuppressShootdowns => "suppress-shootdown",
        })
    }
}

/// Search bounds and system shape.
#[derive(Clone, Copy, Debug)]
pub struct BmcConfig {
    /// TEE flavour to boot.
    pub flavor: TeeFlavor,
    /// Number of harts (n).
    pub harts: usize,
    /// Maximum schedule length (k).
    pub depth: usize,
    /// Cap on concurrently live enclaves; bounds the op menu.
    pub max_enclaves: usize,
    /// Boot RAM in MiB. The default 128 leaves a 64 MiB region arena, so
    /// pressure-sized allocations reach the degradation ladder within a
    /// small bound.
    pub ram_mib: u64,
    /// Planted fault, if any.
    pub plant: Plant,
}

impl Default for BmcConfig {
    fn default() -> BmcConfig {
        BmcConfig {
            flavor: TeeFlavor::PenglaiHpmp,
            harts: 2,
            depth: 3,
            max_enclaves: 2,
            ram_mib: 128,
            plant: Plant::None,
        }
    }
}

/// A schedule that drove some hart's fast path into granting an access the
/// oracle denies.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The minimal op sequence reaching the violation.
    pub schedule: Schedule,
    /// The hart whose fast path over-grants.
    pub hart: u16,
    /// The probed physical address.
    pub addr: u64,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule `{}` leaves hart {}'s fast path granting {:#x} where the oracle denies",
            self.schedule, self.hart, self.addr
        )
    }
}

/// The outcome of one bounded search.
#[derive(Clone, Debug)]
pub struct BmcReport {
    /// The configuration searched.
    pub config: BmcConfig,
    /// Distinct states expanded (their op menu enumerated), across all
    /// deepening iterations.
    pub states_explored: u64,
    /// Child states skipped because their fingerprint had already been
    /// visited with at least as much remaining depth.
    pub states_pruned: u64,
    /// Monitor ops applied (each on a forked state).
    pub transitions: u64,
    /// The minimal counterexample, when the property fails within bound.
    pub counterexample: Option<Counterexample>,
}

impl std::fmt::Display for BmcReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "bmc: flavor={} harts={} depth={} max-enclaves={} plant={}",
            self.config.flavor,
            self.config.harts,
            self.config.depth,
            self.config.max_enclaves,
            self.config.plant
        )?;
        writeln!(
            f,
            "bmc: states-explored={} states-pruned={} transitions={}",
            self.states_explored, self.states_pruned, self.transitions
        )?;
        match &self.counterexample {
            None => write!(
                f,
                "bmc: verified — fail-closed holds on every schedule up to {} ops",
                self.config.depth
            ),
            Some(cx) => write!(f, "bmc: COUNTEREXAMPLE ({} ops): {cx}", cx.schedule.len()),
        }
    }
}

/// Monitor errors that are legitimate op outcomes under exhaustion and
/// contention; anything else from a menu-generated op is a checker bug.
fn tolerated(e: &MonitorError) -> bool {
    matches!(
        e,
        MonitorError::OutOfMemory
            | MonitorError::OutOfPmpEntries
            | MonitorError::ResourceExhausted { .. }
            | MonitorError::AlreadyScheduled(_)
    )
}

/// Probe addresses for the fail-closed check: one inside the monitor's own
/// region and the base of every region of every live domain (enclave
/// private memory is exactly what a stale grant exposes).
fn probes(smp: &SmpSystem) -> Vec<PhysAddr> {
    let mut out = vec![PhysAddr::new(
        smp.monitor().monitor_region().base.raw() + 0x800,
    )];
    for id in smp.monitor().domain_ids() {
        if let Ok(gmss) = smp.monitor().regions_of(id) {
            for gms in gmss {
                out.push(gms.region.base);
            }
        }
    }
    out
}

/// Checks the fail-closed property on every hart; returns the first
/// violating `(hart, addr)` if any.
///
/// The fast side is the architectural register-file check with a disabled
/// PMPTW cache — precisely what `tests/shootdown.rs` asserts on — run
/// against the hart's own register image and the shared table memory. The
/// slow side is the monitor's cache-free oracle for the domain scheduled
/// on that hart.
pub fn fail_closed_violation(smp: &mut SmpSystem) -> Option<(u16, u64)> {
    let addrs = probes(smp);
    for hart in 0..smp.harts() as u16 {
        for &pa in &addrs {
            let fast = {
                let m = smp.machine(hart);
                m.regs()
                    .check(
                        m.phys(),
                        &mut PmptwCache::disabled(),
                        pa,
                        AccessKind::Read,
                        PrivMode::Supervisor,
                    )
                    .allowed
            };
            let oracle = smp.oracle_check_on(hart, pa, AccessKind::Read);
            if fast && !oracle {
                return Some((hart, pa.raw()));
            }
        }
    }
    None
}

/// Enumerates the op menu of `smp` in a fixed deterministic order: for
/// each hart ascending — `create` (under the enclave cap), then per live
/// enclave in creation order its destroy, small fast alloc, pressure slow
/// alloc, free/relabel of its regions, and switch-to; finally switch to
/// the host. Switches that would trivially no-op (target already scheduled
/// here) or error (enclave scheduled elsewhere) are not enumerated.
fn menu(smp: &SmpSystem, max_enclaves: usize) -> Vec<ScheduledOp> {
    let mon = smp.monitor();
    let enclaves: Vec<DomainId> = mon
        .domain_ids()
        .into_iter()
        .filter(|&d| d != DomainId::HOST)
        .collect();
    let mut out = Vec::new();
    for hart in 0..smp.harts() as u16 {
        let mut push = |op: MonitorOp| out.push(ScheduledOp { hart, op });
        if enclaves.len() < max_enclaves {
            push(MonitorOp::Create);
        }
        for &d in &enclaves {
            push(MonitorOp::Destroy(d.0));
            push(MonitorOp::Alloc {
                domain: d.0,
                label: GmsLabel::Fast,
                pressure: false,
            });
            push(MonitorOp::Alloc {
                domain: d.0,
                label: GmsLabel::Slow,
                pressure: true,
            });
            let gmss = mon.regions_of(d).map(<[_]>::len).unwrap_or(0);
            if gmss > 0 {
                push(MonitorOp::Free {
                    domain: d.0,
                    slot: gmss - 1,
                });
                push(MonitorOp::Relabel {
                    domain: d.0,
                    slot: 0,
                    label: match mon.regions_of(d).unwrap()[0].label {
                        GmsLabel::Fast => GmsLabel::Slow,
                        GmsLabel::Slow => GmsLabel::Fast,
                    },
                });
            }
            let scheduled_here = smp.scheduled(hart) == d;
            let scheduled_elsewhere =
                (0..smp.harts() as u16).any(|h| h != hart && smp.scheduled(h) == d);
            if !scheduled_here && !scheduled_elsewhere {
                push(MonitorOp::Switch(d.0));
            }
        }
        if smp.scheduled(hart) != DomainId::HOST {
            push(MonitorOp::Switch(DomainId::HOST.0));
        }
    }
    out
}

struct Search {
    max_enclaves: usize,
    visited: HashMap<u64, usize>,
    explored: u64,
    pruned: u64,
    transitions: u64,
}

impl Search {
    /// Depth-limited DFS. `prefix` is the schedule that reached `smp`.
    /// Returns the first counterexample in deterministic order, if any
    /// lies within `remaining` further ops.
    fn dfs(
        &mut self,
        smp: &SmpSystem,
        prefix: &mut Vec<ScheduledOp>,
        remaining: usize,
    ) -> Option<Counterexample> {
        if remaining == 0 {
            return None;
        }
        self.explored += 1;
        for sched_op in menu(smp, self.max_enclaves) {
            let mut fork = smp.clone();
            let outcome = crate::schedule::apply(&mut fork, sched_op)
                .unwrap_or_else(|e| panic!("menu generated an unissuable op: {e}"));
            self.transitions += 1;
            if let Err(e) = outcome {
                assert!(
                    tolerated(&e),
                    "op `{sched_op}` failed unexpectedly after `{}`: {e}",
                    Schedule(prefix.clone())
                );
            }
            prefix.push(sched_op);
            if let Some((hart, addr)) = fail_closed_violation(&mut fork) {
                return Some(Counterexample {
                    schedule: Schedule(prefix.clone()),
                    hart,
                    addr,
                });
            }
            let fp = fork.state_fingerprint();
            let child_remaining = remaining - 1;
            match self.visited.get(&fp) {
                Some(&seen) if seen >= child_remaining => {
                    self.pruned += 1;
                }
                _ => {
                    self.visited.insert(fp, child_remaining);
                    if let Some(cx) = self.dfs(&fork, prefix, child_remaining) {
                        return Some(cx);
                    }
                }
            }
            prefix.pop();
        }
        None
    }
}

/// Boots a system per `config` (applying the planted fault) — shared with
/// the counterexample replay path so a pinned schedule meets the same boot
/// state the search saw.
///
/// # Panics
///
/// Panics when boot parameters are unusable (RAM too small for the
/// monitor's layout).
pub fn boot_system(config: &BmcConfig) -> SmpSystem {
    let ram = hpmp_core::PmpRegion::new(PhysAddr::new(0x8000_0000), config.ram_mib << 20);
    let mut smp = SmpSystem::boot(MachineConfig::rocket(), config.flavor, ram, config.harts)
        .expect("bmc boot");
    if config.plant == Plant::SuppressShootdowns {
        smp.set_shootdown_suppression(true);
    }
    smp
}

/// Runs the bounded search. See the module docs for the guarantees.
pub fn run_bmc(config: BmcConfig) -> BmcReport {
    let root = boot_system(&config);
    let mut search = Search {
        max_enclaves: config.max_enclaves,
        visited: HashMap::new(),
        explored: 0,
        pruned: 0,
        transitions: 0,
    };
    let mut counterexample = {
        let mut probe_root = root.clone();
        fail_closed_violation(&mut probe_root).map(|(hart, addr)| Counterexample {
            schedule: Schedule::default(),
            hart,
            addr,
        })
    };
    if counterexample.is_none() {
        // Iterative deepening: the first hit is a minimal counterexample.
        for depth in 1..=config.depth {
            search.visited.clear();
            search.visited.insert(root.state_fingerprint(), depth);
            let mut prefix = Vec::new();
            if let Some(cx) = search.dfs(&root, &mut prefix, depth) {
                counterexample = Some(cx);
                break;
            }
        }
    }
    BmcReport {
        config,
        states_explored: search.explored,
        states_pruned: search.pruned,
        transitions: search.transitions,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_monitor_verifies_at_a_small_bound() {
        let report = run_bmc(BmcConfig {
            depth: 2,
            ..BmcConfig::default()
        });
        assert!(
            report.counterexample.is_none(),
            "unexpected: {}",
            report.counterexample.unwrap()
        );
        assert!(report.states_explored > 0);
        assert!(report.transitions > 0);
    }

    #[test]
    fn planted_suppression_yields_a_minimal_counterexample() {
        let report = run_bmc(BmcConfig {
            flavor: TeeFlavor::PenglaiPmp,
            depth: 2,
            plant: Plant::SuppressShootdowns,
            ..BmcConfig::default()
        });
        let cx = report.counterexample.expect("planted fault must be found");
        // A single create suffices: the remote hart's host image misses
        // the new deny entry, so minimality means depth 1.
        assert_eq!(cx.schedule.len(), 1, "not minimal: {}", cx.schedule);
        // And the counterexample replays: same boot, same schedule, same
        // violation.
        let mut smp = boot_system(&report.config);
        cx.schedule.run(&mut smp).expect("replayable");
        let (hart, addr) = fail_closed_violation(&mut smp).expect("violation reproduces");
        assert_eq!((hart, addr), (cx.hart, cx.addr));
    }

    #[test]
    fn reports_are_deterministic() {
        let run = || {
            let r = run_bmc(BmcConfig {
                depth: 2,
                ..BmcConfig::default()
            });
            (r.states_explored, r.states_pruned, r.transitions)
        };
        assert_eq!(run(), run());
    }
}
