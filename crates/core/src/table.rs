//! The PMP Table: a 2-level radix permission table (§4.3, Figure 6).
//!
//! A PMP Table maps *offsets within a protected region* to per-4 KiB-page
//! permissions:
//!
//! * The **root table** is one 4 KiB page of 512 root pmptes; each root pmpte
//!   either points at a leaf table or carries "huge" R/W/X permissions for
//!   its whole 32 MiB slice (the segment-as-huge-page insight).
//! * A **leaf table** is one 4 KiB page of 512 leaf pmptes; each 64-bit leaf
//!   pmpte packs sixteen 4-bit permission nibbles, one per 4 KiB page, so one
//!   leaf pmpte covers 64 KiB and one leaf table covers 32 MiB.
//!
//! A 2-level table therefore reaches 512 × 32 MiB = 16 GiB, matching the
//! paper's sizing argument. The offset split (Figure 6-e) is
//! `OFF[1] = offset[33:25]`, `OFF[0] = offset[24:16]`,
//! `PageIndex = offset[15:12]`, `PageOffset = offset[11:0]`.
//!
//! ## Integrity encoding
//!
//! pmptes live in attacker-adjacent DRAM, so both formats dedicate their
//! reserved bits to an even-parity code the walker checks on every decode:
//!
//! * each leaf nibble's bit 3 is the parity of its three permission bits,
//!   so every nibble has even parity;
//! * a root pmpte's bit 63 is the parity of bits 0–62, and the remaining
//!   reserved bits (4–12 and 49–62) must read zero.
//!
//! The all-zero encoding stays valid (an invalid/deny-all entry), and any
//! single-bit corruption of a stored pmpte is guaranteed to decode as
//! [`MalformedPmpte`] — the walker then fails closed instead of granting.

use hpmp_memsim::{Perms, PhysAddr, WordStore, PAGE_SHIFT, PAGE_SIZE};

use crate::pmp::PmpRegion;

/// Bytes of region covered by one leaf pmpte (16 × 4 KiB).
pub const LEAF_PMPTE_SPAN: u64 = 16 * PAGE_SIZE;
/// Bytes of region covered by one leaf table page (512 leaf pmptes).
pub const LEAF_TABLE_SPAN: u64 = 512 * LEAF_PMPTE_SPAN; // 32 MiB
/// Bytes of region covered by a full 2-level PMP Table (512 root pmptes).
pub const ROOT_TABLE_SPAN: u64 = 512 * LEAF_TABLE_SPAN; // 16 GiB

/// Depth of a PMP Table.
///
/// The shipped design (`Mode = 0` in the HPMP address register) is
/// [`TableLevels::Two`]; the paper reserves the remaining `Mode` encodings
/// for other depths, which we implement to reproduce the §4.3 "why 2-level?"
/// design discussion as an ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TableLevels {
    /// A bare leaf table: 32 MiB reach, single pmpte read per check.
    One,
    /// Root + leaf: 16 GiB reach, two reads (the paper's design point).
    #[default]
    Two,
    /// Three radix levels: 8 TiB reach, three reads.
    Three,
}

impl TableLevels {
    /// Number of pmpte reads a full (uncached) walk performs.
    pub const fn depth(self) -> usize {
        match self {
            TableLevels::One => 1,
            TableLevels::Two => 2,
            TableLevels::Three => 3,
        }
    }

    /// Maximum region size the table can protect.
    pub const fn reach(self) -> u64 {
        match self {
            TableLevels::One => LEAF_TABLE_SPAN,
            TableLevels::Two => ROOT_TABLE_SPAN,
            TableLevels::Three => ROOT_TABLE_SPAN * 512,
        }
    }

    /// Encodes into the 2-bit `Mode` field of the HPMP address register
    /// (Figure 6-b): 0 = 2-level (the shipped design); 1 and 2 use encodings
    /// the paper reserves for future depths.
    pub const fn to_mode_bits(self) -> u64 {
        match self {
            TableLevels::Two => 0,
            TableLevels::One => 1,
            TableLevels::Three => 2,
        }
    }

    /// Decodes the `Mode` field; `None` for the reserved encoding 3.
    pub const fn from_mode_bits(bits: u64) -> Option<TableLevels> {
        match bits & 0b11 {
            0 => Some(TableLevels::Two),
            1 => Some(TableLevels::One),
            2 => Some(TableLevels::Three),
            _ => None,
        }
    }

    /// Shift amount of the index for non-leaf `level` (1 = the level just
    /// above the leaf tables).
    const fn index_shift(level: usize) -> u32 {
        25 + 9 * (level as u32 - 1)
    }
}

/// Why a raw pmpte failed validation (see the module-level integrity
/// encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MalformedPmpte {
    /// Reserved bits of a root pmpte read non-zero.
    ReservedBits(u64),
    /// The parity code does not match the payload bits.
    ParityMismatch(u64),
}

impl std::fmt::Display for MalformedPmpte {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MalformedPmpte::ReservedBits(bits) => {
                write!(f, "pmpte {bits:#018x} has reserved bits set")
            }
            MalformedPmpte::ParityMismatch(bits) => {
                write!(f, "pmpte {bits:#018x} fails its parity check")
            }
        }
    }
}

impl std::error::Error for MalformedPmpte {}

/// A decoded root pmpte (Figure 6-c).
///
/// `V = 0` means invalid (access fails). With `V = 1`, all-zero R/W/X makes
/// the entry a pointer to a leaf table; otherwise the R/W/X bits are the
/// final ("huge") permission for the whole 32 MiB slice. Bit 63 carries the
/// parity of bits 0–62; bits 4–12 and 49–62 are reserved-zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RootPmpte {
    bits: u64,
}

impl RootPmpte {
    const V: u64 = 1 << 0;
    const R: u64 = 1 << 1;
    const W: u64 = 1 << 2;
    const X: u64 = 1 << 3;
    const PPN_SHIFT: u32 = 13;
    const PPN_MASK: u64 = (1 << 36) - 1;
    const PARITY: u64 = 1 << 63;
    /// Bits 4–12 and 49–62: neither flag, PPN, nor parity.
    const RESERVED: u64 = !(Self::V
        | Self::R
        | Self::W
        | Self::X
        | (Self::PPN_MASK << Self::PPN_SHIFT)
        | Self::PARITY);

    /// The invalid entry.
    pub const INVALID: RootPmpte = RootPmpte { bits: 0 };

    /// Decodes a raw entry without validation (hardware never stores a
    /// malformed pmpte; use [`RootPmpte::decode`] for bits read back from
    /// DRAM).
    pub const fn from_bits(bits: u64) -> RootPmpte {
        RootPmpte { bits }
    }

    /// Decodes and validates a raw entry read from memory, rejecting
    /// reserved-bit and parity violations.
    pub const fn decode(bits: u64) -> Result<RootPmpte, MalformedPmpte> {
        if bits & Self::RESERVED != 0 {
            return Err(MalformedPmpte::ReservedBits(bits));
        }
        if bits.count_ones() & 1 != 0 {
            return Err(MalformedPmpte::ParityMismatch(bits));
        }
        Ok(RootPmpte { bits })
    }

    /// True if the raw encoding violates the integrity code.
    pub const fn is_malformed(self) -> bool {
        self.bits & Self::RESERVED != 0 || self.bits.count_ones() & 1 != 0
    }

    /// Raw encoding.
    pub const fn to_bits(self) -> u64 {
        self.bits
    }

    /// Sets bit 63 so the whole word has even parity.
    const fn sealed(bits: u64) -> u64 {
        bits | (((bits & !Self::PARITY).count_ones() as u64 & 1) << 63)
    }

    /// Builds a pointer to the leaf table page at `leaf`.
    pub fn pointer(leaf: PhysAddr) -> RootPmpte {
        RootPmpte {
            bits: Self::sealed(
                Self::V | ((leaf.page_number() & Self::PPN_MASK) << Self::PPN_SHIFT),
            ),
        }
    }

    /// Builds a huge-permission entry covering the whole 32 MiB slice.
    ///
    /// # Panics
    ///
    /// Panics if `perms` is empty (that encoding would decode as a pointer).
    pub fn huge(perms: Perms) -> RootPmpte {
        assert!(
            !perms.is_empty(),
            "huge root pmpte needs a non-empty permission"
        );
        let mut bits = Self::V;
        if perms.can_read() {
            bits |= Self::R;
        }
        if perms.can_write() {
            bits |= Self::W;
        }
        if perms.can_exec() {
            bits |= Self::X;
        }
        RootPmpte {
            bits: Self::sealed(bits),
        }
    }

    /// True if the V bit is set.
    pub const fn is_valid(self) -> bool {
        self.bits & Self::V != 0
    }

    /// True if this is a valid pointer to a leaf table.
    pub const fn is_pointer(self) -> bool {
        self.is_valid() && self.bits & (Self::R | Self::W | Self::X) == 0
    }

    /// True if this is a valid huge-permission entry.
    pub const fn is_huge(self) -> bool {
        self.is_valid() && self.bits & (Self::R | Self::W | Self::X) != 0
    }

    /// The huge permission (meaningful when [`RootPmpte::is_huge`]).
    ///
    /// The R/W/X field (bits 3:1) uses the same bit order as
    /// [`Perms`], so decode is a single shift-and-mask — no per-bit
    /// branching on the permission-check hot path.
    pub const fn perms(self) -> Perms {
        Perms::from_bits_truncate((self.bits >> 1) as u8)
    }

    /// Base address of the leaf table (meaningful when
    /// [`RootPmpte::is_pointer`]).
    pub fn leaf_table(self) -> PhysAddr {
        PhysAddr::new(((self.bits >> Self::PPN_SHIFT) & Self::PPN_MASK) << PAGE_SHIFT)
    }
}

/// A decoded leaf pmpte (Figure 6-d): sixteen 4-bit permission nibbles.
/// Each nibble's bit 3 is the parity of its three permission bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct LeafPmpte {
    bits: u64,
}

impl LeafPmpte {
    /// Encodes one permission nibble with its parity bit.
    const fn nibble(perms: Perms) -> u64 {
        let p = perms.bits() as u64;
        p | (((p ^ (p >> 1) ^ (p >> 2)) & 1) << 3)
    }

    /// Decodes a raw entry without validation (use [`LeafPmpte::decode`]
    /// for bits read back from DRAM).
    pub const fn from_bits(bits: u64) -> LeafPmpte {
        LeafPmpte { bits }
    }

    /// Decodes and validates a raw entry read from memory: every nibble
    /// must have even parity.
    pub const fn decode(bits: u64) -> Result<LeafPmpte, MalformedPmpte> {
        let entry = LeafPmpte { bits };
        if entry.is_malformed() {
            return Err(MalformedPmpte::ParityMismatch(bits));
        }
        Ok(entry)
    }

    /// True if any nibble violates its parity bit.
    pub const fn is_malformed(self) -> bool {
        // Fold each nibble onto its own low bit: a nibble with odd parity
        // leaves a 1 behind.
        let folded = self.bits ^ (self.bits >> 1) ^ (self.bits >> 2) ^ (self.bits >> 3);
        folded & 0x1111_1111_1111_1111 != 0
    }

    /// Raw encoding.
    pub const fn to_bits(self) -> u64 {
        self.bits
    }

    /// Nibble-value → permission lookup table: strips the parity bit
    /// without any per-bit matching, so leaf decode on the hot path is a
    /// shift, a mask and one indexed load.
    const NIBBLE_PERMS: [Perms; 16] = {
        let mut table = [Perms::NONE; 16];
        let mut nibble = 0u8;
        while nibble < 16 {
            table[nibble as usize] = Perms::from_bits_truncate(nibble);
            nibble += 1;
        }
        table
    };

    /// Permission of page `index` (0–15) within this pmpte's 64 KiB span.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn perm(self, index: usize) -> Perms {
        assert!(index < 16, "leaf pmpte holds 16 page permissions");
        Self::NIBBLE_PERMS[((self.bits >> (index * 4)) & 0xf) as usize]
    }

    /// Returns a copy with page `index`'s permission replaced.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn with_perm(self, index: usize, perms: Perms) -> LeafPmpte {
        assert!(index < 16, "leaf pmpte holds 16 page permissions");
        let shift = index * 4;
        LeafPmpte {
            bits: (self.bits & !(0xf << shift)) | (Self::nibble(perms) << shift),
        }
    }

    /// Builds a pmpte with the same permission for all 16 pages.
    pub fn splat(perms: Perms) -> LeafPmpte {
        let nibble = Self::nibble(perms);
        let mut bits = 0;
        for i in 0..16 {
            bits |= nibble << (i * 4);
        }
        LeafPmpte { bits }
    }
}

/// Decomposition of a region offset per Figure 6-e.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableOffset {
    /// Index into the root table (`offset[33:25]`).
    pub off1: u64,
    /// Index into the leaf table (`offset[24:16]`).
    pub off0: u64,
    /// Which nibble of the leaf pmpte (`offset[15:12]`).
    pub page_index: usize,
}

impl TableOffset {
    /// Splits a byte offset within the protected region.
    pub const fn split(offset: u64) -> TableOffset {
        TableOffset {
            off1: (offset >> 25) & 0x1ff,
            off0: (offset >> 16) & 0x1ff,
            page_index: ((offset >> 12) & 0xf) as usize,
        }
    }
}

/// How [`PmpTable::set_range_perm`] materialises a range's permissions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FillPolicy {
    /// One nibble per 4 KiB page — a faithful per-page fill.
    #[default]
    PerPage,
    /// Collapse aligned 32 MiB runs into huge root pmptes.
    HugeWhenAligned,
}

/// Source of frames for PMP Table pages (root and leaf tables).
pub trait TableFrameSource {
    /// Allocates one zeroed 4 KiB frame for a table page.
    fn alloc_table_frame(&mut self) -> Option<PhysAddr>;
}

impl TableFrameSource for hpmp_memsim::FrameAllocator {
    fn alloc_table_frame(&mut self) -> Option<PhysAddr> {
        self.alloc()
    }
}

/// Error from PMP Table management operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableError {
    /// The offset lies outside the 16 GiB reach of a 2-level table.
    OutOfReach(u64),
    /// No frames left for table pages.
    OutOfTableFrames,
    /// The address is not page aligned.
    Misaligned(PhysAddr),
    /// The address is outside the region the table protects.
    OutsideRegion(PhysAddr),
    /// A pmpte read back from DRAM failed its integrity check; the address
    /// is the corrupt slot.
    CorruptEntry(PhysAddr),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::OutOfReach(off) => {
                write!(
                    f,
                    "offset {off:#x} beyond the 16 GiB reach of a 2-level PMP table"
                )
            }
            TableError::OutOfTableFrames => f.write_str("out of PMP-table frames"),
            TableError::Misaligned(pa) => write!(f, "address {pa} not page aligned"),
            TableError::OutsideRegion(pa) => write!(f, "address {pa} outside protected region"),
            TableError::CorruptEntry(pa) => {
                write!(f, "pmpte at {pa} failed its integrity check")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// One pmpte read performed by the PMP Table walker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmptRef {
    /// `true` for a root pmpte, `false` for a leaf pmpte.
    pub is_root: bool,
    /// Physical address of the pmpte.
    pub addr: PhysAddr,
}

/// Outcome of walking a PMP Table for one physical address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableWalk {
    /// pmpte reads performed, in order (≤ 2 for a 2-level table).
    pub refs: Vec<PmptRef>,
    /// The permission found, or `None` if the walk hit an invalid entry.
    pub perms: Option<Perms>,
    /// `true` if the walk read a pmpte that failed its integrity check
    /// (`perms` is then `None`: the walker fails closed).
    pub malformed: bool,
}

/// A 2-level PMP Table protecting one contiguous region.
///
/// ```
/// use hpmp_core::PmpTable;
/// use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, PhysMem, PAGE_SIZE};
///
/// let mut mem = PhysMem::new();
/// let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
/// let region = hpmp_core::PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 30);
/// let mut table = PmpTable::new(region, &mut mem, &mut frames).unwrap();
/// table.set_page_perm(&mut mem, &mut frames, PhysAddr::new(0x9000_2000), Perms::RW).unwrap();
/// let walk = table.walk(&mem, PhysAddr::new(0x9000_2abc));
/// assert_eq!(walk.perms, Some(Perms::RW));
/// assert_eq!(walk.refs.len(), 2); // root pmpte + leaf pmpte
/// ```
#[derive(Clone, Debug)]
pub struct PmpTable {
    region: PmpRegion,
    root: PhysAddr,
    levels: TableLevels,
    table_pages: Vec<PhysAddr>,
}

impl PmpTable {
    /// Creates an empty (all-invalid) 2-level table for `region`, allocating
    /// the root page.
    ///
    /// # Errors
    ///
    /// Fails if `region` exceeds the 16 GiB reach or frames run out.
    pub fn new(
        region: PmpRegion,
        mem: &mut dyn WordStore,
        frames: &mut dyn TableFrameSource,
    ) -> Result<PmpTable, TableError> {
        Self::with_levels(region, TableLevels::Two, mem, frames)
    }

    /// Creates an empty table with an explicit depth (for the §4.3 depth
    /// ablation).
    ///
    /// # Errors
    ///
    /// Fails if `region` exceeds the depth's reach or frames run out.
    pub fn with_levels(
        region: PmpRegion,
        levels: TableLevels,
        mem: &mut dyn WordStore,
        frames: &mut dyn TableFrameSource,
    ) -> Result<PmpTable, TableError> {
        if region.size > levels.reach() {
            return Err(TableError::OutOfReach(region.size));
        }
        let root = frames
            .alloc_table_frame()
            .ok_or(TableError::OutOfTableFrames)?;
        mem.zero_page(root);
        Ok(PmpTable {
            region,
            root,
            levels,
            table_pages: vec![root],
        })
    }

    /// The depth of this table.
    pub fn levels(&self) -> TableLevels {
        self.levels
    }

    /// The region this table protects.
    pub fn region(&self) -> PmpRegion {
        self.region
    }

    /// Physical base of the root table page (what the next HPMP entry's
    /// `addr` register records).
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// All table pages (root first) — the monitor protects these with its
    /// own private segment.
    pub fn table_pages(&self) -> &[PhysAddr] {
        &self.table_pages
    }

    /// Sets the permission of the 4 KiB page containing `addr`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is outside the region or frames run out.
    pub fn set_page_perm(
        &mut self,
        mem: &mut dyn WordStore,
        frames: &mut dyn TableFrameSource,
        addr: PhysAddr,
        perms: Perms,
    ) -> Result<(), TableError> {
        if !self.region.contains(addr) {
            return Err(TableError::OutsideRegion(addr));
        }
        let offset = addr.offset_from(self.region.base);
        let split = TableOffset::split(offset);

        // Descend the non-leaf levels, materialising tables as needed and
        // expanding huge entries into explicit children.
        let mut table = self.root;
        for level in (1..self.levels.depth()).rev() {
            let idx = (offset >> TableLevels::index_shift(level)) & 0x1ff;
            let slot = PhysAddr::new(table.raw() + idx * 8);
            let entry = RootPmpte::decode(mem.read_u64(slot))
                .map_err(|_| TableError::CorruptEntry(slot))?;
            table = if entry.is_pointer() {
                entry.leaf_table()
            } else {
                let child = frames
                    .alloc_table_frame()
                    .ok_or(TableError::OutOfTableFrames)?;
                mem.zero_page(child);
                if entry.is_huge() {
                    // Expand: children inherit the huge permission.
                    let fill = if level == 1 {
                        LeafPmpte::splat(entry.perms()).to_bits()
                    } else {
                        RootPmpte::huge(entry.perms()).to_bits()
                    };
                    for i in 0..512u64 {
                        mem.write_u64(PhysAddr::new(child.raw() + i * 8), fill);
                    }
                }
                mem.write_u64(slot, RootPmpte::pointer(child).to_bits());
                self.table_pages.push(child);
                child
            };
        }
        let leaf_slot = PhysAddr::new(table.raw() + split.off0 * 8);
        let leaf = LeafPmpte::decode(mem.read_u64(leaf_slot))
            .map_err(|_| TableError::CorruptEntry(leaf_slot))?;
        mem.write_u64(leaf_slot, leaf.with_perm(split.page_index, perms).to_bits());
        Ok(())
    }

    /// Sets a whole 32 MiB-aligned slice to one permission using a huge root
    /// pmpte — the optimisation behind the paper's cheap large-region
    /// allocations (Figure 14-d).
    ///
    /// # Errors
    ///
    /// Fails if the slice is not 32 MiB aligned within the region.
    pub fn set_huge_perm(
        &mut self,
        mem: &mut dyn WordStore,
        slice_base: PhysAddr,
        perms: Perms,
    ) -> Result<(), TableError> {
        if self.levels == TableLevels::One {
            // A 1-level table has no non-leaf entries to hold a huge perm.
            return Err(TableError::Misaligned(slice_base));
        }
        if !self.region.contains(slice_base) {
            return Err(TableError::OutsideRegion(slice_base));
        }
        let offset = slice_base.offset_from(self.region.base);
        if !offset.is_multiple_of(LEAF_TABLE_SPAN) {
            return Err(TableError::Misaligned(slice_base));
        }
        // Descend to the level-1 table (creating intermediates for 3-level).
        let mut table = self.root;
        for level in (2..self.levels.depth()).rev() {
            let idx = (offset >> TableLevels::index_shift(level)) & 0x1ff;
            let slot = PhysAddr::new(table.raw() + idx * 8);
            let entry = RootPmpte::decode(mem.read_u64(slot))
                .map_err(|_| TableError::CorruptEntry(slot))?;
            table = if entry.is_pointer() {
                entry.leaf_table()
            } else {
                // No frame source here: huge writes never allocate in the
                // shipped 2-level design; for 3-level we require the path to
                // exist already.
                return Err(TableError::OutsideRegion(slice_base));
            };
        }
        let idx = (offset >> TableLevels::index_shift(1)) & 0x1ff;
        let slot = PhysAddr::new(table.raw() + idx * 8);
        let entry = if perms.is_empty() {
            RootPmpte::INVALID
        } else {
            RootPmpte::huge(perms)
        };
        mem.write_u64(slot, entry.to_bits());
        Ok(())
    }

    /// Sets the permission for every page of `[base, base + len)`.
    ///
    /// With [`FillPolicy::HugeWhenAligned`], aligned 32 MiB runs collapse to
    /// one huge root pmpte each (the monitor's large-allocation optimisation
    /// behind Figure 14-d); with [`FillPolicy::PerPage`] every page gets its
    /// own nibble, which is how a domain's scattered ownership actually
    /// looks. Returns the number of pmpte *writes* performed, which the
    /// monitor uses to model reconfiguration cost.
    ///
    /// # Errors
    ///
    /// Fails if the range leaves the region, is unaligned, or frames run
    /// out.
    pub fn set_range_perm(
        &mut self,
        mem: &mut dyn WordStore,
        frames: &mut dyn TableFrameSource,
        base: PhysAddr,
        len: u64,
        perms: Perms,
        policy: FillPolicy,
    ) -> Result<u64, TableError> {
        if !base.is_aligned(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(TableError::Misaligned(base));
        }
        let mut writes = 0;
        let mut cursor = base;
        let end = PhysAddr::new(base.raw() + len);
        while cursor < end {
            let remaining = end.raw() - cursor.raw();
            let offset = cursor.offset_from(self.region.base);
            if policy == FillPolicy::HugeWhenAligned
                && self.levels != TableLevels::One
                && offset.is_multiple_of(LEAF_TABLE_SPAN)
                && remaining >= LEAF_TABLE_SPAN
                && !perms.is_empty()
            {
                self.set_huge_perm(mem, cursor, perms)?;
                writes += 1;
                cursor += LEAF_TABLE_SPAN;
            } else {
                self.set_page_perm(mem, frames, cursor, perms)?;
                writes += 1;
                cursor += PAGE_SIZE;
            }
        }
        Ok(writes)
    }

    /// Walks the table for `addr`, reporting the pmpte reads performed.
    /// Addresses outside the region produce an empty walk with no
    /// permission.
    pub fn walk(&self, mem: &dyn WordStore, addr: PhysAddr) -> TableWalk {
        if !self.region.contains(addr) {
            return TableWalk {
                refs: Vec::new(),
                perms: None,
                malformed: false,
            };
        }
        let offset = addr.offset_from(self.region.base);
        walk_from_root(mem, self.root, self.levels, self.region.base, addr, offset)
    }

    /// Software query without reference accounting.
    pub fn lookup(&self, mem: &dyn WordStore, addr: PhysAddr) -> Option<Perms> {
        self.walk(mem, addr).perms
    }
}

/// Walks a PMP Table given only what the hardware knows: the root page
/// (from the next HPMP entry's address register), the depth (from its `Mode`
/// field) and the base of the protected region (from the entry's address
/// matching). Used by the HPMP checker, which has no [`PmpTable`] handle.
pub(crate) fn walk_from_root(
    mem: &dyn WordStore,
    root: PhysAddr,
    levels: TableLevels,
    _region_base: PhysAddr,
    _addr: PhysAddr,
    offset: u64,
) -> TableWalk {
    let split = TableOffset::split(offset);
    let mut refs = Vec::with_capacity(levels.depth());
    let mut table = root;
    for level in (1..levels.depth()).rev() {
        let idx = (offset >> TableLevels::index_shift(level)) & 0x1ff;
        let slot = PhysAddr::new(table.raw() + idx * 8);
        refs.push(PmptRef {
            is_root: true,
            addr: slot,
        });
        let entry = match RootPmpte::decode(mem.read_u64(slot)) {
            Ok(entry) => entry,
            Err(_) => {
                return TableWalk {
                    refs,
                    perms: None,
                    malformed: true,
                }
            }
        };
        if !entry.is_valid() {
            return TableWalk {
                refs,
                perms: None,
                malformed: false,
            };
        }
        if entry.is_huge() {
            return TableWalk {
                refs,
                perms: Some(entry.perms()),
                malformed: false,
            };
        }
        table = entry.leaf_table();
    }
    let leaf_slot = PhysAddr::new(table.raw() + split.off0 * 8);
    refs.push(PmptRef {
        is_root: false,
        addr: leaf_slot,
    });
    let leaf = match LeafPmpte::decode(mem.read_u64(leaf_slot)) {
        Ok(leaf) => leaf,
        Err(_) => {
            return TableWalk {
                refs,
                perms: None,
                malformed: true,
            }
        }
    };
    let perms = leaf.perm(split.page_index);
    TableWalk {
        refs,
        perms: if perms.is_empty() { None } else { Some(perms) },
        malformed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_memsim::{FrameAllocator, PhysMem};

    fn fixture(region_size: u64) -> (PhysMem, FrameAllocator, PmpTable) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 2048 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), region_size);
        let table = PmpTable::new(region, &mut mem, &mut frames).unwrap();
        (mem, frames, table)
    }

    #[test]
    fn root_pmpte_encodings() {
        let ptr = RootPmpte::pointer(PhysAddr::new(0x8000_3000));
        assert!(ptr.is_pointer() && !ptr.is_huge());
        assert_eq!(ptr.leaf_table(), PhysAddr::new(0x8000_3000));

        let huge = RootPmpte::huge(Perms::RW);
        assert!(huge.is_huge() && !huge.is_pointer());
        assert_eq!(huge.perms(), Perms::RW);

        assert!(!RootPmpte::INVALID.is_valid());
        assert_eq!(RootPmpte::from_bits(ptr.to_bits()), ptr);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn huge_root_rejects_empty_perms() {
        RootPmpte::huge(Perms::NONE);
    }

    #[test]
    fn leaf_pmpte_nibbles() {
        let mut leaf = LeafPmpte::default();
        leaf = leaf.with_perm(0, Perms::READ);
        leaf = leaf.with_perm(15, Perms::RWX);
        assert_eq!(leaf.perm(0), Perms::READ);
        assert_eq!(leaf.perm(15), Perms::RWX);
        assert_eq!(leaf.perm(7), Perms::NONE);
        // Overwrite works.
        leaf = leaf.with_perm(0, Perms::RW);
        assert_eq!(leaf.perm(0), Perms::RW);
        // Splat fills all nibbles.
        let splat = LeafPmpte::splat(Perms::RX);
        for i in 0..16 {
            assert_eq!(splat.perm(i), Perms::RX);
        }
    }

    #[test]
    fn pmpte_decode_accepts_well_formed_entries() {
        for bits in [
            0u64,
            RootPmpte::pointer(PhysAddr::new(0x8000_3000)).to_bits(),
            RootPmpte::huge(Perms::RW).to_bits(),
            RootPmpte::huge(Perms::RWX).to_bits(),
        ] {
            assert_eq!(RootPmpte::decode(bits), Ok(RootPmpte::from_bits(bits)));
        }
        for perms in [Perms::NONE, Perms::READ, Perms::RW, Perms::RX, Perms::RWX] {
            let leaf = LeafPmpte::splat(perms);
            assert_eq!(LeafPmpte::decode(leaf.to_bits()), Ok(leaf));
            assert_eq!(leaf.perm(3), perms, "parity bit must not leak into perms");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        for base in [
            RootPmpte::INVALID.to_bits(),
            RootPmpte::pointer(PhysAddr::new(0x8000_3000)).to_bits(),
            RootPmpte::huge(Perms::RX).to_bits(),
        ] {
            for bit in 0..64 {
                let corrupt = base ^ (1u64 << bit);
                assert!(
                    RootPmpte::decode(corrupt).is_err(),
                    "root {base:#x} flip bit {bit} went undetected"
                );
                assert!(RootPmpte::from_bits(corrupt).is_malformed());
            }
        }
        for base in [
            LeafPmpte::default().to_bits(),
            LeafPmpte::splat(Perms::RW).to_bits(),
            LeafPmpte::splat(Perms::RWX)
                .with_perm(5, Perms::READ)
                .to_bits(),
        ] {
            for bit in 0..64 {
                let corrupt = base ^ (1u64 << bit);
                assert!(
                    LeafPmpte::decode(corrupt).is_err(),
                    "leaf {base:#x} flip bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn adversarial_root_encodings_rejected() {
        // Reserved bits between the flags and the PPN field, and above it.
        for bits in [
            1u64 << 4,
            1 << 12,
            1 << 49,
            1 << 62,
            // Reserved bit set *and* parity patched to be even: still caught.
            (1 << 4) | (1 << 5),
            // Valid-looking pointer with a reserved bit and fixed parity.
            RootPmpte::pointer(PhysAddr::new(0x8000_3000)).to_bits() ^ (1 << 49) ^ (1 << 63),
        ] {
            assert!(matches!(
                RootPmpte::decode(bits),
                Err(MalformedPmpte::ReservedBits(_))
            ));
        }
        // Parity-only violation: legal fields, odd popcount.
        let odd = RootPmpte::huge(Perms::RW).to_bits() ^ (1 << 1);
        assert!(matches!(
            RootPmpte::decode(odd),
            Err(MalformedPmpte::ParityMismatch(_))
        ));
    }

    #[test]
    fn corrupt_table_page_surfaces_as_typed_error() {
        let (mut mem, mut frames, mut table) = fixture(1 << 30);
        let page = PhysAddr::new(0x9000_5000);
        table
            .set_page_perm(&mut mem, &mut frames, page, Perms::RW)
            .unwrap();
        // Flip one bit of the root pmpte covering the page.
        let walk = table.walk(&mem, page);
        let root_slot = walk.refs[0].addr;
        mem.write_u64(root_slot, mem.read_u64(root_slot) ^ (1 << 17));
        let walk = table.walk(&mem, page);
        assert!(walk.malformed, "corrupt root must flag the walk");
        assert_eq!(walk.perms, None, "corrupt root must fail closed");
        assert_eq!(
            table.set_page_perm(&mut mem, &mut frames, page, Perms::RWX),
            Err(TableError::CorruptEntry(root_slot))
        );
    }

    #[test]
    fn offset_split_matches_figure_6e() {
        let off = (3u64 << 25) | (7 << 16) | (5 << 12) | 0x123;
        let split = TableOffset::split(off);
        assert_eq!(split.off1, 3);
        assert_eq!(split.off0, 7);
        assert_eq!(split.page_index, 5);
    }

    #[test]
    fn spans_match_paper_sizing() {
        assert_eq!(LEAF_PMPTE_SPAN, 64 * 1024);
        assert_eq!(LEAF_TABLE_SPAN, 32 << 20); // one root pmpte = 32 MiB
        assert_eq!(ROOT_TABLE_SPAN, 16 << 30); // 2-level table = 16 GiB
    }

    #[test]
    fn page_perm_round_trip() {
        let (mut mem, mut frames, mut table) = fixture(1 << 30);
        let page = PhysAddr::new(0x9000_5000);
        table
            .set_page_perm(&mut mem, &mut frames, page, Perms::RW)
            .unwrap();
        assert_eq!(table.lookup(&mem, page + 0xabc), Some(Perms::RW));
        assert_eq!(table.lookup(&mem, PhysAddr::new(0x9000_6000)), None);
    }

    #[test]
    fn walk_reads_two_pmptes() {
        let (mut mem, mut frames, mut table) = fixture(1 << 30);
        let page = PhysAddr::new(0x9000_5000);
        table
            .set_page_perm(&mut mem, &mut frames, page, Perms::RWX)
            .unwrap();
        let walk = table.walk(&mem, page);
        assert_eq!(walk.refs.len(), 2);
        assert!(walk.refs[0].is_root);
        assert!(!walk.refs[1].is_root);
    }

    #[test]
    fn invalid_root_short_circuits() {
        let (mem, _frames, table) = fixture(1 << 30);
        let walk = table.walk(&mem, PhysAddr::new(0x9000_0000));
        assert_eq!(walk.refs.len(), 1); // only the invalid root pmpte
        assert_eq!(walk.perms, None);
    }

    #[test]
    fn huge_root_entry_single_ref() {
        let (mut mem, _frames, mut table) = fixture(1 << 30);
        table
            .set_huge_perm(&mut mem, PhysAddr::new(0x9000_0000), Perms::RW)
            .unwrap();
        let walk = table.walk(&mem, PhysAddr::new(0x9100_0000)); // within 32 MiB slice
        assert_eq!(walk.refs.len(), 1);
        assert_eq!(walk.perms, Some(Perms::RW));
    }

    #[test]
    fn huge_expansion_preserves_perms() {
        let (mut mem, mut frames, mut table) = fixture(1 << 30);
        table
            .set_huge_perm(&mut mem, PhysAddr::new(0x9000_0000), Perms::RW)
            .unwrap();
        // Punch one page out of the huge slice.
        table
            .set_page_perm(
                &mut mem,
                &mut frames,
                PhysAddr::new(0x9000_3000),
                Perms::NONE,
            )
            .unwrap();
        assert_eq!(table.lookup(&mem, PhysAddr::new(0x9000_3000)), None);
        // The rest of the slice keeps RW, via the expanded leaf table.
        assert_eq!(
            table.lookup(&mem, PhysAddr::new(0x9000_4000)),
            Some(Perms::RW)
        );
        let walk = table.walk(&mem, PhysAddr::new(0x9000_4000));
        assert_eq!(walk.refs.len(), 2); // now a real 2-level walk
    }

    #[test]
    fn range_perm_uses_huge_entries() {
        let (mut mem, mut frames, mut table) = fixture(1 << 30);
        // 64 MiB aligned at region base: 2 huge writes.
        let writes = table
            .set_range_perm(
                &mut mem,
                &mut frames,
                PhysAddr::new(0x9000_0000),
                64 << 20,
                Perms::RW,
                FillPolicy::HugeWhenAligned,
            )
            .unwrap();
        assert_eq!(writes, 2);
        // 64 KiB unaligned-to-32 MiB: 16 page writes.
        let writes = table
            .set_range_perm(
                &mut mem,
                &mut frames,
                PhysAddr::new(0x9400_0000 + 0x1_0000),
                64 * 1024,
                Perms::RW,
                FillPolicy::HugeWhenAligned,
            )
            .unwrap();
        assert_eq!(writes, 16);
    }

    #[test]
    fn outside_region_rejected() {
        let (mut mem, mut frames, mut table) = fixture(1 << 30);
        let outside = PhysAddr::new(0x5000_0000);
        assert_eq!(
            table.set_page_perm(&mut mem, &mut frames, outside, Perms::RW),
            Err(TableError::OutsideRegion(outside))
        );
        let walk = table.walk(&mem, outside);
        assert!(walk.refs.is_empty());
    }

    #[test]
    fn one_level_table_single_ref() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 8 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 32 << 20);
        let mut table =
            PmpTable::with_levels(region, TableLevels::One, &mut mem, &mut frames).unwrap();
        let page = PhysAddr::new(0x9000_2000);
        table
            .set_page_perm(&mut mem, &mut frames, page, Perms::RW)
            .unwrap();
        let walk = table.walk(&mem, page);
        assert_eq!(walk.refs.len(), 1);
        assert_eq!(walk.perms, Some(Perms::RW));
        // 1-level reach is 32 MiB only.
        assert!(matches!(
            PmpTable::with_levels(
                PmpRegion::new(PhysAddr::new(0), 64 << 20),
                TableLevels::One,
                &mut mem,
                &mut frames
            ),
            Err(TableError::OutOfReach(_))
        ));
    }

    #[test]
    fn three_level_table_three_refs() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 64 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0x10_0000_0000), 32 << 30);
        let mut table =
            PmpTable::with_levels(region, TableLevels::Three, &mut mem, &mut frames).unwrap();
        // A page 20 GiB into the region (beyond 2-level reach).
        let page = PhysAddr::new(0x10_0000_0000 + (20u64 << 30));
        table
            .set_page_perm(&mut mem, &mut frames, page, Perms::RX)
            .unwrap();
        let walk = table.walk(&mem, page);
        assert_eq!(walk.refs.len(), 3);
        assert_eq!(walk.perms, Some(Perms::RX));
    }

    #[test]
    fn mode_bits_round_trip() {
        for levels in [TableLevels::One, TableLevels::Two, TableLevels::Three] {
            assert_eq!(
                TableLevels::from_mode_bits(levels.to_mode_bits()),
                Some(levels)
            );
        }
        assert_eq!(TableLevels::from_mode_bits(3), None);
        assert_eq!(TableLevels::Two.to_mode_bits(), 0); // shipped design
        assert_eq!(TableLevels::Two.depth(), 2);
        assert_eq!(TableLevels::Three.reach(), 8u64 << 40);
    }

    #[test]
    fn oversized_region_rejected() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 8 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0), 32 << 30);
        assert!(matches!(
            PmpTable::new(region, &mut mem, &mut frames),
            Err(TableError::OutOfReach(_))
        ));
    }
}
