//! IOPMP: table-based physical memory isolation for DMA (§9).
//!
//! The paper notes that HPMP "offers the ability to isolate MMIO regions for
//! different domains … Additionally, HPMP (or PMP) can be employed for DMA
//! protections, such as IOPMP, effectively safeguarding against malicious
//! I/O devices." This module models an IOPMP checker in the HPMP style:
//! each entry carries a *source mask* selecting which DMA initiators it
//! applies to, and is either a segment (in-register permission) or a PMP
//! Table (per-page permissions via the same radix structure as the CPU
//! side). Entries are statically prioritised, like HPMP.

use hpmp_memsim::{AccessKind, Perms, PhysAddr, WordStore};

use crate::pmp::PmpRegion;
use crate::table::{walk_from_root, PmptRef, TableLevels};

/// Identifier of a DMA initiator (the IOPMP "source id").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u8);

impl DeviceId {
    /// Bit position in an entry's source mask.
    fn bit(self) -> u32 {
        1u32 << (self.0 & 31)
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// How an IOPMP entry resolves permissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoPmpMode {
    /// Permission held in the entry (segment mode).
    Segment(Perms),
    /// Permissions come from a PMP Table rooted at the given page.
    Table {
        /// Root table page.
        root: PhysAddr,
        /// Table depth.
        levels: TableLevels,
    },
}

/// One IOPMP entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoPmpEntry {
    /// Which initiators this entry applies to (bit per [`DeviceId`]).
    pub source_mask: u32,
    /// The protected region.
    pub region: PmpRegion,
    /// Segment or table resolution.
    pub mode: IoPmpMode,
}

/// Outcome of one IOPMP check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoCheckOutcome {
    /// Whether the DMA access is permitted.
    pub allowed: bool,
    /// Index of the deciding entry, if any.
    pub matched_entry: Option<usize>,
    /// pmpte reads performed (table-mode entries).
    pub refs: Vec<PmptRef>,
}

/// An IOPMP checker sitting between DMA initiators and memory.
///
/// ```
/// use hpmp_core::{DeviceId, IoPmp, IoPmpEntry, IoPmpMode, PmpRegion};
/// use hpmp_memsim::{AccessKind, Perms, PhysAddr, PhysMem};
///
/// let mut iopmp = IoPmp::new();
/// iopmp.push(IoPmpEntry {
///     source_mask: 1 << 3,
///     region: PmpRegion::new(PhysAddr::new(0x9000_0000), 0x10_0000),
///     mode: IoPmpMode::Segment(Perms::RW),
/// });
/// let mem = PhysMem::new();
/// let ok = iopmp.check(&mem, DeviceId(3), PhysAddr::new(0x9000_1000), AccessKind::Write);
/// assert!(ok.allowed);
/// let other = iopmp.check(&mem, DeviceId(4), PhysAddr::new(0x9000_1000), AccessKind::Write);
/// assert!(!other.allowed); // unmatched initiators have no access
/// ```
#[derive(Clone, Debug, Default)]
pub struct IoPmp {
    entries: Vec<IoPmpEntry>,
}

impl IoPmp {
    /// Creates an empty checker (all DMA denied).
    pub fn new() -> IoPmp {
        IoPmp::default()
    }

    /// Appends an entry (lower indices have priority).
    pub fn push(&mut self, entry: IoPmpEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// Removes the entry at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove(&mut self, idx: usize) -> IoPmpEntry {
        self.entries.remove(idx)
    }

    /// The installed entries.
    pub fn entries(&self) -> &[IoPmpEntry] {
        &self.entries
    }

    /// Checks one DMA access from `device`. The lowest-numbered entry whose
    /// source mask and region both match decides; unmatched accesses are
    /// denied (devices have no default access).
    pub fn check(
        &self,
        mem: &dyn WordStore,
        device: DeviceId,
        addr: PhysAddr,
        kind: AccessKind,
    ) -> IoCheckOutcome {
        for (idx, entry) in self.entries.iter().enumerate() {
            if entry.source_mask & device.bit() == 0 || !entry.region.contains(addr) {
                continue;
            }
            return match entry.mode {
                IoPmpMode::Segment(perms) => IoCheckOutcome {
                    allowed: perms.allows(kind),
                    matched_entry: Some(idx),
                    refs: Vec::new(),
                },
                IoPmpMode::Table { root, levels } => {
                    let offset = addr.offset_from(entry.region.base);
                    let walk = walk_from_root(mem, root, levels, entry.region.base, addr, offset);
                    IoCheckOutcome {
                        allowed: walk.perms.is_some_and(|p| p.allows(kind)),
                        matched_entry: Some(idx),
                        refs: walk.refs,
                    }
                }
            };
        }
        IoCheckOutcome {
            allowed: false,
            matched_entry: None,
            refs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::PmpTable;
    use hpmp_memsim::{FrameAllocator, PhysMem, PAGE_SIZE};

    #[test]
    fn default_deny() {
        let iopmp = IoPmp::new();
        let mem = PhysMem::new();
        let out = iopmp.check(
            &mem,
            DeviceId(0),
            PhysAddr::new(0x9000_0000),
            AccessKind::Read,
        );
        assert!(!out.allowed);
        assert_eq!(out.matched_entry, None);
    }

    #[test]
    fn source_mask_scopes_entries() {
        let mut iopmp = IoPmp::new();
        iopmp.push(IoPmpEntry {
            source_mask: (1 << 1) | (1 << 2),
            region: PmpRegion::new(PhysAddr::new(0x9000_0000), 0x1000),
            mode: IoPmpMode::Segment(Perms::READ),
        });
        let mem = PhysMem::new();
        let addr = PhysAddr::new(0x9000_0800);
        assert!(
            iopmp
                .check(&mem, DeviceId(1), addr, AccessKind::Read)
                .allowed
        );
        assert!(
            iopmp
                .check(&mem, DeviceId(2), addr, AccessKind::Read)
                .allowed
        );
        assert!(
            !iopmp
                .check(&mem, DeviceId(3), addr, AccessKind::Read)
                .allowed
        );
        // Permission is respected per kind.
        assert!(
            !iopmp
                .check(&mem, DeviceId(1), addr, AccessKind::Write)
                .allowed
        );
    }

    #[test]
    fn priority_matches_hpmp() {
        let mut iopmp = IoPmp::new();
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 0x1000);
        iopmp.push(IoPmpEntry {
            source_mask: !0,
            region,
            mode: IoPmpMode::Segment(Perms::NONE),
        });
        iopmp.push(IoPmpEntry {
            source_mask: !0,
            region,
            mode: IoPmpMode::Segment(Perms::RW),
        });
        let mem = PhysMem::new();
        let out = iopmp.check(
            &mem,
            DeviceId(0),
            PhysAddr::new(0x9000_0000),
            AccessKind::Read,
        );
        assert!(!out.allowed, "the deny entry matches first");
        assert_eq!(out.matched_entry, Some(0));
    }

    #[test]
    fn table_mode_walks_pmptes() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 16 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 26);
        let mut table = PmpTable::new(region, &mut mem, &mut frames).unwrap();
        table
            .set_page_perm(
                &mut mem,
                &mut frames,
                PhysAddr::new(0x9000_2000),
                Perms::WRITE,
            )
            .unwrap();
        let mut iopmp = IoPmp::new();
        iopmp.push(IoPmpEntry {
            source_mask: 1,
            region,
            mode: IoPmpMode::Table {
                root: table.root(),
                levels: TableLevels::Two,
            },
        });
        let ok = iopmp.check(
            &mem,
            DeviceId(0),
            PhysAddr::new(0x9000_2abc),
            AccessKind::Write,
        );
        assert!(ok.allowed);
        assert_eq!(ok.refs.len(), 2);
        let deny = iopmp.check(
            &mem,
            DeviceId(0),
            PhysAddr::new(0x9000_3000),
            AccessKind::Write,
        );
        assert!(!deny.allowed);
    }

    #[test]
    fn remove_restores_deny() {
        let mut iopmp = IoPmp::new();
        let idx = iopmp.push(IoPmpEntry {
            source_mask: 1,
            region: PmpRegion::new(PhysAddr::new(0x9000_0000), 0x1000),
            mode: IoPmpMode::Segment(Perms::RW),
        });
        iopmp.remove(idx);
        let mem = PhysMem::new();
        assert!(
            !iopmp
                .check(
                    &mem,
                    DeviceId(0),
                    PhysAddr::new(0x9000_0000),
                    AccessKind::Read
                )
                .allowed
        );
    }
}
