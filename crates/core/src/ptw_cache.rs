//! PMPTW-Cache: a dedicated walk cache for PMP Table entries (§8.9).
//!
//! The paper adds an 8-entry, fully-associative cache (same replacement rule
//! as the page-walk cache) in front of the PMP Table walker. We cache both
//! root pmptes (keyed by the 32 MiB slice) and leaf pmptes (keyed by the
//! 64 KiB span), so a hit on the leaf key answers the check with zero memory
//! references and a hit on only the root key costs one.
//!
//! The cache is *disabled by default* (entries = 0), matching the paper's
//! methodology ("We disable PMPTW-Cache by default, and will analyze the
//! benefits of caching in §8.9").
//!
//! Every cached pmpte is stamped with the **isolation epoch** current at
//! insert time. The monitor bumps the epoch as part of committing any
//! permission change, *before* issuing the (droppable) flush, so an entry
//! surviving a suppressed invalidation can never satisfy a lookup: a stale
//! stamp reads as a miss and forces a fresh walk.

use hpmp_memsim::Perms;

use crate::table::{LeafPmpte, RootPmpte};

/// Configuration of the PMPTW-Cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmptwCacheConfig {
    /// Number of entries (fully associative). Zero disables the cache.
    pub entries: usize,
}

impl PmptwCacheConfig {
    /// The disabled configuration (the paper's default).
    pub const DISABLED: PmptwCacheConfig = PmptwCacheConfig { entries: 0 };
    /// The enabled configuration evaluated in §8.9 (8 entries).
    pub const ENABLED_8: PmptwCacheConfig = PmptwCacheConfig { entries: 8 };
}

impl Default for PmptwCacheConfig {
    fn default() -> PmptwCacheConfig {
        PmptwCacheConfig::DISABLED
    }
}

/// Counters for the PMPTW-Cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmptwCacheStats {
    /// Checks answered entirely from a cached leaf pmpte.
    pub leaf_hits: u64,
    /// Checks that skipped the root read via a cached root pmpte.
    pub root_hits: u64,
    /// Checks that found nothing cached.
    pub misses: u64,
    /// Lookups that matched an entry from a previous isolation epoch — a
    /// dropped invalidation caught by the epoch stamp.
    pub stale: u64,
}

impl PmptwCacheStats {
    /// Publishes the counters into `reg` under `prefix`.
    pub fn export(&self, reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) {
        let ids = PmptwCacheStatsIds::wire(reg, prefix);
        self.store(reg, &ids);
    }

    /// Publishes the counters through handles wired by
    /// [`PmptwCacheStatsIds::wire`].
    pub fn store(&self, reg: &mut hpmp_trace::MetricsRegistry, ids: &PmptwCacheStatsIds) {
        reg.store(ids.leaf_hits, self.leaf_hits);
        reg.store(ids.root_hits, self.root_hits);
        reg.store(ids.misses, self.misses);
        reg.store(ids.stale, self.stale);
    }
}

/// Interned counter handles for publishing [`PmptwCacheStats`] repeatedly
/// without re-formatting names.
#[derive(Clone, Copy, Debug)]
pub struct PmptwCacheStatsIds {
    leaf_hits: hpmp_trace::CounterId,
    root_hits: hpmp_trace::CounterId,
    misses: hpmp_trace::CounterId,
    stale: hpmp_trace::CounterId,
}

impl PmptwCacheStatsIds {
    /// Intern the counter names under `prefix` once.
    pub fn wire(reg: &mut hpmp_trace::MetricsRegistry, prefix: &str) -> PmptwCacheStatsIds {
        PmptwCacheStatsIds {
            leaf_hits: reg.counter(format!("{prefix}.leaf_hits")),
            root_hits: reg.counter(format!("{prefix}.root_hits")),
            misses: reg.counter(format!("{prefix}.misses")),
            stale: reg.counter(format!("{prefix}.stale")),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CachedEntry {
    Root {
        entry_idx: usize,
        slice: u64,
        pmpte: RootPmpte,
    },
    Leaf {
        entry_idx: usize,
        span: u64,
        pmpte: LeafPmpte,
    },
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    entry: CachedEntry,
    lru: u64,
    /// Isolation epoch at insert time; entries from older epochs never hit.
    epoch: u64,
}

/// The PMPTW-Cache.
///
/// Keys are scoped by the HPMP entry index, since two table-mode entries may
/// protect overlapping offset spaces in different regions.
#[derive(Clone, Debug)]
pub struct PmptwCache {
    config: PmptwCacheConfig,
    slots: Vec<Slot>,
    clock: u64,
    epoch: u64,
    stats: PmptwCacheStats,
}

impl PmptwCache {
    /// Builds a cache; `PmptwCacheConfig::DISABLED` yields a no-op cache.
    pub fn new(config: PmptwCacheConfig) -> PmptwCache {
        PmptwCache {
            config,
            slots: Vec::with_capacity(config.entries),
            clock: 0,
            epoch: 0,
            stats: PmptwCacheStats::default(),
        }
    }

    /// Convenience: the disabled cache.
    pub fn disabled() -> PmptwCache {
        PmptwCache::new(PmptwCacheConfig::DISABLED)
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &PmptwCacheConfig {
        &self.config
    }

    /// True if the cache can never hit.
    pub fn is_disabled(&self) -> bool {
        self.config.entries == 0
    }

    /// Looks up the leaf pmpte covering `offset` (region-relative) for HPMP
    /// entry `entry_idx`. Returns the per-page permission on a hit.
    pub fn lookup_leaf(&mut self, entry_idx: usize, offset: u64) -> Option<Perms> {
        let span = offset >> 16;
        let page_index = ((offset >> 12) & 0xf) as usize;
        self.clock += 1;
        let clock = self.clock;
        let epoch = self.epoch;
        let slot = self.slots.iter_mut().find(|s| {
            matches!(s.entry,
                CachedEntry::Leaf { entry_idx: e, span: sp, .. } if e == entry_idx && sp == span)
        })?;
        if slot.epoch != epoch {
            self.stats.stale += 1;
            return None;
        }
        slot.lru = clock;
        let CachedEntry::Leaf { pmpte, .. } = slot.entry else {
            unreachable!()
        };
        self.stats.leaf_hits += 1;
        Some(pmpte.perm(page_index))
    }

    /// Looks up the root pmpte covering `offset` for HPMP entry `entry_idx`.
    pub fn lookup_root(&mut self, entry_idx: usize, offset: u64) -> Option<RootPmpte> {
        let slice = offset >> 25;
        self.clock += 1;
        let clock = self.clock;
        let epoch = self.epoch;
        let slot = self.slots.iter_mut().find(|s| {
            matches!(s.entry,
                CachedEntry::Root { entry_idx: e, slice: sl, .. } if e == entry_idx && sl == slice)
        })?;
        if slot.epoch != epoch {
            self.stats.stale += 1;
            return None;
        }
        slot.lru = clock;
        let CachedEntry::Root { pmpte, .. } = slot.entry else {
            unreachable!()
        };
        self.stats.root_hits += 1;
        Some(pmpte)
    }

    /// Records a full miss (for the hit-rate statistics).
    pub fn record_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Caches a root pmpte read from memory.
    pub fn insert_root(&mut self, entry_idx: usize, offset: u64, pmpte: RootPmpte) {
        self.insert(CachedEntry::Root {
            entry_idx,
            slice: offset >> 25,
            pmpte,
        });
    }

    /// Caches a leaf pmpte read from memory.
    pub fn insert_leaf(&mut self, entry_idx: usize, offset: u64, pmpte: LeafPmpte) {
        self.insert(CachedEntry::Leaf {
            entry_idx,
            span: offset >> 16,
            pmpte,
        });
    }

    /// Drops everything (on any PMP-Table or HPMP-register update).
    pub fn flush_all(&mut self) {
        self.slots.clear();
    }

    /// Advances the isolation epoch: every currently cached pmpte becomes
    /// unhittable even if the subsequent flush is dropped by a fault. The
    /// monitor calls this as part of *committing* a permission change, the
    /// flush being only the cleanup half.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The current isolation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> PmptwCacheStats {
        self.stats
    }

    /// Clears counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = PmptwCacheStats::default();
    }

    fn insert(&mut self, entry: CachedEntry) {
        if self.config.entries == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        // Replace an existing slot with the same key if present.
        let same_key = |e: &CachedEntry| match (*e, entry) {
            (
                CachedEntry::Root {
                    entry_idx: a,
                    slice: b,
                    ..
                },
                CachedEntry::Root {
                    entry_idx: c,
                    slice: d,
                    ..
                },
            ) => a == c && b == d,
            (
                CachedEntry::Leaf {
                    entry_idx: a,
                    span: b,
                    ..
                },
                CachedEntry::Leaf {
                    entry_idx: c,
                    span: d,
                    ..
                },
            ) => a == c && b == d,
            _ => false,
        };
        let epoch = self.epoch;
        if let Some(slot) = self.slots.iter_mut().find(|s| same_key(&s.entry)) {
            slot.entry = entry;
            slot.lru = clock;
            slot.epoch = epoch;
            return;
        }
        let slot = Slot {
            entry,
            lru: clock,
            epoch,
        };
        if self.slots.len() < self.config.entries {
            self.slots.push(slot);
        } else {
            let victim = self
                .slots
                .iter_mut()
                .min_by_key(|s| s.lru)
                .expect("non-empty when full");
            *victim = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = PmptwCache::disabled();
        assert!(c.is_disabled());
        c.insert_leaf(0, 0x1_0000, LeafPmpte::splat(Perms::RW));
        assert_eq!(c.lookup_leaf(0, 0x1_0000), None);
    }

    #[test]
    fn leaf_hit_returns_page_perm() {
        let mut c = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        let pmpte = LeafPmpte::default().with_perm(3, Perms::RX);
        c.insert_leaf(2, 0x5_0000, pmpte);
        // Same 64 KiB span, page 3 => RX, page 4 => NONE.
        assert_eq!(c.lookup_leaf(2, 0x5_3000), Some(Perms::RX));
        assert_eq!(c.lookup_leaf(2, 0x5_4000), Some(Perms::NONE));
        // Different span misses.
        assert_eq!(c.lookup_leaf(2, 0x6_0000), None);
        // Different HPMP entry misses.
        assert_eq!(c.lookup_leaf(3, 0x5_3000), None);
    }

    #[test]
    fn root_hit_scoped_by_slice() {
        let mut c = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        let pmpte = RootPmpte::huge(Perms::RW);
        c.insert_root(1, 0, pmpte);
        assert_eq!(c.lookup_root(1, 0x100_0000), Some(pmpte)); // same 32 MiB slice
        assert_eq!(c.lookup_root(1, 0x200_0000), None); // next slice
    }

    #[test]
    fn lru_eviction() {
        let mut c = PmptwCache::new(PmptwCacheConfig { entries: 2 });
        c.insert_leaf(0, 0 << 16, LeafPmpte::splat(Perms::READ));
        c.insert_leaf(0, 1 << 16, LeafPmpte::splat(Perms::READ));
        c.lookup_leaf(0, 0); // refresh first
        c.insert_leaf(0, 2 << 16, LeafPmpte::splat(Perms::READ)); // evict span 1
        assert!(c.lookup_leaf(0, 0).is_some());
        assert!(c.lookup_leaf(0, 1 << 16).is_none());
        assert!(c.lookup_leaf(0, 2 << 16).is_some());
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        c.insert_leaf(0, 0, LeafPmpte::splat(Perms::RW));
        c.flush_all();
        assert_eq!(c.lookup_leaf(0, 0), None);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        c.insert_leaf(0, 0, LeafPmpte::splat(Perms::RW));
        c.lookup_leaf(0, 0);
        c.lookup_leaf(0, 1 << 16);
        c.record_miss();
        let s = c.stats();
        assert_eq!(s.leaf_hits, 1);
        assert_eq!(s.misses, 1);
        c.reset_stats();
        assert_eq!(c.stats(), PmptwCacheStats::default());
    }

    #[test]
    fn stale_epoch_entries_never_hit() {
        let mut c = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        c.insert_leaf(0, 0, LeafPmpte::splat(Perms::RW));
        c.insert_root(1, 0, RootPmpte::huge(Perms::RW));
        // Epoch bump with the flush dropped: entries survive physically but
        // must read as misses.
        c.advance_epoch();
        assert_eq!(c.lookup_leaf(0, 0), None);
        assert_eq!(c.lookup_root(1, 0), None);
        assert_eq!(c.stats().stale, 2);
        // Re-inserting under the new epoch hits again.
        c.insert_leaf(0, 0, LeafPmpte::splat(Perms::READ));
        assert_eq!(c.lookup_leaf(0, 0), Some(Perms::READ));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn same_key_insert_updates_in_place() {
        let mut c = PmptwCache::new(PmptwCacheConfig { entries: 1 });
        c.insert_leaf(0, 0, LeafPmpte::splat(Perms::READ));
        c.insert_leaf(0, 0, LeafPmpte::splat(Perms::RW));
        assert_eq!(c.lookup_leaf(0, 0), Some(Perms::RW));
    }
}
