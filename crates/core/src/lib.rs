//! # hpmp-core
//!
//! The paper's primary contribution, as an executable hardware model: the
//! RISC-V PMP register formats, the **PMP Table** extension (Figure 6 bit
//! layouts: `T` bit, Mode/PPN address register, root and leaf pmptes, the
//! Figure 6-e offset split), the 16-entry **HPMP register file and checker**
//! with statically-prioritized matching, the **PMPTW-Cache**, and an
//! analytic hardware-cost model standing in for the paper's Vivado report.
//!
//! The checker returns the exact pmpte memory references each permission
//! check performs; the `hpmp-machine` crate charges those to the simulated
//! cache hierarchy to produce the paper's latencies.
//!
//! ```
//! use hpmp_core::{HpmpRegFile, PmpRegion, PmptwCache};
//! use hpmp_memsim::{AccessKind, Perms, PhysAddr, PhysMem, PrivMode};
//!
//! // A segment-mode entry checks in-register: zero memory references.
//! let mut regs = HpmpRegFile::new();
//! regs.configure_segment(0, PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000_0000),
//!                        Perms::RW)?;
//! let out = regs.check(&PhysMem::new(), &mut PmptwCache::disabled(),
//!                      PhysAddr::new(0x8000_1000), AccessKind::Read,
//!                      PrivMode::Supervisor);
//! assert!(out.allowed && out.refs.is_empty());
//! # Ok::<(), hpmp_core::HpmpError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod hpmp;
mod iopmp;
mod pmp;
mod ptw_cache;
mod shootdown;
mod table;

pub use cost::{estimate_resources, HardwareParams, ResourceReport};
pub use hpmp::{
    table_pointer_decode, table_pointer_encode, CheckOutcome, EntryPlan, HpmpError, HpmpRegFile,
    EPMP_ENTRIES, HPMP_ENTRIES,
};
pub use hpmp_trace::PmptwOutcome;
pub use iopmp::{DeviceId, IoCheckOutcome, IoPmp, IoPmpEntry, IoPmpMode};
pub use pmp::{napot_decode, napot_encode, AddressMode, PmpConfig, PmpRegion};
pub use ptw_cache::{PmptwCache, PmptwCacheConfig, PmptwCacheStats, PmptwCacheStatsIds};
pub use shootdown::{CopyCost, DeferredShootdown, Ipi, IpiFabric, IpiKind, ShootdownCost};
pub use table::{
    FillPolicy, LeafPmpte, MalformedPmpte, PmpTable, PmptRef, RootPmpte, TableError,
    TableFrameSource, TableLevels, TableOffset, TableWalk, LEAF_PMPTE_SPAN, LEAF_TABLE_SPAN,
    ROOT_TABLE_SPAN,
};
