//! The HPMP register file and permission checker (§4.2).
//!
//! HPMP keeps PMP's 16 (`addr`, `config`) entry pairs and its static
//! priority: the lowest-numbered entry covering any byte of an access
//! decides. Each entry is either
//!
//! * **segment mode** (`T = 0`): the config register's R/W/X is the
//!   effective permission for the whole region — a zero-memory-reference
//!   check; or
//! * **table mode** (`T = 1`): permissions come from a PMP Table whose root
//!   page (and depth, via the `Mode` field) is recorded in the *next*
//!   entry's address register; the checker walks the table, issuing the
//!   pmpte reads reported in [`CheckOutcome::refs`].
//!
//! An entry whose predecessor is in table mode is a table-pointer register
//! and never participates in address matching. The last entry cannot be in
//! table mode (it has no successor to hold the pointer).

use hpmp_memsim::{AccessKind, Perms, PhysAddr, PrivMode, WordStore};
use hpmp_trace::PmptwOutcome;

use crate::pmp::{napot_decode, napot_encode, AddressMode, PmpConfig, PmpRegion};
use crate::ptw_cache::PmptwCache;
use crate::table::{self, LeafPmpte, PmptRef, RootPmpte, TableLevels, TableOffset};

/// Number of HPMP entries in the prototype ("our prototype supports 16
/// entries").
pub const HPMP_ENTRIES: usize = 16;

/// Entry count with the ePMP extension (§4.3: "future RISC-V processors
/// will support 64 PMP entries with the ePMP extension. With 64 entries, a
/// CPU can use 2-level tables to manage 512GB of memory").
pub const EPMP_ENTRIES: usize = 64;

/// Encodes a table pointer for the HPMP address register (Figure 6-b):
/// `Mode` in bits 63:62, PPN in bits 43:0.
pub fn table_pointer_encode(root: PhysAddr, levels: TableLevels) -> u64 {
    (levels.to_mode_bits() << 62) | (root.page_number() & ((1 << 44) - 1))
}

/// Decodes a table-pointer address register into `(root, levels)`; `None`
/// for the reserved `Mode` encoding.
pub fn table_pointer_decode(reg: u64) -> Option<(PhysAddr, TableLevels)> {
    let levels = TableLevels::from_mode_bits(reg >> 62)?;
    Some((PhysAddr::new((reg & ((1 << 44) - 1)) << 12), levels))
}

/// Error from register-file configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HpmpError {
    /// Entry index out of range.
    BadIndex(usize),
    /// The last entry cannot be in table mode.
    LastEntryTableMode,
    /// The entry (or its pointer slot) is locked.
    Locked(usize),
    /// Region cannot be encoded (not NAPOT-representable).
    BadRegion,
    /// The region exceeds the reach of the configured table depth.
    RegionTooLarge,
    /// The successor entry is in use as a matching entry.
    PointerSlotBusy(usize),
    /// Entry `idx` holds an encoding a legal WARL write could never have
    /// produced (corrupted register state, reserved table-pointer mode, or
    /// table mode on the last entry).
    MalformedEntry(usize),
}

impl std::fmt::Display for HpmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HpmpError::BadIndex(i) => write!(f, "HPMP entry index {i} out of range"),
            HpmpError::LastEntryTableMode => f.write_str("last HPMP entry cannot be in table mode"),
            HpmpError::Locked(i) => write!(f, "HPMP entry {i} is locked"),
            HpmpError::BadRegion => f.write_str("region is not NAPOT-encodable"),
            HpmpError::RegionTooLarge => f.write_str("region exceeds PMP-table reach"),
            HpmpError::PointerSlotBusy(i) => {
                write!(f, "entry {i} needed as table pointer but is active")
            }
            HpmpError::MalformedEntry(i) => {
                write!(f, "HPMP entry {i} holds a malformed encoding")
            }
        }
    }
}

impl std::error::Error for HpmpError {}

/// Outcome of one HPMP permission check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Whether the access is permitted.
    pub allowed: bool,
    /// The effective permission found (empty when no entry matched).
    pub perms: Perms,
    /// Index of the entry that decided, if any.
    pub matched_entry: Option<usize>,
    /// pmpte memory references performed by the PMP Table walker (empty in
    /// segment mode or on a PMPTW-Cache leaf hit).
    pub refs: Vec<PmptRef>,
    /// How the PMPTW-Cache resolved this check: `None` when no PMP Table
    /// walk happened at all (segment mode, M-mode bypass, no match),
    /// `Bypass` when a table walk ran with the cache disabled or at a
    /// depth it does not cover.
    pub pmptw: Option<PmptwOutcome>,
    /// `true` if the check decoded a malformed encoding — a corrupt pmpte,
    /// a reserved table-pointer mode, a corrupt config register — and
    /// therefore failed closed (`allowed` is then always `false`).
    pub malformed: bool,
}

impl CheckOutcome {
    fn denied() -> CheckOutcome {
        CheckOutcome {
            allowed: false,
            perms: Perms::NONE,
            matched_entry: None,
            refs: Vec::new(),
            pmptw: None,
            malformed: false,
        }
    }

    fn denied_malformed(entry: usize) -> CheckOutcome {
        CheckOutcome {
            matched_entry: Some(entry),
            malformed: true,
            ..CheckOutcome::denied()
        }
    }
}

/// The HPMP register file (16 entries in the prototype; up to 64 with the
/// ePMP extension via [`HpmpRegFile::with_entries`]).
///
/// ```
/// use hpmp_core::{HpmpRegFile, PmpRegion, PmptwCache};
/// use hpmp_memsim::{AccessKind, Perms, PhysAddr, PhysMem, PrivMode};
///
/// let mut regs = HpmpRegFile::new();
/// regs.configure_segment(0, PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000_0000),
///                        Perms::RW).unwrap();
/// let mem = PhysMem::new();
/// let mut cache = PmptwCache::disabled();
/// let out = regs.check(&mem, &mut cache, PhysAddr::new(0x8080_0000),
///                      AccessKind::Read, PrivMode::Supervisor);
/// assert!(out.allowed);
/// assert!(out.refs.is_empty()); // segment mode: zero memory references
/// ```
#[derive(Clone, Debug)]
pub struct HpmpRegFile {
    addr: Vec<u64>,
    cfg: Vec<PmpConfig>,
    /// CSR writes performed (the monitor's domain-switch cost metric).
    csr_writes: u64,
    /// Bumped on *every* register mutation — WARL writes, forced restores
    /// and fault-injected corruption alike — so a cached [`EntryPlan`]
    /// knows when its pre-decoded view of the file is stale. Unlike
    /// `csr_writes` this is not an architectural cost metric and is never
    /// reset.
    generation: u64,
}

impl Default for HpmpRegFile {
    fn default() -> HpmpRegFile {
        HpmpRegFile::new()
    }
}

impl HpmpRegFile {
    /// Creates the prototype's 16-entry register file with every entry off.
    pub fn new() -> HpmpRegFile {
        HpmpRegFile::with_entries(HPMP_ENTRIES)
    }

    /// Creates a register file with `entries` entries (16 for the
    /// prototype, [`EPMP_ENTRIES`] for the ePMP variant).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not in `2..=64` — an HPMP file needs at least
    /// one matching entry plus one pointer slot, and the ePMP ceiling is 64.
    pub fn with_entries(entries: usize) -> HpmpRegFile {
        assert!(
            (2..=EPMP_ENTRIES).contains(&entries),
            "HPMP supports 2..=64 entries"
        );
        HpmpRegFile {
            addr: vec![0; entries],
            cfg: vec![PmpConfig::default(); entries],
            csr_writes: 0,
            generation: 0,
        }
    }

    /// Mutation stamp for plan caching: changes whenever any register
    /// changes (including forced restores and injected corruption). A
    /// cached [`EntryPlan`] is valid exactly while this value matches
    /// [`EntryPlan::generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of entries in this register file.
    pub fn len(&self) -> usize {
        self.addr.len()
    }

    /// True if the file has no entries (never: construction requires ≥ 2).
    pub fn is_empty(&self) -> bool {
        self.addr.is_empty()
    }

    /// Raw read of an address register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn addr_reg(&self, idx: usize) -> u64 {
        self.addr[idx]
    }

    /// Raw read of a config register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn cfg_reg(&self, idx: usize) -> PmpConfig {
        self.cfg[idx]
    }

    /// Number of CSR writes performed since construction (or
    /// [`HpmpRegFile::reset_csr_writes`]).
    pub fn csr_writes(&self) -> u64 {
        self.csr_writes
    }

    /// Clears the CSR-write counter.
    pub fn reset_csr_writes(&mut self) {
        self.csr_writes = 0;
    }

    /// Raw WARL write of an address register (M-mode only, enforced by the
    /// caller holding `&mut self`).
    ///
    /// # Errors
    ///
    /// Fails if the entry is locked or out of range.
    pub fn write_addr(&mut self, idx: usize, value: u64) -> Result<(), HpmpError> {
        if idx >= self.len() {
            return Err(HpmpError::BadIndex(idx));
        }
        if self.cfg[idx].locked() {
            return Err(HpmpError::Locked(idx));
        }
        self.addr[idx] = value;
        self.csr_writes += 1;
        self.generation += 1;
        Ok(())
    }

    /// Raw WARL write of a config register.
    ///
    /// # Errors
    ///
    /// Fails if the entry is locked, out of range, or sets table mode on the
    /// last entry.
    pub fn write_cfg(&mut self, idx: usize, cfg: PmpConfig) -> Result<(), HpmpError> {
        if idx >= self.len() {
            return Err(HpmpError::BadIndex(idx));
        }
        if self.cfg[idx].locked() {
            return Err(HpmpError::Locked(idx));
        }
        if cfg.table_mode() && idx == self.len() - 1 {
            return Err(HpmpError::LastEntryTableMode);
        }
        self.cfg[idx] = cfg;
        self.csr_writes += 1;
        self.generation += 1;
        Ok(())
    }

    /// Restores an entry to known-good register values, ignoring the lock
    /// bit — the monitor's corruption-recovery path. A physically corrupted
    /// config byte can have a spurious `L` set, which would wedge the
    /// ordinary WARL writes; recovery must be able to overwrite it anyway.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn force_restore(&mut self, idx: usize, addr: u64, cfg: PmpConfig) {
        self.addr[idx] = addr;
        self.cfg[idx] = cfg;
        self.csr_writes += 2;
        self.generation += 1;
    }

    /// Configures entry `idx` as a segment covering `region` with `perms`.
    ///
    /// # Errors
    ///
    /// Fails if the region is not NAPOT-encodable or the entry is locked.
    pub fn configure_segment(
        &mut self,
        idx: usize,
        region: PmpRegion,
        perms: Perms,
    ) -> Result<(), HpmpError> {
        if !region.is_napot() {
            return Err(HpmpError::BadRegion);
        }
        self.write_addr(idx, napot_encode(region.base, region.size))?;
        self.write_cfg(idx, PmpConfig::new(perms, AddressMode::Napot))
    }

    /// Configures entry `idx` in table mode covering `region`, with the PMP
    /// Table rooted at `root` (depth `levels`). Entry `idx + 1` becomes the
    /// table-pointer register.
    ///
    /// # Errors
    ///
    /// Fails for the last entry, non-NAPOT regions, regions beyond the
    /// table's reach, or locked entries.
    pub fn configure_table(
        &mut self,
        idx: usize,
        region: PmpRegion,
        root: PhysAddr,
        levels: TableLevels,
    ) -> Result<(), HpmpError> {
        if idx >= self.len() - 1 {
            return Err(HpmpError::LastEntryTableMode);
        }
        if !region.is_napot() {
            return Err(HpmpError::BadRegion);
        }
        if region.size > levels.reach() {
            return Err(HpmpError::RegionTooLarge);
        }
        self.write_addr(idx, napot_encode(region.base, region.size))?;
        self.write_cfg(
            idx,
            PmpConfig::new(Perms::NONE, AddressMode::Napot).with_table_mode(true),
        )?;
        self.write_addr(idx + 1, table_pointer_encode(root, levels))?;
        // The pointer slot's own config must not match anything.
        self.write_cfg(idx + 1, PmpConfig::new(Perms::NONE, AddressMode::Off))
    }

    /// Disables entry `idx` (and its pointer slot if it was in table mode).
    ///
    /// # Errors
    ///
    /// Fails if the entry is locked or out of range.
    pub fn disable(&mut self, idx: usize) -> Result<(), HpmpError> {
        if idx >= self.len() {
            return Err(HpmpError::BadIndex(idx));
        }
        let was_table = self.cfg[idx].table_mode();
        self.write_cfg(idx, PmpConfig::new(Perms::NONE, AddressMode::Off))?;
        if was_table {
            self.write_addr(idx + 1, 0)?;
        }
        Ok(())
    }

    /// Switches an existing entry between segment and table interpretation
    /// by flipping only the `T` bit — the paper's "easily switch any entry
    /// between segment and table modes by changing T bit".
    ///
    /// # Errors
    ///
    /// Fails on locked entries or table mode in the last entry.
    pub fn set_table_mode(&mut self, idx: usize, table: bool) -> Result<(), HpmpError> {
        if idx >= self.len() {
            return Err(HpmpError::BadIndex(idx));
        }
        let cfg = self.cfg[idx].with_table_mode(table);
        self.write_cfg(idx, cfg)
    }

    /// The region matched by entry `idx`, if it is active and not a pointer
    /// slot.
    pub fn entry_region(&self, idx: usize) -> Option<PmpRegion> {
        if idx >= self.len() || self.is_pointer_slot(idx) {
            return None;
        }
        match self.cfg[idx].address_mode() {
            AddressMode::Off => None,
            AddressMode::Napot => {
                let (base, size) = napot_decode(self.addr[idx]);
                Some(PmpRegion::new(base, size))
            }
            AddressMode::Na4 => Some(PmpRegion::new(PhysAddr::new(self.addr[idx] << 2), 4)),
            AddressMode::Tor => {
                let top = self.addr[idx] << 2;
                let bottom = if idx == 0 { 0 } else { self.addr[idx - 1] << 2 };
                (top > bottom).then(|| PmpRegion::new(PhysAddr::new(bottom), top - bottom))
            }
        }
    }

    /// True if entry `idx` is consumed as a table-pointer register by its
    /// predecessor.
    pub fn is_pointer_slot(&self, idx: usize) -> bool {
        idx > 0
            && self.cfg[idx - 1].table_mode()
            && self.cfg[idx - 1].address_mode() != AddressMode::Off
    }

    /// Performs the HPMP permission check for one physical access.
    ///
    /// M-mode accesses bypass HPMP unless the matching entry is locked, as
    /// in standard PMP. The pmpte reads performed by the table walker are
    /// returned in [`CheckOutcome::refs`]; the caller charges them to the
    /// cache hierarchy.
    pub fn check(
        &self,
        mem: &dyn WordStore,
        cache: &mut PmptwCache,
        addr: PhysAddr,
        kind: AccessKind,
        mode: PrivMode,
    ) -> CheckOutcome {
        for idx in 0..self.len() {
            if self.is_pointer_slot(idx) {
                continue;
            }
            let Some(region) = self.entry_region(idx) else {
                continue;
            };
            if !region.contains(addr) {
                continue;
            }
            // Lowest-numbered matching entry decides.
            let cfg = self.cfg[idx];
            if cfg.is_malformed() {
                // A legal WARL write can never set the reserved bit; this is
                // physically corrupted register state. Fail closed.
                return CheckOutcome::denied_malformed(idx);
            }
            if mode == PrivMode::Machine && !cfg.locked() {
                return CheckOutcome {
                    allowed: true,
                    perms: Perms::RWX,
                    matched_entry: Some(idx),
                    refs: Vec::new(),
                    pmptw: None,
                    malformed: false,
                };
            }
            if !cfg.table_mode() {
                let perms = cfg.perms();
                return CheckOutcome {
                    allowed: perms.allows(kind),
                    perms,
                    matched_entry: Some(idx),
                    refs: Vec::new(),
                    pmptw: None,
                    malformed: false,
                };
            }
            if idx == self.len() - 1 {
                // Table mode on the last entry has no pointer slot: only
                // register corruption can produce it. Fail closed.
                return CheckOutcome::denied_malformed(idx);
            }
            // Table mode: walk the PMP Table via the next entry's pointer.
            let Some((root, levels)) = table_pointer_decode(self.addr[idx + 1]) else {
                // The reserved `Mode` encoding: malformed pointer register.
                return CheckOutcome::denied_malformed(idx);
            };
            let offset = addr.offset_from(region.base);
            let (perms, refs, pmptw, malformed) =
                walk_with_cache(mem, cache, idx, root, levels, region.base, addr, offset);
            let perms = perms.unwrap_or(Perms::NONE);
            return CheckOutcome {
                allowed: perms.allows(kind),
                perms,
                matched_entry: Some(idx),
                refs,
                pmptw: Some(pmptw),
                malformed,
            };
        }
        // No entry matched: M-mode has default full access, S/U none.
        if mode == PrivMode::Machine {
            CheckOutcome {
                allowed: true,
                perms: Perms::RWX,
                matched_entry: None,
                refs: Vec::new(),
                pmptw: None,
                malformed: false,
            }
        } else {
            CheckOutcome::denied()
        }
    }

    /// Validates every entry against the WARL invariants a legal
    /// configuration respects, returning the first violation: a reserved
    /// config bit, table mode on the last entry, or a reserved
    /// table-pointer `Mode`. The monitor scrubs with this after suspected
    /// register corruption.
    pub fn validate(&self) -> Result<(), HpmpError> {
        for idx in 0..self.len() {
            let cfg = self.cfg[idx];
            if cfg.is_malformed() {
                return Err(HpmpError::MalformedEntry(idx));
            }
            if cfg.table_mode() {
                if idx == self.len() - 1 {
                    return Err(HpmpError::MalformedEntry(idx));
                }
                if cfg.address_mode() != AddressMode::Off
                    && table_pointer_decode(self.addr[idx + 1]).is_none()
                {
                    return Err(HpmpError::MalformedEntry(idx + 1));
                }
            }
        }
        Ok(())
    }

    /// XORs `mask` into address register `idx`, bypassing every WARL and
    /// lock check — fault injection's model of a physical register upset.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn corrupt_addr(&mut self, idx: usize, mask: u64) {
        self.addr[idx] ^= mask;
        self.generation += 1;
    }

    /// XORs `mask` into config register `idx`, bypassing every WARL and
    /// lock check (including the reserved bit 6 and the last-entry T-bit
    /// rule) — fault injection's model of a physical register upset.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn corrupt_cfg(&mut self, idx: usize, mask: u8) {
        self.cfg[idx] = PmpConfig::from_raw_bits(self.cfg[idx].to_bits() ^ mask);
        self.generation += 1;
    }
}

/// Walks a table-mode entry's PMP Table, consulting the PMPTW-Cache.
#[allow(clippy::too_many_arguments)]
fn walk_with_cache(
    mem: &dyn WordStore,
    cache: &mut PmptwCache,
    entry_idx: usize,
    root: PhysAddr,
    levels: TableLevels,
    region_base: PhysAddr,
    addr: PhysAddr,
    offset: u64,
) -> (Option<Perms>, Vec<PmptRef>, PmptwOutcome, bool) {
    let cache_covers = !cache.is_disabled() && levels == TableLevels::Two;
    if cache_covers {
        // Fast path: leaf pmpte cached => zero references.
        if let Some(perms) = cache.lookup_leaf(entry_idx, offset) {
            return (
                (!perms.is_empty()).then_some(perms),
                Vec::new(),
                PmptwOutcome::LeafHit,
                false,
            );
        }
        // Root pmpte cached => one reference (the leaf read).
        if let Some(root_pmpte) = cache.lookup_root(entry_idx, offset) {
            if !root_pmpte.is_valid() {
                return (None, Vec::new(), PmptwOutcome::RootHit, false);
            }
            if root_pmpte.is_huge() {
                return (
                    Some(root_pmpte.perms()),
                    Vec::new(),
                    PmptwOutcome::RootHit,
                    false,
                );
            }
            let split = TableOffset::split(offset);
            let leaf_slot = PhysAddr::new(root_pmpte.leaf_table().raw() + split.off0 * 8);
            let leaf_ref = vec![PmptRef {
                is_root: false,
                addr: leaf_slot,
            }];
            let Ok(leaf) = LeafPmpte::decode(mem.read_u64(leaf_slot)) else {
                // Corrupt leaf behind a cached root: fail closed, uncached.
                return (None, leaf_ref, PmptwOutcome::RootHit, true);
            };
            cache.insert_leaf(entry_idx, offset, leaf);
            let perms = leaf.perm(split.page_index);
            return (
                (!perms.is_empty()).then_some(perms),
                leaf_ref,
                PmptwOutcome::RootHit,
                false,
            );
        }
        cache.record_miss();
    }
    let walk = table::walk_from_root(mem, root, levels, region_base, addr, offset);
    // Refill the cache from the full walk — but never cache a malformed
    // walk's entries: a corrupt pmpte must stay visible to every re-check.
    if cache_covers && !walk.malformed {
        for r in &walk.refs {
            if r.is_root {
                cache.insert_root(
                    entry_idx,
                    offset,
                    RootPmpte::from_bits(mem.read_u64(r.addr)),
                );
            } else {
                cache.insert_leaf(
                    entry_idx,
                    offset,
                    LeafPmpte::from_bits(mem.read_u64(r.addr)),
                );
            }
        }
    }
    let outcome = if cache_covers {
        PmptwOutcome::Miss
    } else {
        PmptwOutcome::Bypass
    };
    (walk.perms, walk.refs, outcome, walk.malformed)
}

/// How a planned entry decides an access that its region matched, with
/// everything decodable ahead of time already decoded.
#[derive(Clone, Copy, Debug)]
enum PlannedKind {
    /// Config register holds a malformed encoding: fail closed.
    Malformed,
    /// Segment mode: the pre-decoded static permission decides.
    Segment(Perms),
    /// Table mode with a well-formed pointer: walk from `root`.
    Table(PhysAddr, TableLevels),
    /// Table mode whose pointer cannot exist (last entry) or decodes to
    /// the reserved `Mode`: fail closed (after the M-mode bypass, exactly
    /// as the architectural checker orders it).
    BadTablePointer,
}

/// One active, pre-decoded HPMP entry in priority order.
#[derive(Clone, Copy, Debug)]
struct PlannedEntry {
    /// Architectural entry index (for `matched_entry` and cache tags).
    idx: usize,
    /// The matched region, already decoded from NAPOT/NA4/TOR encoding.
    region: PmpRegion,
    /// Lock bit (controls the M-mode bypass).
    locked: bool,
    kind: PlannedKind,
}

/// A batched, pre-decoded permission checker over an [`HpmpRegFile`].
///
/// [`HpmpRegFile::check`] re-decodes every entry — address mode, NAPOT
/// mask, pointer-slot skipping, table-pointer fields — on every single
/// check, even though the register file only changes on CSR writes. A
/// plan performs that decode once: it keeps only the active, matchable
/// entries in priority order with their regions and table roots already
/// extracted, so the per-access work is one pass over the matching
/// entries (a bounds compare and a dispatch each). Register mutations are
/// detected through [`HpmpRegFile::generation`]; a stale plan must be
/// rebuilt with [`HpmpRegFile::plan`] before use.
///
/// [`EntryPlan::check`] is observably identical to
/// [`HpmpRegFile::check`] — same outcome, same pmpte references, same
/// PMPTW-Cache effects — which the equivalence property test pins.
#[derive(Clone, Debug, Default)]
pub struct EntryPlan {
    generation: u64,
    entries: Vec<PlannedEntry>,
}

impl HpmpRegFile {
    /// Pre-decodes the register file into an [`EntryPlan`] stamped with
    /// the current [`HpmpRegFile::generation`].
    pub fn plan(&self) -> EntryPlan {
        let mut entries = Vec::new();
        for idx in 0..self.len() {
            if self.is_pointer_slot(idx) {
                continue;
            }
            let Some(region) = self.entry_region(idx) else {
                continue;
            };
            let cfg = self.cfg[idx];
            let kind = if cfg.is_malformed() {
                PlannedKind::Malformed
            } else if !cfg.table_mode() {
                PlannedKind::Segment(cfg.perms())
            } else if idx == self.len() - 1 {
                PlannedKind::BadTablePointer
            } else {
                match table_pointer_decode(self.addr[idx + 1]) {
                    Some((root, levels)) => PlannedKind::Table(root, levels),
                    None => PlannedKind::BadTablePointer,
                }
            };
            entries.push(PlannedEntry {
                idx,
                region,
                locked: cfg.locked(),
                kind,
            });
        }
        EntryPlan {
            generation: self.generation,
            entries,
        }
    }
}

impl EntryPlan {
    /// The [`HpmpRegFile::generation`] this plan was built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// As [`HpmpRegFile::check`], over the pre-decoded entries.
    pub fn check(
        &self,
        mem: &dyn WordStore,
        cache: &mut PmptwCache,
        addr: PhysAddr,
        kind: AccessKind,
        mode: PrivMode,
    ) -> CheckOutcome {
        for entry in &self.entries {
            if !entry.region.contains(addr) {
                continue;
            }
            // Lowest-numbered matching entry decides; the dispatch order
            // (malformed, M-mode bypass, then mode) mirrors the
            // architectural checker exactly.
            if matches!(entry.kind, PlannedKind::Malformed) {
                return CheckOutcome::denied_malformed(entry.idx);
            }
            if mode == PrivMode::Machine && !entry.locked {
                return CheckOutcome {
                    allowed: true,
                    perms: Perms::RWX,
                    matched_entry: Some(entry.idx),
                    refs: Vec::new(),
                    pmptw: None,
                    malformed: false,
                };
            }
            return match entry.kind {
                PlannedKind::Malformed => unreachable!("handled above"),
                PlannedKind::Segment(perms) => CheckOutcome {
                    allowed: perms.allows(kind),
                    perms,
                    matched_entry: Some(entry.idx),
                    refs: Vec::new(),
                    pmptw: None,
                    malformed: false,
                },
                PlannedKind::BadTablePointer => CheckOutcome::denied_malformed(entry.idx),
                PlannedKind::Table(root, levels) => {
                    let offset = addr.offset_from(entry.region.base);
                    let (perms, refs, pmptw, malformed) = walk_with_cache(
                        mem,
                        cache,
                        entry.idx,
                        root,
                        levels,
                        entry.region.base,
                        addr,
                        offset,
                    );
                    let perms = perms.unwrap_or(Perms::NONE);
                    CheckOutcome {
                        allowed: perms.allows(kind),
                        perms,
                        matched_entry: Some(entry.idx),
                        refs,
                        pmptw: Some(pmptw),
                        malformed,
                    }
                }
            };
        }
        if mode == PrivMode::Machine {
            CheckOutcome {
                allowed: true,
                perms: Perms::RWX,
                matched_entry: None,
                refs: Vec::new(),
                pmptw: None,
                malformed: false,
            }
        } else {
            CheckOutcome::denied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptw_cache::PmptwCacheConfig;
    use crate::table::PmpTable;
    use hpmp_memsim::{FrameAllocator, PhysMem, PAGE_SIZE};

    const S: PrivMode = PrivMode::Supervisor;

    fn table_fixture() -> (PhysMem, PmpTable, HpmpRegFile) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 64 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 28);
        let mut table = PmpTable::new(region, &mut mem, &mut frames).unwrap();
        table
            .set_page_perm(&mut mem, &mut frames, PhysAddr::new(0x9000_2000), Perms::RW)
            .unwrap();
        let mut regs = HpmpRegFile::new();
        regs.configure_table(0, region, table.root(), TableLevels::Two)
            .unwrap();
        (mem, table, regs)
    }

    /// The pre-decoded [`EntryPlan`] must be observably indistinguishable
    /// from the architectural checker: same outcome, same pmpte refs,
    /// same PMPTW-Cache evolution — across segment/table/malformed
    /// entries, all access kinds and privilege modes, and through
    /// fault-injected register corruption (which only the generation
    /// stamp can make the plan notice).
    #[test]
    fn plan_check_matches_reference_check_exactly() {
        use hpmp_memsim::SplitMix64;

        let (mem, _table, mut regs) = table_fixture();
        regs.configure_segment(
            2,
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000_0000),
            Perms::RW,
        )
        .unwrap();
        regs.configure_segment(
            3,
            PmpRegion::new(PhysAddr::new(0x4000_0000), 0x1000),
            Perms::RX,
        )
        .unwrap();

        let mut rng = SplitMix64::seed_from_u64(0xE9_7A5);
        let mut ref_cache = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        let mut plan_cache = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        let mut plan = regs.plan();
        let kinds = [AccessKind::Read, AccessKind::Write, AccessKind::Fetch];
        let modes = [PrivMode::User, PrivMode::Supervisor, PrivMode::Machine];
        for step in 0..4096u64 {
            if step % 97 == 0 {
                let idx = rng.gen_range(0..regs.len() as u64) as usize;
                regs.corrupt_cfg(idx, rng.gen_range(1..256) as u8);
            }
            if step % 193 == 0 {
                let idx = rng.gen_range(0..regs.len() as u64) as usize;
                regs.corrupt_addr(idx, rng.next_u64());
            }
            if step % 611 == 0 {
                // Recover: scrub back to a known-good file, as the monitor
                // does, exercising force_restore invalidation too.
                let (m, _t, fresh) = table_fixture();
                drop(m);
                for idx in 0..regs.len() {
                    regs.force_restore(idx, fresh.addr_reg(idx), fresh.cfg_reg(idx));
                }
                regs.configure_segment(
                    2,
                    PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000_0000),
                    Perms::RW,
                )
                .unwrap();
            }
            if plan.generation() != regs.generation() {
                plan = regs.plan();
            }
            let addr = match step % 4 {
                0 => PhysAddr::new(0x9000_0000 + (rng.gen_range(0..1 << 16) << 12)),
                1 => PhysAddr::new(0x8000_0000 + (rng.gen_range(0..4096) << 12)),
                2 => PhysAddr::new(0x4000_0000 + rng.gen_range(0..0x2000 / 8) * 8),
                _ => PhysAddr::new(rng.gen_range(0..1 << 28) << 8),
            };
            let kind = kinds[(rng.next_u64() % 3) as usize];
            let mode = modes[(rng.next_u64() % 3) as usize];
            let reference = regs.check(&mem, &mut ref_cache, addr, kind, mode);
            let planned = plan.check(&mem, &mut plan_cache, addr, kind, mode);
            assert_eq!(reference, planned, "divergence at step {step} for {addr}");
        }
    }

    #[test]
    fn stale_plan_is_detected_by_generation() {
        let mut regs = HpmpRegFile::new();
        regs.configure_segment(
            0,
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000),
            Perms::RW,
        )
        .unwrap();
        let plan = regs.plan();
        assert_eq!(plan.generation(), regs.generation());
        // Corruption bypasses the WARL counters but must still stamp.
        regs.corrupt_cfg(0, 0x01);
        assert_ne!(plan.generation(), regs.generation());
        regs.plan(); // rebuilding resynchronizes
        assert_eq!(regs.plan().generation(), regs.generation());
    }

    #[test]
    fn segment_mode_zero_refs() {
        let mut regs = HpmpRegFile::new();
        regs.configure_segment(
            0,
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000),
            Perms::RX,
        )
        .unwrap();
        let mem = PhysMem::new();
        let mut cache = PmptwCache::disabled();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x8000_0800),
            AccessKind::Read,
            S,
        );
        assert!(out.allowed);
        assert!(out.refs.is_empty());
        assert_eq!(out.matched_entry, Some(0));
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x8000_0800),
            AccessKind::Write,
            S,
        );
        assert!(!out.allowed);
    }

    #[test]
    fn no_match_denies_s_mode_allows_m_mode() {
        let regs = HpmpRegFile::new();
        let mem = PhysMem::new();
        let mut cache = PmptwCache::disabled();
        let addr = PhysAddr::new(0x1234_5000);
        assert!(
            !regs
                .check(&mem, &mut cache, addr, AccessKind::Read, S)
                .allowed
        );
        assert!(
            regs.check(&mem, &mut cache, addr, AccessKind::Read, PrivMode::Machine)
                .allowed
        );
    }

    #[test]
    fn table_mode_issues_two_refs() {
        let (mem, _table, regs) = table_fixture();
        let mut cache = PmptwCache::disabled();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9000_2abc),
            AccessKind::Read,
            S,
        );
        assert!(out.allowed);
        assert_eq!(out.refs.len(), 2);
        assert_eq!(out.pmptw, Some(PmptwOutcome::Bypass)); // cache disabled
                                                           // A page the table never granted: denied after the walk.
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9000_3000),
            AccessKind::Read,
            S,
        );
        assert!(!out.allowed);
    }

    #[test]
    fn priority_lowest_entry_wins() {
        let (mut mem, _table, mut regs) = table_fixture();
        // Entry 0/1 already hold the table. Put a *higher-priority* segment
        // in front by reconfiguring: move table to 2, segment at 0.
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 28);
        let root = table_pointer_decode(regs.addr_reg(1)).unwrap().0;
        let mut regs2 = HpmpRegFile::new();
        regs2
            .configure_segment(
                0,
                PmpRegion::new(PhysAddr::new(0x9000_0000), 0x1000_0000),
                Perms::RWX,
            )
            .unwrap();
        regs2
            .configure_table(2, region, root, TableLevels::Two)
            .unwrap();
        regs = regs2;
        let mut cache = PmptwCache::disabled();
        // Segment (entry 0) matches first: zero refs, allowed even where the
        // table would deny.
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9000_3000),
            AccessKind::Write,
            S,
        );
        assert!(out.allowed);
        assert_eq!(out.matched_entry, Some(0));
        assert!(out.refs.is_empty());
        let _ = &mut mem;
    }

    #[test]
    fn pointer_slot_is_skipped_in_matching() {
        let (mem, _table, regs) = table_fixture();
        assert!(regs.is_pointer_slot(1));
        // Entry 1's addr register holds a PPN that could accidentally match;
        // verify it never decides an access.
        let mut cache = PmptwCache::disabled();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9000_2000),
            AccessKind::Read,
            S,
        );
        assert_eq!(out.matched_entry, Some(0));
    }

    #[test]
    fn last_entry_rejects_table_mode() {
        let mut regs = HpmpRegFile::new();
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 28);
        assert_eq!(
            regs.configure_table(15, region, PhysAddr::new(0x1000), TableLevels::Two),
            Err(HpmpError::LastEntryTableMode)
        );
        assert_eq!(
            regs.write_cfg(
                15,
                PmpConfig::new(Perms::NONE, AddressMode::Off).with_table_mode(true)
            ),
            Err(HpmpError::LastEntryTableMode)
        );
    }

    #[test]
    fn locked_entry_rejects_writes_and_constrains_m_mode() {
        let mut regs = HpmpRegFile::new();
        let region = PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000);
        regs.configure_segment(0, region, Perms::READ).unwrap();
        let locked = regs.cfg_reg(0).with_locked();
        regs.write_cfg(0, locked).unwrap();
        assert_eq!(regs.write_addr(0, 0), Err(HpmpError::Locked(0)));
        let mem = PhysMem::new();
        let mut cache = PmptwCache::disabled();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x8000_0000),
            AccessKind::Write,
            PrivMode::Machine,
        );
        assert!(!out.allowed); // locked entry constrains M-mode too
    }

    #[test]
    fn t_bit_flip_switches_modes() {
        let (mem, _table, mut regs) = table_fixture();
        let mut cache = PmptwCache::disabled();
        // Flip entry 0 to segment mode: permission now comes from the config
        // register (NONE), so the access is denied without any refs.
        regs.set_table_mode(0, false).unwrap();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9000_2000),
            AccessKind::Read,
            S,
        );
        assert!(!out.allowed);
        assert!(out.refs.is_empty());
        // Flip back: table checked again.
        regs.set_table_mode(0, true).unwrap();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9000_2000),
            AccessKind::Read,
            S,
        );
        assert!(out.allowed);
        assert_eq!(out.refs.len(), 2);
    }

    #[test]
    fn pmptw_cache_removes_refs() {
        let (mem, _table, regs) = table_fixture();
        let mut cache = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        let addr = PhysAddr::new(0x9000_2abc);
        let cold = regs.check(&mem, &mut cache, addr, AccessKind::Read, S);
        assert_eq!(cold.refs.len(), 2);
        assert_eq!(cold.pmptw, Some(PmptwOutcome::Miss));
        let warm = regs.check(&mem, &mut cache, addr, AccessKind::Read, S);
        assert!(warm.allowed);
        assert_eq!(warm.refs.len(), 0); // leaf pmpte cached
        assert_eq!(warm.pmptw, Some(PmptwOutcome::LeafHit));
        // Same 32 MiB slice, different 64 KiB span: root hit, one ref.
        let near = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9001_2000),
            AccessKind::Read,
            S,
        );
        assert_eq!(near.refs.len(), 1);
        assert_eq!(near.pmptw, Some(PmptwOutcome::RootHit));
    }

    #[test]
    fn corrupt_config_register_fails_closed() {
        let mut regs = HpmpRegFile::new();
        regs.configure_segment(
            0,
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000),
            Perms::RWX,
        )
        .unwrap();
        assert!(regs.validate().is_ok());
        // Flip the reserved bit: a state no WARL write can reach.
        regs.corrupt_cfg(0, 1 << 6);
        assert_eq!(regs.validate(), Err(HpmpError::MalformedEntry(0)));
        let mem = PhysMem::new();
        let mut cache = PmptwCache::disabled();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x8000_0800),
            AccessKind::Read,
            S,
        );
        assert!(!out.allowed && out.malformed);
        // Flipping it back restores the entry.
        regs.corrupt_cfg(0, 1 << 6);
        assert!(regs.validate().is_ok());
    }

    #[test]
    fn table_mode_on_last_entry_fails_closed() {
        let mut regs = HpmpRegFile::new();
        regs.configure_segment(
            15,
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000),
            Perms::RWX,
        )
        .unwrap();
        regs.corrupt_cfg(15, 1 << 5); // force the T bit the WARL path forbids
        assert_eq!(regs.validate(), Err(HpmpError::MalformedEntry(15)));
        let mem = PhysMem::new();
        let mut cache = PmptwCache::disabled();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x8000_0800),
            AccessKind::Read,
            S,
        );
        assert!(
            !out.allowed && out.malformed,
            "must not index past the file"
        );
    }

    #[test]
    fn reserved_pointer_mode_fails_closed() {
        let (mem, _table, mut regs) = table_fixture();
        // Corrupt the pointer register's Mode field to the reserved encoding.
        let mode = regs.addr_reg(1) >> 62;
        regs.corrupt_addr(1, (mode ^ 3) << 62);
        assert_eq!(regs.addr_reg(1) >> 62, 3);
        assert_eq!(regs.validate(), Err(HpmpError::MalformedEntry(1)));
        let mut cache = PmptwCache::disabled();
        let out = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9000_2000),
            AccessKind::Read,
            S,
        );
        assert!(!out.allowed && out.malformed);
    }

    #[test]
    fn corrupt_pmpte_fails_closed_even_behind_cached_root() {
        let (mut mem, table, regs) = table_fixture();
        let mut cache = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
        let addr = PhysAddr::new(0x9000_2abc);
        let cold = regs.check(&mem, &mut cache, addr, AccessKind::Read, S);
        assert!(cold.allowed);
        let leaf_slot = cold.refs[1].addr;
        // Corrupt the leaf pmpte in DRAM, then look at a *different* page of
        // the same 32 MiB slice so the root stays cached but the leaf is
        // re-read from memory.
        mem.write_u64(leaf_slot, mem.read_u64(leaf_slot) ^ (1 << 9));
        cache.flush_all();
        let warm = regs.check(&mem, &mut cache, addr, AccessKind::Read, S);
        assert!(!warm.allowed && warm.malformed, "uncached path");
        // Prime the root again via a clean sibling span, then hit the
        // corrupt leaf through the root-hit path.
        let sibling = regs.check(
            &mem,
            &mut cache,
            PhysAddr::new(0x9001_2000),
            AccessKind::Read,
            S,
        );
        assert!(!sibling.allowed); // unmapped sibling, but primes the root
        let via_root = regs.check(&mem, &mut cache, addr, AccessKind::Read, S);
        assert!(
            !via_root.allowed && via_root.malformed,
            "root-hit path must validate the leaf read"
        );
        let _ = table;
    }

    #[test]
    fn table_pointer_encoding_round_trip() {
        for levels in [TableLevels::One, TableLevels::Two, TableLevels::Three] {
            let reg = table_pointer_encode(PhysAddr::new(0x8_1234_5000), levels);
            let (root, decoded) = table_pointer_decode(reg).unwrap();
            assert_eq!(root, PhysAddr::new(0x8_1234_5000));
            assert_eq!(decoded, levels);
        }
        assert!(table_pointer_decode(3 << 62).is_none());
    }

    #[test]
    fn tor_region_matching() {
        let mut regs = HpmpRegFile::new();
        regs.write_addr(0, 0x8000_0000 >> 2).unwrap();
        regs.write_addr(1, 0x8001_0000 >> 2).unwrap();
        regs.write_cfg(1, PmpConfig::new(Perms::RW, AddressMode::Tor))
            .unwrap();
        let region = regs.entry_region(1).unwrap();
        assert_eq!(region.base, PhysAddr::new(0x8000_0000));
        assert_eq!(region.size, 0x1_0000);
    }

    #[test]
    fn epmp_file_sizes() {
        let small = HpmpRegFile::with_entries(2);
        assert_eq!(small.len(), 2);
        let big = HpmpRegFile::with_entries(64);
        assert_eq!(big.len(), 64);
        assert!(!big.is_empty());
        // Entry 63 exists; 64 does not.
        let mut big = big;
        assert!(big.write_addr(63, 1).is_ok());
        assert_eq!(big.write_addr(64, 1), Err(HpmpError::BadIndex(64)));
    }

    #[test]
    #[should_panic(expected = "2..=64")]
    fn oversized_file_rejected() {
        HpmpRegFile::with_entries(65);
    }

    #[test]
    fn unmatched_na4_entry() {
        let mut regs = HpmpRegFile::new();
        regs.write_addr(0, 0x8000_0000 >> 2).unwrap();
        regs.write_cfg(0, PmpConfig::new(Perms::READ, AddressMode::Na4))
            .unwrap();
        let region = regs.entry_region(0).unwrap();
        assert_eq!(region.size, 4);
        assert!(region.contains(PhysAddr::new(0x8000_0003)));
        assert!(!region.contains(PhysAddr::new(0x8000_0004)));
    }

    #[test]
    fn tor_with_inverted_bounds_is_inactive() {
        let mut regs = HpmpRegFile::new();
        regs.write_addr(0, 0x9000_0000 >> 2).unwrap();
        regs.write_addr(1, 0x8000_0000 >> 2).unwrap(); // top below bottom
        regs.write_cfg(1, PmpConfig::new(Perms::RW, AddressMode::Tor))
            .unwrap();
        assert_eq!(regs.entry_region(1), None);
    }

    #[test]
    fn csr_write_accounting() {
        let mut regs = HpmpRegFile::new();
        regs.configure_segment(
            0,
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000),
            Perms::RW,
        )
        .unwrap();
        assert_eq!(regs.csr_writes(), 2); // addr + cfg
        regs.reset_csr_writes();
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 28);
        regs.configure_table(2, region, PhysAddr::new(0x1000), TableLevels::Two)
            .unwrap();
        assert_eq!(regs.csr_writes(), 4); // addr+cfg for entry, addr+cfg for pointer
    }
}
