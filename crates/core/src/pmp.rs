//! RISC-V PMP register formats and address matching (§4.1).
//!
//! Standard PMP gives 16 entries, each an (`addr`, `config`) register pair.
//! The config byte holds `R W X` (bits 0–2), the address-matching mode `A`
//! (bits 3–4) and the lock bit `L` (bit 7). HPMP claims the previously
//! reserved bit 5 as the `T` (table-mode) bit — see Figure 6-a — which is
//! decoded here but given meaning in [`crate::HpmpRegFile`].

use hpmp_memsim::{Perms, PhysAddr};

/// PMP address-matching mode (the `A` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AddressMode {
    /// Entry disabled.
    Off,
    /// Top-of-range: region is `[prev.addr, this.addr)`.
    Tor,
    /// Naturally-aligned four-byte region.
    Na4,
    /// Naturally-aligned power-of-two region, size ≥ 8 bytes.
    Napot,
}

impl AddressMode {
    /// Decodes the 2-bit `A` field.
    pub const fn from_bits(bits: u8) -> AddressMode {
        match bits & 0b11 {
            0 => AddressMode::Off,
            1 => AddressMode::Tor,
            2 => AddressMode::Na4,
            _ => AddressMode::Napot,
        }
    }

    /// Encodes to the 2-bit `A` field.
    pub const fn to_bits(self) -> u8 {
        match self {
            AddressMode::Off => 0,
            AddressMode::Tor => 1,
            AddressMode::Na4 => 2,
            AddressMode::Napot => 3,
        }
    }
}

/// A decoded PMP/HPMP configuration byte (Figure 6-a).
///
/// ```
/// use hpmp_core::{AddressMode, PmpConfig};
/// use hpmp_memsim::Perms;
///
/// let cfg = PmpConfig::new(Perms::RW, AddressMode::Napot).with_table_mode(true);
/// let decoded = PmpConfig::from_bits(cfg.to_bits());
/// assert!(decoded.table_mode());
/// assert_eq!(decoded.perms(), Perms::RW);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PmpConfig {
    bits: u8,
}

impl PmpConfig {
    const T_BIT: u8 = 1 << 5;
    const L_BIT: u8 = 1 << 7;

    /// Builds a config with the given permissions and matching mode
    /// (T and L clear).
    pub const fn new(perms: Perms, mode: AddressMode) -> PmpConfig {
        PmpConfig {
            bits: perms.bits() | (mode.to_bits() << 3),
        }
    }

    /// Decodes a raw config byte. Bit 6 is reserved and reads as zero
    /// (WARL).
    pub const fn from_bits(bits: u8) -> PmpConfig {
        PmpConfig {
            bits: bits & !(1 << 6),
        }
    }

    /// Decodes a raw config byte **without** the WARL masking of the
    /// reserved bit — how fault injection plants physically corrupted
    /// register state that [`PmpConfig::is_malformed`] then flags.
    pub const fn from_raw_bits(bits: u8) -> PmpConfig {
        PmpConfig { bits }
    }

    /// True if the encoding could not have been produced by a legal WARL
    /// write (the reserved bit 6 reads non-zero).
    pub const fn is_malformed(self) -> bool {
        self.bits & (1 << 6) != 0
    }

    /// Raw byte encoding.
    pub const fn to_bits(self) -> u8 {
        self.bits
    }

    /// The R/W/X permission field. Ignored by hardware when
    /// [`PmpConfig::table_mode`] is set (the PMP Table supplies permissions).
    pub const fn perms(self) -> Perms {
        Perms::from_bits_truncate(self.bits)
    }

    /// The address-matching mode.
    pub const fn address_mode(self) -> AddressMode {
        AddressMode::from_bits(self.bits >> 3)
    }

    /// The HPMP `T` bit: entry is in table mode.
    pub const fn table_mode(self) -> bool {
        self.bits & Self::T_BIT != 0
    }

    /// The lock bit: entry also constrains M-mode and is write-protected.
    pub const fn locked(self) -> bool {
        self.bits & Self::L_BIT != 0
    }

    /// Returns a copy with the `T` bit set or cleared.
    pub const fn with_table_mode(self, table: bool) -> PmpConfig {
        if table {
            PmpConfig {
                bits: self.bits | Self::T_BIT,
            }
        } else {
            PmpConfig {
                bits: self.bits & !Self::T_BIT,
            }
        }
    }

    /// Returns a copy with the `L` bit set.
    pub const fn with_locked(self) -> PmpConfig {
        PmpConfig {
            bits: self.bits | Self::L_BIT,
        }
    }
}

/// Encodes `[base, base + size)` as a NAPOT `pmpaddr` value.
///
/// # Panics
///
/// Panics if `size` is not a power of two ≥ 8 or `base` is not aligned to
/// `size`.
pub fn napot_encode(base: PhysAddr, size: u64) -> u64 {
    assert!(
        size.is_power_of_two() && size >= 8,
        "NAPOT size must be a power of two >= 8"
    );
    assert!(base.is_aligned(size), "NAPOT base must be size-aligned");
    // pmpaddr = (base | (size/2 - 1)) >> 2, i.e. low bits 0111..1.
    (base.raw() | (size / 2 - 1)) >> 2
}

/// Decodes a NAPOT `pmpaddr` value into `(base, size)`.
pub fn napot_decode(pmpaddr: u64) -> (PhysAddr, u64) {
    let trailing = (!pmpaddr).trailing_zeros().min(61);
    let size = 8u64 << trailing;
    let base = (pmpaddr & !((1u64 << (trailing + 1)) - 1)) << 2;
    (PhysAddr::new(base), size)
}

/// A physical region as matched by a PMP entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PmpRegion {
    /// Inclusive base address.
    pub base: PhysAddr,
    /// Size in bytes.
    pub size: u64,
}

impl PmpRegion {
    /// Builds a region.
    pub const fn new(base: PhysAddr, size: u64) -> PmpRegion {
        PmpRegion { base, size }
    }

    /// Exclusive end address.
    pub const fn end(self) -> PhysAddr {
        PhysAddr::new(self.base.raw() + self.size)
    }

    /// True if `addr` lies inside the region.
    pub const fn contains(self, addr: PhysAddr) -> bool {
        addr.raw() >= self.base.raw() && addr.raw() < self.base.raw() + self.size
    }

    /// True if the region can be expressed as a single NAPOT entry.
    pub fn is_napot(self) -> bool {
        self.size.is_power_of_two() && self.size >= 8 && self.base.is_aligned(self.size)
    }
}

impl std::fmt::Display for PmpRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.base, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trip() {
        let cfg = PmpConfig::new(Perms::RX, AddressMode::Tor);
        assert_eq!(cfg.perms(), Perms::RX);
        assert_eq!(cfg.address_mode(), AddressMode::Tor);
        assert!(!cfg.table_mode());
        assert!(!cfg.locked());
        let cfg = cfg.with_table_mode(true).with_locked();
        let decoded = PmpConfig::from_bits(cfg.to_bits());
        assert!(decoded.table_mode());
        assert!(decoded.locked());
        assert_eq!(decoded.address_mode(), AddressMode::Tor);
    }

    #[test]
    fn t_bit_is_bit_5() {
        let cfg = PmpConfig::new(Perms::NONE, AddressMode::Off).with_table_mode(true);
        assert_eq!(cfg.to_bits() & 0b0010_0000, 0b0010_0000);
    }

    #[test]
    fn reserved_bit_reads_zero() {
        let cfg = PmpConfig::from_bits(0b0100_0000);
        assert_eq!(cfg.to_bits(), 0);
    }

    #[test]
    fn address_mode_codes() {
        for mode in [
            AddressMode::Off,
            AddressMode::Tor,
            AddressMode::Na4,
            AddressMode::Napot,
        ] {
            assert_eq!(AddressMode::from_bits(mode.to_bits()), mode);
        }
    }

    #[test]
    fn napot_round_trip() {
        for (base, size) in [
            (0x8000_0000u64, 0x1000u64),
            (0x0, 8),
            (0x4000_0000, 1 << 30),
            (0x8020_0000, 2 << 20),
        ] {
            let enc = napot_encode(PhysAddr::new(base), size);
            let (b, s) = napot_decode(enc);
            assert_eq!(
                (b.raw(), s),
                (base, size),
                "case base={base:#x} size={size:#x}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn napot_rejects_non_power_of_two() {
        napot_encode(PhysAddr::new(0), 24);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn napot_rejects_misaligned_base() {
        napot_encode(PhysAddr::new(0x1000), 0x2000);
    }

    #[test]
    fn region_containment() {
        let r = PmpRegion::new(PhysAddr::new(0x1000), 0x1000);
        assert!(r.contains(PhysAddr::new(0x1000)));
        assert!(r.contains(PhysAddr::new(0x1fff)));
        assert!(!r.contains(PhysAddr::new(0x2000)));
        assert!(!r.contains(PhysAddr::new(0xfff)));
        assert!(r.is_napot());
        assert!(!PmpRegion::new(PhysAddr::new(0x1000), 0x1800).is_napot());
        assert_eq!(r.to_string(), "[0x1000, 0x2000)");
    }
}
