//! Cross-hart shootdown plumbing: an inter-processor-interrupt fabric and
//! the cycle costs of delivering one.
//!
//! When the secure monitor changes a domain's holdings (grant, revoke,
//! teardown) or switches the scheduled domain, every *other* hart may hold
//! stale state in three places: its TLBs (permissions are inlined in TLB
//! entries under HPMP), its PMPTW-Cache, and — if the changed domain is
//! reflected in that hart's register image — the PMP/HPMP register file
//! itself. Real monitors (Penglai, Keystone, CoVE's TSM) close this window
//! by sending an IPI to each remote hart; the receiver traps to M-mode,
//! reprograms or fences, and acknowledges. The sender stalls until all
//! acknowledgements arrive, so the protocol is synchronous and the stale
//! window is zero *in the model* — fault campaigns re-open it deliberately
//! by suppressing delivery.
//!
//! This module carries only the bookkeeping and the cost constants; the
//! policy (who needs a reprogram vs. a mere fence) lives with the monitor,
//! which knows each hart's scheduled domain.

/// Cycle costs of the IPI path, calibrated against the same clock as
/// `hpmp-penglai`'s monitor-call costs (a ~1 GHz in-order core, as in the
/// paper's FPGA evaluation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShootdownCost {
    /// Sender-side cost of posting one IPI: a write to the remote hart's
    /// software-interrupt register through the interconnect (CLINT
    /// `msip`-style doorbell).
    pub ipi_post: u64,
    /// Interconnect flight time until the remote hart observes the
    /// interrupt and begins its trap. The sender's stall for one target is
    /// `ipi_post + ipi_latency +` the receiver's handler cost.
    pub ipi_latency: u64,
}

impl ShootdownCost {
    /// The default calibration: a doorbell write is an uncached store
    /// (~DRAM round trip is not needed — the CLINT is close), and delivery
    /// latency is dominated by the interconnect hop.
    pub const DEFAULT: ShootdownCost = ShootdownCost {
        ipi_post: 40,
        ipi_latency: 60,
    };
}

impl ShootdownCost {
    /// The sender's stall for one broadcast once every receiver has
    /// acknowledged: interconnect flight plus the slowest handler. (The
    /// per-target `ipi_post` writes are charged separately as they are
    /// issued.) Shared by both SMP backends so the synchronous
    /// interleaver and the mailbox/acknowledgement-barrier model charge
    /// identical cycles.
    pub fn sender_stall(&self, slowest_ack: u64) -> u64 {
        self.ipi_latency + slowest_ack
    }
}

impl Default for ShootdownCost {
    fn default() -> ShootdownCost {
        ShootdownCost::DEFAULT
    }
}

/// Cycle costs of relocating memory during segment compaction, calibrated
/// against the same clock as [`ShootdownCost`]. When the monitor runs out
/// of NAPOT-aligned free space it slides movable GMS regions downward to
/// merge the holes between them; each moved page is a 4 KiB M-mode memcpy
/// plus the cache traffic it drags along.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyCost {
    /// Fixed per-relocation setup: source/destination range checks and the
    /// copy-loop prologue.
    pub setup: u64,
    /// Cycles to copy one 4 KiB page (load/store pairs at cache-line
    /// granularity, ~16 bytes per cycle sustained).
    pub per_page: u64,
}

impl CopyCost {
    /// The default calibration for the ~1 GHz in-order core the rest of
    /// the model assumes.
    pub const DEFAULT: CopyCost = CopyCost {
        setup: 120,
        per_page: 256,
    };

    /// Total cycles to relocate `pages` contiguous pages.
    pub fn relocation(&self, pages: u64) -> u64 {
        self.setup + pages * self.per_page
    }
}

impl Default for CopyCost {
    fn default() -> CopyCost {
        CopyCost::DEFAULT
    }
}

/// A pending IPI: the sending hart and why it was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipi {
    /// The hart that posted the doorbell.
    pub from: u16,
    /// What the receiver must do upon trapping.
    pub kind: IpiKind,
}

/// What a shootdown IPI asks the receiving hart to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpiKind {
    /// The receiver's register image is unaffected; it only needs to
    /// invalidate cached isolation state (`sfence.vma` + PMPTW-Cache
    /// flush).
    FenceOnly,
    /// The receiver's register image depends on the changed domain; it
    /// must reprogram its PMP/HPMP registers before fencing.
    Reprogram,
}

/// One shootdown handler's worth of deferred work, queued to a receiving
/// hart's SPSC mailbox by the threaded SMP backend.
///
/// In the deterministic backend the receiver's handler (trap, optional
/// reprogram, fence) runs synchronously inside the monitor operation. The
/// threaded backend performs the parts that need the monitor's state
/// (reprogramming the register image) serially at post time, then defers
/// the hart-local parts — invalidating cached isolation state and
/// charging the pre-computed handler cycles — to the receiving hart's own
/// thread, which drains its mailbox at the next epoch barrier *before*
/// issuing any accesses. No access can ever observe pre-shootdown state,
/// so the two schedules are indistinguishable counter-for-counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeferredShootdown {
    /// What the handler logically did (for tracing/diagnostics).
    pub kind: IpiKind,
    /// The receiver-side handler cost, fully computed at post time
    /// (trap round trip + any reprogram CSR writes + fence).
    pub handler_cycles: u64,
}

/// The IPI fabric: per-hart mailboxes plus delivery counters.
///
/// Deliberately dumb — it models a CLINT-style array of software-interrupt
/// doorbells, one per hart, each holding at most the *strongest* pending
/// request (a `Reprogram` absorbs a coincident `FenceOnly`, exactly as a
/// real handler that re-reads monitor state would behave). The monitor
/// posts, the multi-hart driver drains.
#[derive(Clone, Debug)]
pub struct IpiFabric {
    mailboxes: Vec<Option<Ipi>>,
    sent: u64,
    delivered: u64,
    merged: u64,
}

impl IpiFabric {
    /// A fabric for `harts` harts, all mailboxes empty.
    pub fn new(harts: usize) -> IpiFabric {
        IpiFabric {
            mailboxes: vec![None; harts],
            sent: 0,
            delivered: 0,
            merged: 0,
        }
    }

    /// Number of harts the fabric connects.
    pub fn harts(&self) -> usize {
        self.mailboxes.len()
    }

    /// Posts an IPI to `target`'s mailbox. A pending `FenceOnly` is
    /// upgraded by a `Reprogram`; a pending `Reprogram` absorbs anything.
    ///
    /// # Panics
    /// If `target` is out of range.
    pub fn post(&mut self, target: u16, ipi: Ipi) {
        self.sent += 1;
        let slot = &mut self.mailboxes[usize::from(target)];
        match slot {
            None => *slot = Some(ipi),
            Some(pending) => {
                self.merged += 1;
                if pending.kind == IpiKind::FenceOnly {
                    *slot = Some(ipi);
                }
            }
        }
    }

    /// Takes `hart`'s pending IPI, if any, counting the delivery.
    pub fn take(&mut self, hart: u16) -> Option<Ipi> {
        let ipi = self.mailboxes[usize::from(hart)].take();
        if ipi.is_some() {
            self.delivered += 1;
        }
        ipi
    }

    /// Whether `hart` has a pending IPI.
    pub fn pending(&self, hart: u16) -> bool {
        self.mailboxes[usize::from(hart)].is_some()
    }

    /// Total IPIs posted.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Total IPIs taken by receivers.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Posts that found the mailbox already occupied (coalesced by the
    /// doorbell, as in hardware).
    pub fn merged(&self) -> u64 {
        self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_take_roundtrip() {
        let mut fabric = IpiFabric::new(4);
        assert!(!fabric.pending(2));
        fabric.post(
            2,
            Ipi {
                from: 0,
                kind: IpiKind::FenceOnly,
            },
        );
        assert!(fabric.pending(2));
        let ipi = fabric.take(2).unwrap();
        assert_eq!(ipi.from, 0);
        assert_eq!(ipi.kind, IpiKind::FenceOnly);
        assert!(fabric.take(2).is_none(), "mailbox drained");
        assert_eq!(fabric.sent(), 1);
        assert_eq!(fabric.delivered(), 1);
        assert_eq!(fabric.merged(), 0);
    }

    #[test]
    fn reprogram_upgrades_and_absorbs() {
        let mut fabric = IpiFabric::new(2);
        let fence = Ipi {
            from: 0,
            kind: IpiKind::FenceOnly,
        };
        let reprog = Ipi {
            from: 0,
            kind: IpiKind::Reprogram,
        };

        // FenceOnly then Reprogram: upgraded.
        fabric.post(1, fence);
        fabric.post(1, reprog);
        assert_eq!(fabric.take(1).unwrap().kind, IpiKind::Reprogram);

        // Reprogram then FenceOnly: the reprogram already covers the fence.
        fabric.post(1, reprog);
        fabric.post(1, fence);
        assert_eq!(fabric.take(1).unwrap().kind, IpiKind::Reprogram);

        assert_eq!(fabric.sent(), 4);
        assert_eq!(fabric.delivered(), 2);
        assert_eq!(fabric.merged(), 2);
    }
}
