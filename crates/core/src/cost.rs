//! Analytic hardware-cost model (the Table 4 substitution).
//!
//! The paper reports Vivado utilisation for the FPGA top module; we cannot
//! synthesize RTL in this environment, so we estimate the *delta* HPMP adds
//! from first principles: the new state bits (PMPTW walker registers,
//! PMPTW-Cache tags/data), comparators (entry match, cache lookup) and
//! muxing, expressed as LUT/FF counts with standard per-bit factors. The
//! baseline absolute numbers are taken from the paper's Table 4 so the
//! *percentages* — the claim under test (≈1% LUT, <1% FF, zero BRAM/DSP) —
//! are comparable. This is an estimate, not a synthesis result; see
//! DESIGN.md §2.

/// Parameters describing an HPMP hardware instantiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareParams {
    /// Number of HPMP entries.
    pub entries: usize,
    /// PMPTW-Cache entries (0 when disabled).
    pub pmptw_cache_entries: usize,
    /// Whether the hypervisor extension is present (widens physical-address
    /// datapaths and duplicates some matching logic for the G stage).
    pub hypervisor: bool,
}

impl HardwareParams {
    /// The evaluated prototype: 16 entries, cache disabled, no hypervisor.
    pub fn prototype() -> HardwareParams {
        HardwareParams {
            entries: 16,
            pmptw_cache_entries: 0,
            hypervisor: false,
        }
    }

    /// The hypervisor-enabled prototype (the "+H" columns of Table 4).
    pub fn prototype_hypervisor() -> HardwareParams {
        HardwareParams {
            entries: 16,
            pmptw_cache_entries: 0,
            hypervisor: true,
        }
    }
}

/// Estimated resource deltas and totals for the FPGA top module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceReport {
    /// Baseline LUTs (from the paper's Table 4).
    pub baseline_lut: u64,
    /// LUTs with HPMP.
    pub hpmp_lut: u64,
    /// Baseline flip-flops.
    pub baseline_ff: u64,
    /// Flip-flops with HPMP.
    pub hpmp_ff: u64,
    /// Block-RAM delta (always zero: PMP Tables live in DRAM).
    pub bram_delta: u64,
    /// DSP delta (always zero: no multipliers in the checker).
    pub dsp_delta: u64,
}

impl ResourceReport {
    /// LUT overhead as a percentage of the baseline.
    pub fn lut_cost_percent(&self) -> f64 {
        (self.hpmp_lut - self.baseline_lut) as f64 * 100.0 / self.baseline_lut as f64
    }

    /// FF overhead as a percentage of the baseline.
    pub fn ff_cost_percent(&self) -> f64 {
        (self.hpmp_ff - self.baseline_ff) as f64 * 100.0 / self.baseline_ff as f64
    }
}

/// Estimates the Table 4 resource report for `params`.
///
/// The component model:
/// * **PMPTW state machine**: a 2-state walker with a 56-bit address
///   register, 64-bit pmpte latch, level counter and region-offset adder.
/// * **Entry decode**: one extra AND/MUX per entry for the `T` bit, plus the
///   Mode/PPN field extraction of the pointer slot.
/// * **PMPTW-Cache**: per entry a ~44-bit tag comparator and 64-bit payload.
/// * **TLB inlining**: 3 permission bits per TLB entry (64 L1 + 1024 L2).
pub fn estimate_resources(params: &HardwareParams) -> ResourceReport {
    // Baselines from the paper's Table 4 (Rocket/BOOM SoC top module).
    let (baseline_lut, baseline_ff) = if params.hypervisor {
        (249_026, 260_073)
    } else {
        (248_292, 258_498)
    };

    // Flip-flops: walker registers + per-entry T-bit pipeline + cache state
    // + inlined TLB permission bits.
    let walker_ff = 56 + 64 + 3 + 34; // addr, pmpte latch, FSM, offset
    let entry_ff = params.entries as u64; // registered T decode per entry
    let cache_ff = params.pmptw_cache_entries as u64 * (44 + 64 + 3); // tag+data+lru
    let tlb_inline_ff = (64 + 1024) * 3 / 16; // amortised: perm bits fold into existing arrays
    let hyp_ff = if params.hypervisor { 1600 } else { 0 }; // wider datapaths, G-stage plumbing
    let ff_delta = walker_ff + entry_ff + cache_ff + tlb_inline_ff + hyp_ff;

    // LUTs: comparator trees and muxes. ~2 LUTs per compared bit for the
    // offset split/indexing, ~1.5 per mux bit on the permission path.
    let walker_lut = 2 * (34 + 9 + 9 + 4) + 3 * 64; // offset split + pmpte decode
    let entry_lut = params.entries as u64 * 70; // T-bit gating + pointer extraction
    let cache_lut = params.pmptw_cache_entries as u64 * (44 * 2 + 16);
    let match_lut = 900; // priority mux rework for skipped pointer slots
    let hyp_lut = if params.hypervisor { 600 } else { 0 };
    let lut_delta = walker_lut + entry_lut + cache_lut + match_lut + hyp_lut;

    ResourceReport {
        baseline_lut,
        hpmp_lut: baseline_lut + lut_delta,
        baseline_ff,
        hpmp_ff: baseline_ff + ff_delta,
        bram_delta: 0,
        dsp_delta: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_costs_are_small() {
        let report = estimate_resources(&HardwareParams::prototype());
        // The paper's claim: ~1% LUT, ~0.2% FF, zero BRAM/DSP.
        assert!(
            report.lut_cost_percent() < 2.0,
            "LUT cost {}",
            report.lut_cost_percent()
        );
        assert!(
            report.ff_cost_percent() < 1.0,
            "FF cost {}",
            report.ff_cost_percent()
        );
        assert_eq!(report.bram_delta, 0);
        assert_eq!(report.dsp_delta, 0);
    }

    #[test]
    fn hypervisor_variant_costs_more() {
        let base = estimate_resources(&HardwareParams::prototype());
        let hyp = estimate_resources(&HardwareParams::prototype_hypervisor());
        assert!(hyp.ff_cost_percent() > base.ff_cost_percent());
        assert!(hyp.lut_cost_percent() > base.lut_cost_percent());
        assert!(hyp.ff_cost_percent() < 2.0);
    }

    #[test]
    fn cache_adds_resources() {
        let without = estimate_resources(&HardwareParams::prototype());
        let with = estimate_resources(&HardwareParams {
            pmptw_cache_entries: 8,
            ..HardwareParams::prototype()
        });
        assert!(with.hpmp_lut > without.hpmp_lut);
        assert!(with.hpmp_ff > without.hpmp_ff);
    }

    #[test]
    fn report_percentages_positive() {
        let r = estimate_resources(&HardwareParams::prototype());
        assert!(r.lut_cost_percent() > 0.0);
        assert!(r.ff_cost_percent() > 0.0);
    }
}
