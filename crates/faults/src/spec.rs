//! Campaign specifications: what to inject, how much, and how the work is
//! sharded for deterministic parallel execution.

use hpmp_memsim::SplitMix64;
use hpmp_penglai::TeeFlavor;

/// One class of injected fault (§2 of the threat model in DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Bit flips in root/leaf pmptes resident in simulated DRAM.
    PmpteFlip,
    /// Corruption of PMP `addr`/`config` registers, including illegal
    /// T-bit/mode encodings.
    RegCorrupt,
    /// Suppressed TLB/PMPTW-cache invalidations after a monitor remap.
    StaleCache,
    /// A monitor interposition point that fires but whose register
    /// reprogramming is lost (dropped CSR writes on a domain switch).
    Interpose,
    /// A fault landing in the middle of a segment-compaction pass: one
    /// region already relocated, the rest pending, and then a pmpte flip
    /// (table flavours) or register corruption (PMP flavour) hits before
    /// the pass resumes.
    CompactRace,
}

impl FaultClass {
    /// Every class, in canonical order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::PmpteFlip,
        FaultClass::RegCorrupt,
        FaultClass::StaleCache,
        FaultClass::Interpose,
        FaultClass::CompactRace,
    ];

    /// Stable short key used in spec strings, counters and JSONL records.
    pub fn key(self) -> &'static str {
        match self {
            FaultClass::PmpteFlip => "pmpte",
            FaultClass::RegCorrupt => "regs",
            FaultClass::StaleCache => "stale",
            FaultClass::Interpose => "interpose",
            FaultClass::CompactRace => "compact",
        }
    }

    fn from_key(key: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.key() == key)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// A parsed `--fault-campaign` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Which TEE flavour to boot the monitor as.
    pub flavor: TeeFlavor,
    /// Fault classes to draw from, in canonical order, deduplicated.
    pub classes: Vec<FaultClass>,
    /// Total number of fault trials across all shards.
    pub faults: u64,
    /// Number of enclave domains (the host always exists on top).
    pub domains: u32,
    /// Number of independent shards the campaign is split into. The shard
    /// count is part of the spec — not derived from `--jobs` — so the same
    /// seed yields byte-identical output at any parallelism.
    pub shards: u64,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            flavor: TeeFlavor::PenglaiHpmp,
            classes: FaultClass::ALL.to_vec(),
            faults: 200,
            domains: 2,
            shards: 8,
        }
    }
}

impl CampaignSpec {
    /// Parses a spec string of comma-separated `key=value` pairs, e.g.
    /// `faults=1000,classes=pmpte+regs+stale+interpose,flavor=hpmp,domains=2,shards=8`.
    /// Unset keys take the defaults above; `classes=all` selects every class.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, unknown class or
    /// flavour names, and zero counts.
    pub fn parse(s: &str) -> Result<CampaignSpec, String> {
        let mut spec = CampaignSpec::default();
        for pair in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{pair}`"))?;
            match key.trim() {
                "flavor" => {
                    spec.flavor = match value.trim() {
                        "pmp" => TeeFlavor::PenglaiPmp,
                        "pmpt" => TeeFlavor::PenglaiPmpt,
                        "hpmp" => TeeFlavor::PenglaiHpmp,
                        other => return Err(format!("unknown flavor `{other}`")),
                    }
                }
                "classes" => {
                    if value.trim() == "all" {
                        spec.classes = FaultClass::ALL.to_vec();
                    } else {
                        let mut picked = Vec::new();
                        for name in value.split('+') {
                            let class = FaultClass::from_key(name.trim())
                                .ok_or_else(|| format!("unknown fault class `{name}`"))?;
                            if !picked.contains(&class) {
                                picked.push(class);
                            }
                        }
                        // Canonical order regardless of spelling order.
                        spec.classes = FaultClass::ALL
                            .iter()
                            .copied()
                            .filter(|c| picked.contains(c))
                            .collect();
                    }
                }
                "faults" => {
                    spec.faults = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad faults count `{value}`"))?
                }
                "domains" => {
                    spec.domains = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad domains count `{value}`"))?
                }
                "shards" => {
                    spec.shards = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad shards count `{value}`"))?
                }
                other => return Err(format!("unknown campaign key `{other}`")),
            }
        }
        if spec.faults == 0 {
            return Err("faults must be > 0".into());
        }
        if spec.shards == 0 {
            return Err("shards must be > 0".into());
        }
        if spec.domains == 0 {
            return Err("domains must be > 0 (stale-cache faults target enclaves)".into());
        }
        if spec.domains > 8 {
            return Err("domains must be <= 8 (PMP flavour register-file budget)".into());
        }
        if spec.classes.is_empty() {
            return Err("classes must not be empty".into());
        }
        if spec.effective_classes().is_empty() {
            return Err("pmpte faults need a table-backed flavor (pmpt or hpmp)".into());
        }
        Ok(spec)
    }

    /// The classes that can actually be exercised under this flavour: the
    /// PMP flavour has no permission tables, so pmpte flips are dropped.
    pub fn effective_classes(&self) -> Vec<FaultClass> {
        self.classes
            .iter()
            .copied()
            .filter(|&c| c != FaultClass::PmpteFlip || self.flavor != TeeFlavor::PenglaiPmp)
            .collect()
    }

    /// Canonical spec string (round-trips through [`CampaignSpec::parse`]).
    pub fn canonical(&self) -> String {
        let flavor = match self.flavor {
            TeeFlavor::PenglaiPmp => "pmp",
            TeeFlavor::PenglaiPmpt => "pmpt",
            TeeFlavor::PenglaiHpmp => "hpmp",
        };
        let classes: Vec<&str> = self.classes.iter().map(|c| c.key()).collect();
        format!(
            "flavor={},classes={},faults={},domains={},shards={}",
            flavor,
            classes.join("+"),
            self.faults,
            self.domains,
            self.shards
        )
    }

    /// Trials assigned to `shard`: the total split as evenly as possible,
    /// with the remainder spread over the lowest-numbered shards.
    pub fn shard_trials(&self, shard: u64) -> u64 {
        let base = self.faults / self.shards;
        let extra = self.faults % self.shards;
        base + u64::from(shard < extra)
    }

    /// The RNG seed for `shard`, derived by advancing a [`SplitMix64`]
    /// stream seeded from the campaign seed. Each shard gets an independent
    /// stream; the derivation depends only on `(campaign_seed, shard)`, so
    /// shards can run in any order on any number of threads.
    pub fn shard_seed(campaign_seed: u64, shard: u64) -> u64 {
        let mut stream = SplitMix64::seed_from_u64(campaign_seed);
        let mut seed = stream.next_u64();
        for _ in 0..shard {
            seed = stream.next_u64();
        }
        seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_roundtrip() {
        let spec = CampaignSpec::parse("").expect("empty spec");
        assert_eq!(spec, CampaignSpec::default());
        let full = CampaignSpec::parse("faults=1000,classes=all,flavor=pmpt,domains=3,shards=16")
            .expect("full spec");
        assert_eq!(full.faults, 1000);
        assert_eq!(full.flavor, TeeFlavor::PenglaiPmpt);
        assert_eq!(full.domains, 3);
        assert_eq!(full.shards, 16);
        assert_eq!(CampaignSpec::parse(&full.canonical()).expect("canon"), full);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CampaignSpec::parse("faults=0").is_err());
        assert!(CampaignSpec::parse("shards=0").is_err());
        assert!(CampaignSpec::parse("domains=0").is_err());
        assert!(CampaignSpec::parse("classes=bogus").is_err());
        assert!(CampaignSpec::parse("flavor=keystone").is_err());
        assert!(CampaignSpec::parse("nonsense").is_err());
        assert!(CampaignSpec::parse("classes=pmpte,flavor=pmp").is_err());
    }

    #[test]
    fn classes_are_canonicalised() {
        let spec = CampaignSpec::parse("classes=stale+pmpte+stale").expect("spec");
        assert_eq!(
            spec.classes,
            vec![FaultClass::PmpteFlip, FaultClass::StaleCache]
        );
    }

    #[test]
    fn pmp_flavor_drops_pmpte_class() {
        let spec = CampaignSpec::parse("flavor=pmp").expect("spec");
        assert!(!spec.effective_classes().contains(&FaultClass::PmpteFlip));
        assert_eq!(spec.effective_classes().len(), 4);
    }

    #[test]
    fn shard_split_covers_total() {
        let spec = CampaignSpec::parse("faults=103,shards=8").expect("spec");
        let total: u64 = (0..8).map(|s| spec.shard_trials(s)).sum();
        assert_eq!(total, 103);
        assert_eq!(spec.shard_trials(0), 13);
        assert_eq!(spec.shard_trials(7), 12);
    }

    #[test]
    fn shard_seeds_are_stable_and_distinct() {
        let a = CampaignSpec::shard_seed(42, 3);
        assert_eq!(a, CampaignSpec::shard_seed(42, 3));
        assert_ne!(a, CampaignSpec::shard_seed(42, 4));
        assert_ne!(a, CampaignSpec::shard_seed(43, 3));
    }
}
