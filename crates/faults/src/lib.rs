//! # hpmp-faults
//!
//! Deterministic fault injection for the HPMP stack, paired with a
//! lockstep reference oracle.
//!
//! A *campaign* is a seeded, scripted sequence of fault trials sharded
//! into independent simulated worlds. Each trial injects one fault from
//! four classes — pmpte bit flips in simulated DRAM, PMP register
//! corruption, suppressed invalidation fences after monitor remaps, and
//! dropped monitor interpositions — then probes a fixed set of accesses
//! and compares every fast-path decision against the monitor's
//! [`oracle`](hpmp_penglai::SecureMonitor::oracle_check_for), a slow
//! cache-free re-derivation from authoritative monitor-owned state.
//!
//! The fail-closed invariant: a fast-path **grant** the oracle **denies**
//! is a silent isolation violation and fails the campaign; a spurious
//! denial is graceful degradation and merely counted. Campaigns with the
//! same seed produce byte-identical reports at any `--jobs` level because
//! the shard count is part of the spec, each shard derives its own
//! [`SplitMix64`](hpmp_memsim::SplitMix64) stream, and merging is pure
//! ordered accumulation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod spec;

pub use campaign::{run_campaign, run_shard, CampaignReport, ShardReport};
pub use spec::{CampaignSpec, FaultClass};
