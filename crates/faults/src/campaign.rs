//! The campaign engine: a sharded environment of machine + monitor +
//! per-domain address spaces, four fault-injection trial procedures, and a
//! lockstep permission oracle that classifies every probed access.
//!
//! The fail-closed invariant enforced after every injection: an access the
//! fast path *grants* but the oracle *denies* is an isolation violation
//! (`silent`); an access the fast path *denies* but the oracle would allow
//! is graceful degradation (`degraded`) and acceptable.

use hpmp_core::{PmpConfig, PmpRegion, PmptwCache};
use hpmp_machine::{Fault, Machine, MachineConfig};
use hpmp_memsim::{
    AccessKind, FrameAllocator, Perms, PhysAddr, PrivMode, SplitMix64, VirtAddr, PAGE_SIZE,
};
use hpmp_paging::{AddressSpace, TranslationMode};
use hpmp_penglai::{DomainId, GmsLabel, SecureMonitor, TeeFlavor};
use hpmp_trace::MetricsRegistry;

use crate::spec::{CampaignSpec, FaultClass};

/// Base of simulated RAM (matches the repro harness).
const RAM_BASE: u64 = 0x8000_0000;
/// 1 GiB of simulated RAM.
const RAM_SIZE: u64 = 1 << 30;
/// Bytes granted to each domain's probe region.
const DOMAIN_BYTES: u64 = 1 << 20;
/// Offset of the page-table frame pool inside each domain's region, so PT
/// walks stay within memory the domain legitimately owns.
const PT_POOL_OFF: u64 = 1 << 19;

/// VA of the domain's own probe page (expected: grant).
const OWN_VA: u64 = 0x10_0000;
/// VA mapped at the monitor's base (expected: deny, always).
const MON_VA: u64 = 0x20_0000;
/// VA mapped into the monitor's table arena (expected: deny for enclaves).
const TBL_VA: u64 = 0x30_0000;
/// Base VA for foreign-domain probe pages (expected: deny).
const FOREIGN_VA: u64 = 0x40_0000;
/// Base VA for the stale-cache trials' throwaway mappings.
const STALE_VA: u64 = 0x100_0000;

fn class_idx(class: FaultClass) -> usize {
    FaultClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class in ALL")
}

/// What one batch of oracle-checked probes observed.
#[derive(Clone, Copy, Debug, Default)]
struct ProbeSummary {
    /// Probes the fast path granted.
    granted: u64,
    /// Probes the fast path denied.
    denied: u64,
    /// Denials that surfaced as [`Fault::CorruptPmpte`].
    corrupt: u64,
    /// Fast-path grants the oracle denied — isolation violations.
    silent: u64,
    /// Fast-path denials the oracle would have allowed — degradation.
    degraded: u64,
    /// Whether the domain's own probe page was readable.
    own_read_ok: bool,
}

/// Outcome of one fault trial.
#[derive(Clone, Debug)]
struct TrialResult {
    class: FaultClass,
    victim: String,
    detail: String,
    injected: bool,
    detected: bool,
    silent: u64,
    degraded: u64,
    stale_rejects: u64,
    recovery_failed: bool,
}

impl TrialResult {
    fn skipped(class: FaultClass, victim: String, detail: String) -> TrialResult {
        TrialResult {
            class,
            victim,
            detail,
            injected: false,
            detected: false,
            silent: 0,
            degraded: 0,
            stale_rejects: 0,
            recovery_failed: false,
        }
    }
}

/// Counters accumulated by one shard, plus its JSONL trial records.
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    /// Shard index within the campaign.
    pub shard: u64,
    /// Trials executed (including skipped ones).
    pub trials: u64,
    /// Faults injected, indexed by [`FaultClass::ALL`] position.
    pub injected: [u64; 5],
    /// Faults detected (fail-closed denial, scrub repair, or quarantine),
    /// indexed like `injected`.
    pub detected: [u64; 5],
    /// Fast-path grants the oracle denied — must be zero for a pass.
    pub silent: u64,
    /// Spurious denials (graceful degradation; informational).
    pub degraded: u64,
    /// Recovery paths that failed to restore service.
    pub recovery_failures: u64,
    /// TLB lookups rejected by the isolation-epoch check.
    pub stale_rejects: u64,
    /// One JSON object per trial, newline-terminated, in trial order.
    pub records: String,
}

impl ShardReport {
    fn absorb(&mut self, trial: u64, r: &TrialResult) {
        self.trials += 1;
        let idx = class_idx(r.class);
        if r.injected {
            self.injected[idx] += 1;
            if r.detected {
                self.detected[idx] += 1;
            }
        }
        self.silent += r.silent;
        self.degraded += r.degraded;
        self.stale_rejects += r.stale_rejects;
        self.recovery_failures += u64::from(r.recovery_failed);
        self.records.push_str(&format!(
            "{{\"shard\":{},\"trial\":{},\"class\":\"{}\",\"victim\":\"{}\",\"detail\":\"{}\",\
             \"injected\":{},\"detected\":{},\"silent\":{},\"degraded\":{},\
             \"stale_rejects\":{},\"recovery_failed\":{}}}\n",
            self.shard,
            trial,
            r.class,
            r.victim,
            r.detail,
            r.injected,
            r.detected,
            r.silent,
            r.degraded,
            r.stale_rejects,
            r.recovery_failed
        ));
    }
}

/// The merged, campaign-level result.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Canonical spec string the campaign ran with.
    pub spec: String,
    /// The campaign seed.
    pub seed: u64,
    /// Number of shards merged.
    pub shards: u64,
    /// Total trials executed.
    pub trials: u64,
    /// Per-class injection counts, indexed by [`FaultClass::ALL`] position.
    pub injected: [u64; 5],
    /// Per-class detection counts, indexed like `injected`.
    pub detected: [u64; 5],
    /// Total silent violations (pass requires zero).
    pub silent: u64,
    /// Total spurious denials.
    pub degraded: u64,
    /// Total failed recoveries (pass requires zero).
    pub recovery_failures: u64,
    /// Total isolation-epoch TLB rejections.
    pub stale_rejects: u64,
    /// All shard records concatenated in shard order.
    pub records: String,
}

impl CampaignReport {
    /// Merges per-shard reports (which must be in shard order) into the
    /// campaign total. The merge is pure accumulation, so it is
    /// byte-identical however the shards were scheduled.
    pub fn merge(spec: &CampaignSpec, seed: u64, shards: &[ShardReport]) -> CampaignReport {
        let mut report = CampaignReport {
            spec: spec.canonical(),
            seed,
            shards: shards.len() as u64,
            trials: 0,
            injected: [0; 5],
            detected: [0; 5],
            silent: 0,
            degraded: 0,
            recovery_failures: 0,
            stale_rejects: 0,
            records: String::new(),
        };
        for s in shards {
            report.trials += s.trials;
            for i in 0..FaultClass::ALL.len() {
                report.injected[i] += s.injected[i];
                report.detected[i] += s.detected[i];
            }
            report.silent += s.silent;
            report.degraded += s.degraded;
            report.recovery_failures += s.recovery_failures;
            report.stale_rejects += s.stale_rejects;
            report.records.push_str(&s.records);
        }
        report
    }

    /// Total faults injected across all classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// The fail-closed verdict: no silent violation, no failed recovery.
    pub fn passed(&self) -> bool {
        self.silent == 0 && self.recovery_failures == 0
    }

    /// Exports the campaign counters into a [`MetricsRegistry`] under the
    /// `faults.` prefix.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        for (i, class) in FaultClass::ALL.iter().enumerate() {
            reg.add(format!("faults.injected.{class}"), self.injected[i]);
            reg.add(format!("faults.detected.{class}"), self.detected[i]);
        }
        reg.add("faults.trials", self.trials);
        reg.add("faults.silent", self.silent);
        reg.add("faults.degraded", self.degraded);
        reg.add("faults.recovery_failures", self.recovery_failures);
        reg.add("faults.stale_rejects", self.stale_rejects);
    }

    /// A single deterministic JSON object summarising the campaign.
    pub fn summary_json(&self) -> String {
        let classes: Vec<String> = FaultClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| format!("\"{}\":{}", c, self.injected[i]))
            .collect();
        let detected: Vec<String> = FaultClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| format!("\"{}\":{}", c, self.detected[i]))
            .collect();
        format!(
            "{{\"spec\":\"{}\",\"seed\":{},\"shards\":{},\"trials\":{},\
             \"injected\":{{{},\"total\":{}}},\"detected\":{{{}}},\
             \"silent\":{},\"degraded\":{},\"recovery_failures\":{},\
             \"stale_rejects\":{},\"pass\":{}}}",
            self.spec,
            self.seed,
            self.shards,
            self.trials,
            classes.join(","),
            self.total_injected(),
            detected.join(","),
            self.silent,
            self.degraded,
            self.recovery_failures,
            self.stale_rejects,
            self.passed()
        )
    }
}

/// One shard's simulated world: a machine, a booted monitor, and an
/// address space per domain with identically-laid-out probe targets.
struct Env {
    machine: Machine,
    monitor: SecureMonitor,
    domains: Vec<DomainId>,
    spaces: Vec<AddressSpace>,
    pools: Vec<FrameAllocator>,
    probe_pages: Vec<PhysAddr>,
    /// `(va, pa, kind)` probes per domain; index 0 is the own-page read.
    targets: Vec<Vec<(u64, PhysAddr, AccessKind)>>,
    stale_next_va: u64,
    cur: usize,
}

impl Env {
    fn new(spec: &CampaignSpec) -> Result<Env, String> {
        let mut machine = Machine::new(MachineConfig::rocket());
        let ram = PmpRegion::new(PhysAddr::new(RAM_BASE), RAM_SIZE);
        let mut monitor = SecureMonitor::boot(&mut machine, spec.flavor, ram)
            .map_err(|e| format!("boot: {e}"))?;

        let mut domains = vec![DomainId::HOST];
        let (host_region, _) = monitor
            .alloc_region(&mut machine, DomainId::HOST, DOMAIN_BYTES, GmsLabel::Slow)
            .map_err(|e| format!("host region: {e}"))?;
        let mut regions = vec![host_region];
        for _ in 0..spec.domains {
            let (id, _) = monitor
                .create_domain(&mut machine, DOMAIN_BYTES, GmsLabel::Slow)
                .map_err(|e| format!("create domain: {e}"))?;
            let gms = monitor
                .regions_of(id)
                .map_err(|e| format!("regions: {e}"))?[0];
            domains.push(id);
            regions.push(gms.region);
        }
        let probe_pages: Vec<PhysAddr> = regions.iter().map(|r| r.base).collect();

        let mut spaces = Vec::new();
        let mut pools = Vec::new();
        let mut targets = Vec::new();
        for (i, region) in regions.iter().enumerate() {
            let mut pool = FrameAllocator::new(
                PhysAddr::new(region.base.raw() + PT_POOL_OFF),
                DOMAIN_BYTES - PT_POOL_OFF,
            );
            let mut space = AddressSpace::new(
                TranslationMode::Sv39,
                (i + 1) as u16,
                machine.phys_mut(),
                &mut pool,
            )
            .map_err(|e| format!("space: {e:?}"))?;
            let tbl_page = PhysAddr::new(RAM_BASE + (5 << 20));
            let mut maps = vec![
                (OWN_VA, probe_pages[i]),
                (MON_VA, ram.base),
                (TBL_VA, tbl_page),
            ];
            for (j, &page) in probe_pages.iter().enumerate() {
                if j != i {
                    maps.push((FOREIGN_VA + (j as u64) * PAGE_SIZE, page));
                }
            }
            let mut probe_list = vec![
                (OWN_VA, probe_pages[i], AccessKind::Read),
                (OWN_VA, probe_pages[i], AccessKind::Write),
            ];
            for &(va, pa) in &maps {
                space
                    .map_page(
                        machine.phys_mut(),
                        &mut pool,
                        VirtAddr::new(va),
                        pa,
                        Perms::RW,
                        true,
                    )
                    .map_err(|e| format!("map {va:#x}: {e:?}"))?;
                if va != OWN_VA {
                    probe_list.push((va, pa, AccessKind::Read));
                }
            }
            spaces.push(space);
            pools.push(pool);
            targets.push(probe_list);
        }

        Ok(Env {
            machine,
            monitor,
            domains,
            spaces,
            pools,
            probe_pages,
            targets,
            stale_next_va: STALE_VA,
            cur: 0,
        })
    }

    fn victim_name(&self, idx: usize) -> String {
        self.domains[idx].to_string()
    }

    /// Switches the running domain (no-op when already current).
    fn switch(&mut self, idx: usize) -> Result<(), String> {
        if self.cur != idx {
            self.monitor
                .switch_to(&mut self.machine, self.domains[idx])
                .map_err(|e| format!("switch: {e}"))?;
            self.cur = idx;
        }
        Ok(())
    }

    /// Runs every probe of the current domain in lockstep with the oracle.
    fn probe_all(&mut self) -> ProbeSummary {
        let mut summary = ProbeSummary::default();
        let i = self.cur;
        for (n, &(va, pa, kind)) in self.targets[i].clone().iter().enumerate() {
            let outcome =
                self.machine
                    .access(&self.spaces[i], VirtAddr::new(va), kind, PrivMode::User);
            let allowed = self.monitor.oracle_check_for(self.domains[i], pa, kind);
            match outcome {
                Ok(_) => {
                    summary.granted += 1;
                    if n == 0 {
                        summary.own_read_ok = true;
                    }
                    if !allowed {
                        summary.silent += 1;
                    }
                }
                Err(fault) => {
                    summary.denied += 1;
                    if matches!(fault, Fault::CorruptPmpte(_)) {
                        summary.corrupt += 1;
                    }
                    if allowed {
                        summary.degraded += 1;
                    }
                }
            }
        }
        summary
    }

    /// Class (a): flip one bit of a root/leaf pmpte in simulated DRAM.
    /// The parity-protected encoding must turn every single-bit flip into
    /// a fail-closed [`Fault::CorruptPmpte`]; scrub then quarantines and
    /// rebuilds the affected domain's table.
    fn trial_pmpte_flip(&mut self, rng: &mut SplitMix64) -> TrialResult {
        let v = (rng.next_u64() % self.domains.len() as u64) as usize;
        let victim = self.victim_name(v);
        if let Err(e) = self.switch(v) {
            return TrialResult::skipped(FaultClass::PmpteFlip, victim, e);
        }
        let mut cache = PmptwCache::disabled();
        let refs = self
            .machine
            .regs()
            .check(
                self.machine.phys(),
                &mut cache,
                self.probe_pages[v],
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .refs;
        if refs.is_empty() {
            return TrialResult::skipped(
                FaultClass::PmpteFlip,
                victim,
                "no pmpte on probe path".into(),
            );
        }
        let target = refs[(rng.next_u64() % refs.len() as u64) as usize].addr;
        let bit = rng.gen_range(0..64) as u32;
        let before = self.machine.phys().read_u64(target);
        self.machine
            .phys_mut()
            .write_u64(target, before ^ (1u64 << bit));
        // Model the eventual eviction of any cached copy of the pmpte.
        self.machine.sfence_vma_all();

        // Probe first: decode-time parity must catch the flip fail-closed.
        let probes = self.probe_all();
        let mut detected = probes.corrupt > 0;

        let scrub = self.monitor.scrub(&mut self.machine);
        detected |= !scrub.corrupt_domains.is_empty();
        let mut recovery_failed = false;
        for &d in &scrub.corrupt_domains {
            if self
                .monitor
                .rebuild_domain_table(&mut self.machine, d)
                .is_err()
            {
                recovery_failed = true;
            }
        }
        let restored = self
            .machine
            .access(
                &self.spaces[v],
                VirtAddr::new(OWN_VA),
                AccessKind::Read,
                PrivMode::User,
            )
            .is_ok();
        recovery_failed |= !restored;

        TrialResult {
            class: FaultClass::PmpteFlip,
            victim,
            detail: format!("pmpte@{target}^bit{bit}"),
            injected: true,
            detected,
            silent: probes.silent,
            degraded: probes.degraded,
            stale_rejects: 0,
            recovery_failed,
        }
    }

    /// Class (b): corrupt a PMP `addr` or `config` register, including
    /// illegal T-bit/mode encodings. Registers are TCB-internal state, so
    /// the monitor's shadow-copy scrub runs *before* probing — it is the
    /// modelled defence for this class (probing first would exercise
    /// corrupted registers the architecture has no self-check for).
    fn trial_reg_corrupt(&mut self, rng: &mut SplitMix64) -> TrialResult {
        let v = (rng.next_u64() % self.domains.len() as u64) as usize;
        let victim = self.victim_name(v);
        if let Err(e) = self.switch(v) {
            return TrialResult::skipped(FaultClass::RegCorrupt, victim, e);
        }
        let idx = (rng.next_u64() % self.machine.regs().len() as u64) as usize;
        let detail = if rng.next_u64() & 1 == 0 {
            let bit = rng.gen_range(0..64) as u32;
            self.machine.regs_mut().corrupt_addr(idx, 1u64 << bit);
            format!("addr[{idx}]^bit{bit}")
        } else {
            let bit = rng.gen_range(0..8) as u32;
            self.machine.regs_mut().corrupt_cfg(idx, 1u8 << bit);
            format!("cfg[{idx}]^bit{bit}")
        };

        let scrub = self.monitor.scrub(&mut self.machine);
        let detected = scrub.repaired_registers > 0;
        let probes = self.probe_all();

        TrialResult {
            class: FaultClass::RegCorrupt,
            victim,
            detail: format!("{detail} repaired={}", scrub.repaired_registers),
            injected: true,
            detected,
            silent: probes.silent,
            degraded: probes.degraded,
            stale_rejects: 0,
            recovery_failed: !probes.own_read_ok,
        }
    }

    /// Class (c): suppress the TLB/PMPTW invalidation fence after a
    /// monitor remap (here: a region free). The isolation-epoch tags must
    /// still force the stale translation to miss and re-walk, which then
    /// fails closed against the updated permission state.
    fn trial_stale(&mut self, rng: &mut SplitMix64) -> TrialResult {
        let enclaves = self.domains.len() - 1;
        let v = 1 + (rng.next_u64() % enclaves as u64) as usize;
        let victim = self.victim_name(v);
        if let Err(e) = self.switch(v) {
            return TrialResult::skipped(FaultClass::StaleCache, victim, e);
        }
        let region = match self.monitor.alloc_region(
            &mut self.machine,
            self.domains[v],
            PAGE_SIZE,
            GmsLabel::Slow,
        ) {
            Ok((region, _)) => region,
            Err(e) => {
                return TrialResult::skipped(FaultClass::StaleCache, victim, format!("alloc: {e}"))
            }
        };
        let va = self.stale_next_va;
        self.stale_next_va += PAGE_SIZE;
        if let Err(e) = self.spaces[v].map_page(
            self.machine.phys_mut(),
            &mut self.pools[v],
            VirtAddr::new(va),
            region.base,
            Perms::RW,
            true,
        ) {
            return TrialResult::skipped(FaultClass::StaleCache, victim, format!("map: {e:?}"));
        }
        // Warm the TLB with the soon-to-be-stale translation.
        let warm = self
            .machine
            .access(
                &self.spaces[v],
                VirtAddr::new(va),
                AccessKind::Read,
                PrivMode::User,
            )
            .is_ok();
        if !warm {
            return TrialResult {
                class: FaultClass::StaleCache,
                victim,
                detail: format!("warm probe denied at {va:#x}"),
                injected: false,
                detected: false,
                silent: 0,
                degraded: 0,
                stale_rejects: 0,
                recovery_failed: true,
            };
        }

        self.machine.set_fence_suppression(true);
        let freed = self
            .monitor
            .free_region(&mut self.machine, self.domains[v], region.base);
        self.machine.set_fence_suppression(false);
        if let Err(e) = freed {
            return TrialResult::skipped(FaultClass::StaleCache, victim, format!("free: {e}"));
        }

        let stale_before = self.machine.tlb_stats().stale;
        let outcome = self.machine.access(
            &self.spaces[v],
            VirtAddr::new(va),
            AccessKind::Read,
            PrivMode::User,
        );
        let allowed = self
            .monitor
            .oracle_check_for(self.domains[v], region.base, AccessKind::Read);
        let (detected, silent) = match outcome {
            Ok(_) => (false, u64::from(!allowed)),
            Err(_) => (true, 0),
        };
        let stale_rejects = self.machine.tlb_stats().stale - stale_before;
        let probes = self.probe_all();

        TrialResult {
            class: FaultClass::StaleCache,
            victim,
            detail: format!("fence dropped after free of {region} (va {va:#x})"),
            injected: true,
            detected,
            silent: silent + probes.silent,
            degraded: probes.degraded,
            stale_rejects,
            recovery_failed: !probes.own_read_ok,
        }
    }

    /// Class (d): a monitor interposition point fires (the domain switch
    /// happens, bookkeeping updates) but the register reprogramming is
    /// lost — modelled by force-restoring the pre-switch register image.
    /// The shadow-copy scrub must notice and repair before any guest
    /// access depends on the registers.
    fn trial_interpose(&mut self, rng: &mut SplitMix64) -> TrialResult {
        let len = self.domains.len();
        let from = self.cur;
        let to = (from + 1 + (rng.next_u64() % (len - 1) as u64) as usize) % len;
        let victim = self.victim_name(to);
        let n = self.machine.regs().len();
        let snapshot: Vec<(u64, PmpConfig)> = (0..n)
            .map(|i| {
                (
                    self.machine.regs().addr_reg(i),
                    self.machine.regs().cfg_reg(i),
                )
            })
            .collect();
        if let Err(e) = self.switch(to) {
            return TrialResult::skipped(FaultClass::Interpose, victim, e);
        }
        for (i, &(addr, cfg)) in snapshot.iter().enumerate() {
            self.machine.regs_mut().force_restore(i, addr, cfg);
        }

        // Scrub before probing, as for class (b): the dropped reprogramming
        // left the register file describing the *previous* domain.
        let scrub = self.monitor.scrub(&mut self.machine);
        let detected = scrub.repaired_registers > 0;
        let probes = self.probe_all();

        TrialResult {
            class: FaultClass::Interpose,
            victim,
            detail: format!(
                "switch {}->{} dropped {} csr writes, repaired={}",
                self.domains[from],
                self.domains[to],
                2 * n,
                scrub.repaired_registers
            ),
            injected: true,
            detected,
            silent: probes.silent,
            degraded: probes.degraded,
            stale_rejects: 0,
            recovery_failed: !probes.own_read_ok,
        }
    }

    /// Class (e): a fault lands *mid-compaction* — one region already
    /// relocated, the rest of the pass pending. Whatever the fault hits
    /// (a pmpte under table flavours, a PMP register under the PMP
    /// flavour), the pass must either complete or fail closed, the
    /// scrub/rebuild path must restore service, and the relocated
    /// region's bytes must survive — a canary written before the first
    /// move is asserted from the region's final base.
    fn trial_compact_race(&mut self, rng: &mut SplitMix64) -> TrialResult {
        const SCRATCH: u64 = 64 * 1024;
        let enclaves = self.domains.len() - 1;
        let v = 1 + (rng.next_u64() % enclaves as u64) as usize;
        let victim = self.victim_name(v);
        if let Err(e) = self.switch(v) {
            return TrialResult::skipped(FaultClass::CompactRace, victim, e);
        }
        // Two scratch regions; freeing the lower leaves a hole the upper
        // can slide into.
        let mut scratch = || {
            self.monitor
                .alloc_region(&mut self.machine, self.domains[v], SCRATCH, GmsLabel::Slow)
                .map(|(r, _)| r)
        };
        let (a, b) = match (scratch(), scratch()) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                return TrialResult::skipped(FaultClass::CompactRace, victim, format!("alloc: {e}"))
            }
        };
        let (low, high) = if a.base < b.base { (a, b) } else { (b, a) };
        let canary = rng.next_u64();
        self.machine.phys_mut().write_u64(high.base, canary);
        if let Err(e) = self
            .monitor
            .free_region(&mut self.machine, self.domains[v], low.base)
        {
            return TrialResult::skipped(FaultClass::CompactRace, victim, format!("free: {e}"));
        }
        let first = match self.monitor.compact(&mut self.machine, Some(1)) {
            Ok(report) => report,
            Err(e) => {
                return TrialResult::skipped(FaultClass::CompactRace, victim, format!("pass: {e}"))
            }
        };
        if first.moved_regions == 0 {
            let _ = self
                .monitor
                .free_region(&mut self.machine, self.domains[v], high.base);
            return TrialResult::skipped(FaultClass::CompactRace, victim, "nothing movable".into());
        }

        // The injection, between the first move and the rest of the pass.
        let detail = if self.monitor.flavor() == TeeFlavor::PenglaiPmp {
            let idx = (rng.next_u64() % self.machine.regs().len() as u64) as usize;
            let bit = rng.gen_range(0..64) as u32;
            self.machine.regs_mut().corrupt_addr(idx, 1u64 << bit);
            format!("mid-compaction addr[{idx}]^bit{bit}")
        } else {
            let moved = self.scratch_base(v, SCRATCH);
            let mut cache = PmptwCache::disabled();
            let refs = self
                .machine
                .regs()
                .check(
                    self.machine.phys(),
                    &mut cache,
                    moved,
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .refs;
            if refs.is_empty() {
                return TrialResult::skipped(
                    FaultClass::CompactRace,
                    victim,
                    "no pmpte on moved path".into(),
                );
            }
            let target = refs[(rng.next_u64() % refs.len() as u64) as usize].addr;
            let bit = rng.gen_range(0..64) as u32;
            let before = self.machine.phys().read_u64(target);
            self.machine
                .phys_mut()
                .write_u64(target, before ^ (1u64 << bit));
            self.machine.sfence_vma_all();
            format!("mid-compaction pmpte@{target}^bit{bit}")
        };

        // Resume: either the pass completes over the fault, or it fails
        // closed — both are acceptable, silence is not.
        let mut detected = self.monitor.compact(&mut self.machine, None).is_err();
        let probes = self.probe_all();
        detected |= probes.corrupt > 0;

        let scrub = self.monitor.scrub(&mut self.machine);
        detected |= !scrub.corrupt_domains.is_empty() || scrub.repaired_registers > 0;
        let mut recovery_failed = false;
        for &d in &scrub.corrupt_domains {
            if self
                .monitor
                .rebuild_domain_table(&mut self.machine, d)
                .is_err()
            {
                recovery_failed = true;
            }
        }
        // Any remaining holes must still be compactable after recovery.
        if self.monitor.compact(&mut self.machine, None).is_err() {
            recovery_failed = true;
        }

        // The moved region's bytes must have followed it.
        let survived = self.machine.phys().read_u64(self.scratch_base(v, SCRATCH)) == canary;
        let restored = self
            .machine
            .access(
                &self.spaces[v],
                VirtAddr::new(OWN_VA),
                AccessKind::Read,
                PrivMode::User,
            )
            .is_ok();
        recovery_failed |= !survived || !restored;
        let cleanup_base = self.scratch_base(v, SCRATCH);
        recovery_failed |= self
            .monitor
            .free_region(&mut self.machine, self.domains[v], cleanup_base)
            .is_err();

        TrialResult {
            class: FaultClass::CompactRace,
            victim,
            detail: format!("{detail} canary_survived={survived}"),
            injected: true,
            detected,
            silent: probes.silent,
            degraded: probes.degraded,
            stale_rejects: 0,
            recovery_failed,
        }
    }

    /// Current base of domain `v`'s scratch region (it moves during the
    /// compact-race trial).
    fn scratch_base(&self, v: usize, size: u64) -> PhysAddr {
        self.monitor
            .regions_of(self.domains[v])
            .expect("victim exists")
            .iter()
            .find(|g| g.region.size == size)
            .expect("scratch region live")
            .region
            .base
    }
}

/// Runs one shard of a campaign to completion.
///
/// Shards are fully independent: each builds its own machine + monitor
/// world and draws from its own [`SplitMix64`] stream derived from
/// `(campaign_seed, shard)`, so any scheduling of shards over threads
/// produces identical per-shard reports.
///
/// # Errors
///
/// Fails only if the shard environment cannot be constructed (boot or
/// mapping failure) — never because of an injected fault.
pub fn run_shard(
    spec: &CampaignSpec,
    campaign_seed: u64,
    shard: u64,
) -> Result<ShardReport, String> {
    let classes = spec.effective_classes();
    let mut rng = SplitMix64::seed_from_u64(CampaignSpec::shard_seed(campaign_seed, shard));
    let mut env = Env::new(spec)?;
    let mut report = ShardReport {
        shard,
        ..ShardReport::default()
    };
    for trial in 0..spec.shard_trials(shard) {
        let class = classes[(rng.next_u64() % classes.len() as u64) as usize];
        let result = match class {
            FaultClass::PmpteFlip => env.trial_pmpte_flip(&mut rng),
            FaultClass::RegCorrupt => env.trial_reg_corrupt(&mut rng),
            FaultClass::StaleCache => env.trial_stale(&mut rng),
            FaultClass::Interpose => env.trial_interpose(&mut rng),
            FaultClass::CompactRace => env.trial_compact_race(&mut rng),
        };
        report.absorb(trial, &result);
    }
    Ok(report)
}

/// Runs a whole campaign serially (shard 0, 1, …) and merges the result.
/// The parallel driver in `hpmpsim` fans the same shards over threads and
/// merges in the same order; both produce byte-identical reports.
///
/// # Errors
///
/// As [`run_shard`].
pub fn run_campaign(spec: &CampaignSpec, seed: u64) -> Result<CampaignReport, String> {
    let mut shards = Vec::new();
    for shard in 0..spec.shards {
        shards.push(run_shard(spec, seed, shard)?);
    }
    Ok(CampaignReport::merge(spec, seed, &shards))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_detects_everything() {
        let spec = CampaignSpec::parse("faults=40,shards=4,domains=2").expect("spec");
        let report = run_campaign(&spec, 7).expect("campaign");
        assert_eq!(report.trials, 40);
        assert_eq!(report.silent, 0, "silent violations:\n{}", report.records);
        assert_eq!(report.recovery_failures, 0, "{}", report.records);
        assert!(report.passed());
        // Every injected fault in every class was detected.
        assert_eq!(report.injected, report.detected, "{}", report.records);
        assert!(report.total_injected() > 0);
    }

    #[test]
    fn campaign_covers_all_flavors() {
        for flavor in ["pmp", "pmpt", "hpmp"] {
            let spec =
                CampaignSpec::parse(&format!("faults=24,shards=2,flavor={flavor}")).expect("spec");
            let report = run_campaign(&spec, 11).expect(flavor);
            assert!(report.passed(), "{flavor} failed:\n{}", report.records);
            assert_eq!(
                report.injected, report.detected,
                "{flavor} missed faults:\n{}",
                report.records
            );
        }
    }

    #[test]
    fn acceptance_thousand_faults_deterministic() {
        // The ISSUE acceptance bar: >= 1000 faults across all four classes,
        // zero panics, zero silent violations, and a byte-identical report
        // for the same seed regardless of shard execution order.
        let spec = CampaignSpec::parse("faults=1000,classes=all,shards=8,domains=2").expect("spec");
        let forward: Vec<ShardReport> = (0..spec.shards)
            .map(|s| run_shard(&spec, 1234, s).expect("shard"))
            .collect();
        let mut backward: Vec<ShardReport> = (0..spec.shards)
            .rev()
            .map(|s| run_shard(&spec, 1234, s).expect("shard"))
            .collect();
        backward.reverse();

        let a = CampaignReport::merge(&spec, 1234, &forward);
        let b = CampaignReport::merge(&spec, 1234, &backward);
        assert_eq!(a.summary_json(), b.summary_json());
        assert_eq!(a.records, b.records);

        assert_eq!(a.trials, 1000);
        assert!(
            a.total_injected() >= 900,
            "too many skips: {}",
            a.summary_json()
        );
        for (i, class) in FaultClass::ALL.iter().enumerate() {
            assert!(a.injected[i] > 0, "class {class} never injected");
        }
        assert_eq!(a.silent, 0, "silent violations:\n{}", a.records);
        assert_eq!(a.recovery_failures, 0, "{}", a.records);
        assert!(a.stale_rejects > 0, "epoch check never engaged");
    }

    #[test]
    fn export_and_summary_shape() {
        let spec = CampaignSpec::parse("faults=8,shards=2").expect("spec");
        let report = run_campaign(&spec, 3).expect("campaign");
        let mut reg = MetricsRegistry::new();
        report.export(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.value("faults.silent"), 0);
        assert_eq!(snap.value("faults.trials"), 8);
        assert_eq!(
            snap.subtree_total("faults.injected"),
            report.total_injected()
        );
        let json = report.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pass\":true"));
        // Each record line is one JSON object.
        for line in report.records.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
