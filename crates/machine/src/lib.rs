//! # hpmp-machine
//!
//! The simulated SoC that ties the substrates together: TLB lookup, page
//! walk, HPMP permission checks and the cache hierarchy, for both native
//! (Figures 2/4) and virtualized (Figure 8) accesses. The three isolation
//! schemes of the paper's evaluation are just three programmings of the same
//! HPMP register file, selected via [`SystemBuilder`].
//!
//! ```
//! use hpmp_machine::{IsolationScheme, MachineConfig, SystemBuilder};
//! use hpmp_memsim::{AccessKind, Perms, PrivMode, VirtAddr};
//!
//! let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::Hpmp).build();
//! sys.map_range(VirtAddr::new(0x10_0000), 4, Perms::RW);
//! sys.sync_pt_grants();
//! sys.machine.flush_microarch();
//! let out = sys.machine.access(&sys.space, VirtAddr::new(0x10_0000),
//!                              AccessKind::Read, PrivMode::Supervisor)?;
//! assert_eq!(out.refs.total(), 6); // Figure 4: 12 -> 6 under HPMP
//! # Ok::<(), hpmp_machine::Fault>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod machine;
mod multihart;
mod setup;
mod threaded;
mod virt;

pub use machine::{AccessOutcome, Fault, Machine, MachineConfig, MachineStats, RefBreakdown};
pub use multihart::{HartScheduler, MultiHartMachine};
pub use setup::{IsolationScheme, ScatteredPtFrames, System, SystemBuilder};
pub use threaded::{ExecBackend, SpscMailbox};
pub use virt::{VirtAccessOutcome, VirtMachine, VirtRefBreakdown, VirtScheme};
