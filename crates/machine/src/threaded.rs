//! The threaded SMP execution backend: harts on real OS threads.
//!
//! The deterministic backend ([`crate::multihart`]) interleaves harts on
//! one thread and shuttles a single canonical [`PhysMem`] between them, so
//! every cross-hart effect is synchronous by construction. This module
//! adds a second backend where each hart runs on its own OS thread during
//! an *epoch* — a maximal run of scheduler rounds containing no monitor
//! operation — and the driver joins all threads (the acknowledgement
//! barrier) before any serial monitor work runs. Three mechanisms keep the
//! two backends observably identical, counter for counter:
//!
//! 1. **Sharded `PhysMem` ownership.** [`MultiHartMachine::enable_threaded`]
//!    clones the canonical physical memory into every hart's slot once, and
//!    turns on the canonical copy's write log. Only the *active* hart (the
//!    one the serial phases run monitor operations on) ever mutates
//!    physical memory — page-table edits, monitor state — and at each epoch
//!    boundary the dirty pages are broadcast to the other shards. Inside an
//!    epoch every hart only **reads** its shard, so no synchronization is
//!    needed on the hot path.
//! 2. **Per-hart metric arenas.** Counter interning
//!    ([`hpmp_trace::CounterId`]) happens once, up front; during an epoch
//!    each hart bumps plain `u64` slots in a private
//!    [`hpmp_trace::CounterArena`], and the driver adds the arenas into the
//!    shared [`hpmp_trace::MetricsRegistry`] at the join. Counter totals
//!    are sums, so per-hart accumulation order cannot change them.
//! 3. **Mailbox IPIs with an acknowledgement barrier.** A monitor
//!    operation that would synchronously run each remote hart's shootdown
//!    handler instead posts a [`DeferredShootdown`] (handler cost fully
//!    computed at post time) to the receiver's SPSC mailbox. Each hart
//!    drains its mailbox at the start of the next epoch, *before* issuing
//!    any access, so no access can observe pre-shootdown state. The epoch
//!    join is the acknowledgement barrier that replaces the interleaver's
//!    synchronous sender stall — the stall cycles themselves are still
//!    charged at post time via [`ShootdownCost::sender_stall`], keeping
//!    the cycle accounting identical.
//!
//! What this deliberately does **not** model: memory-system contention
//! between harts (each shard has its own latency model, as in the
//! deterministic backend), cache coherence traffic for the broadcast, or
//! torn reads — the epoch discipline makes those unobservable by design.
//!
//! [`ShootdownCost::sender_stall`]: hpmp_core::ShootdownCost::sender_stall

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use hpmp_core::DeferredShootdown;
use hpmp_trace::{CounterArena, TraceSink};

use crate::machine::Machine;
use crate::multihart::{HartWiring, MultiHartMachine};

/// Which SMP execution backend drives a multi-hart run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// Single-threaded round-robin interleaver with synchronous shootdown
    /// delivery. Bit-for-bit reproducible; the reference semantics.
    #[default]
    Deterministic,
    /// One OS thread per hart inside each epoch, with sharded physical
    /// memory, per-hart metric arenas, and mailbox shootdown delivery.
    /// Produces the same merged counter snapshot as `Deterministic`.
    Threaded,
}

impl ExecBackend {
    /// Every backend name accepted by [`ExecBackend::from_str`], for
    /// `--help` text.
    pub const NAMES: [&'static str; 2] = ["deterministic", "threaded"];

    /// The canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Deterministic => "deterministic",
            ExecBackend::Threaded => "threaded",
        }
    }
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecBackend, String> {
        match s {
            "deterministic" => Ok(ExecBackend::Deterministic),
            "threaded" => Ok(ExecBackend::Threaded),
            other => Err(format!(
                "unknown backend '{other}' (expected one of: {})",
                ExecBackend::NAMES.join(", ")
            )),
        }
    }
}

/// A single-producer single-consumer shootdown mailbox.
///
/// The producer is the serial phase (the monitor operation posting
/// deferred handlers); the consumer is the owning hart's thread, which
/// drains the queue at the next epoch start. The epoch barrier guarantees
/// the two roles never run concurrently, so a plain queue behind `&mut`
/// suffices — "SPSC" names the protocol, the barrier provides the
/// exclusion.
#[derive(Debug, Default)]
pub struct SpscMailbox {
    queue: VecDeque<DeferredShootdown>,
}

impl SpscMailbox {
    /// Producer side: queue one deferred handler.
    pub fn post(&mut self, deferred: DeferredShootdown) {
        self.queue.push_back(deferred);
    }

    /// Consumer side: dequeue the oldest deferred handler.
    pub fn take(&mut self) -> Option<DeferredShootdown> {
        self.queue.pop_front()
    }

    /// Number of handlers awaiting the next epoch.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the mailbox is drained.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Threaded-backend state hung off a [`MultiHartMachine`] by
/// [`MultiHartMachine::enable_threaded`].
#[derive(Debug)]
pub(crate) struct ThreadedState {
    /// One shootdown mailbox per hart.
    mailboxes: Vec<SpscMailbox>,
    /// One metric arena per hart, sized to the registry at enable time.
    /// Sizing once is sound: the multi-hart registry interns all of its
    /// counters in `from_machines`, and the merged snapshot is rebuilt
    /// from scratch on every call, never grown in place.
    arenas: Vec<CounterArena>,
}

/// Runs one hart's epoch-start mailbox drain, then its epoch body.
///
/// The drain happens strictly before any access the body issues, which is
/// what makes deferred delivery indistinguishable from the deterministic
/// backend's synchronous delivery.
fn drain_mailbox<S: TraceSink>(
    machine: &mut Machine<S>,
    mailbox: &mut SpscMailbox,
    arena: &mut CounterArena,
    ids: HartWiring,
) {
    while let Some(deferred) = mailbox.take() {
        machine.invalidate_isolation();
        machine.charge_cycles(deferred.handler_cycles);
        arena.bump(ids.shootdowns, 1);
        arena.bump(ids.shootdown_cycles, deferred.handler_cycles);
    }
}

impl<S: TraceSink> MultiHartMachine<S> {
    /// Whether the threaded backend is active (shootdowns are deferred to
    /// mailboxes instead of delivered synchronously).
    pub fn threaded(&self) -> bool {
        self.threaded.is_some()
    }

    /// Switches this machine to the threaded backend: unshares physical
    /// memory into per-hart shards, starts write-logging on the canonical
    /// copy, and allocates per-hart mailboxes and metric arenas.
    ///
    /// Call after all setup (tenant mapping, monitor programming) is done,
    /// at the point where the deterministic backend would begin its round
    /// loop — the shards snapshot physical memory as of this call.
    ///
    /// # Panics
    /// If the threaded backend is already enabled.
    pub fn enable_threaded(&mut self) {
        assert!(self.threaded.is_none(), "threaded backend already enabled");
        let harts = self.harts.len();
        // Unshare: every inactive slot currently holds an empty
        // placeholder; replace it with a full copy of the canonical
        // memory. The clones inherit `log_writes = false`, so after this
        // exactly one PhysMem — the canonical, wherever swaps move it —
        // carries the write log.
        let canonical = self.harts[self.active].phys().clone();
        for (hart, machine) in self.harts.iter_mut().enumerate() {
            if hart != self.active {
                *machine.phys_mut() = canonical.clone();
            }
        }
        self.harts[self.active].phys_mut().set_write_log(true);
        self.threaded = Some(ThreadedState {
            mailboxes: (0..harts).map(|_| SpscMailbox::default()).collect(),
            arenas: (0..harts).map(|_| self.metrics.arena()).collect(),
        });
    }

    /// Queues one shootdown handler to `hart`'s mailbox, to be drained at
    /// the start of the hart's next epoch (or at [`Self::quiesce_threaded`]).
    ///
    /// # Panics
    /// If the threaded backend is not enabled or `hart` is out of range.
    pub fn defer_shootdown(&mut self, hart: u16, deferred: DeferredShootdown) {
        self.threaded
            .as_mut()
            .expect("threaded backend not enabled")
            .mailboxes[usize::from(hart)]
        .post(deferred);
    }

    /// Deferred shootdowns not yet drained, across all mailboxes.
    pub fn deferred_shootdowns(&self) -> usize {
        self.threaded.as_ref().map_or(0, |state| {
            state.mailboxes.iter().map(SpscMailbox::len).sum()
        })
    }

    /// Propagates pages the canonical memory dirtied since the last
    /// broadcast to every other shard.
    fn broadcast_dirty(&mut self) {
        let active = self.active;
        let dirty = self.harts[active].phys_mut().take_dirty_pfns();
        if dirty.is_empty() {
            return;
        }
        let (left, rest) = self.harts.split_at_mut(active);
        let (canonical, right) = rest.split_first_mut().expect("active hart in range");
        for shard in left.iter_mut().chain(right.iter_mut()) {
            for &pfn in &dirty {
                shard.phys_mut().copy_page_from(canonical.phys(), pfn);
            }
        }
    }

    /// Runs one epoch: broadcasts dirty pages, spawns one OS thread per
    /// hart (each drains its shootdown mailbox, then runs `body` against
    /// its own machine, shard, and `extra`), joins them all — the
    /// acknowledgement barrier — and folds every hart's metric arena into
    /// the shared registry.
    ///
    /// `body` must not touch monitor or cross-hart state; anything that
    /// would (domain switches, grants, revocations) belongs in the serial
    /// phase between epochs.
    ///
    /// # Panics
    /// If the threaded backend is not enabled, `extras.len()` differs from
    /// the hart count, or a hart thread panics.
    pub fn parallel_epoch<E, R>(
        &mut self,
        extras: &mut [E],
        body: impl Fn(u16, &mut Machine<S>, &mut E) -> R + Sync,
    ) -> Vec<R>
    where
        S: Send,
        E: Send,
        R: Send,
    {
        assert_eq!(
            extras.len(),
            self.harts.len(),
            "one extra per hart required"
        );
        self.broadcast_dirty();
        let state = self
            .threaded
            .as_mut()
            .expect("threaded backend not enabled");
        let ids = &self.ids;
        let body = &body;
        let results: Vec<R> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .harts
                .iter_mut()
                .zip(state.mailboxes.iter_mut())
                .zip(state.arenas.iter_mut())
                .zip(extras.iter_mut())
                .enumerate()
                .map(|(hart, (((machine, mailbox), arena), extra))| {
                    scope.spawn(move || {
                        drain_mailbox(machine, mailbox, arena, ids[hart]);
                        body(hart as u16, machine, extra)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("hart thread panicked"))
                .collect()
        });
        for arena in &mut state.arenas {
            self.metrics.absorb_arena(arena);
        }
        results
    }

    /// Drains every mailbox serially and folds any arena remainder into
    /// the shared registry, so a final snapshot taken after the last epoch
    /// accounts for shootdowns posted by the last serial phase. No-op
    /// under the deterministic backend.
    pub fn quiesce_threaded(&mut self) {
        if self.threaded.is_none() {
            return;
        }
        for hart in 0..self.harts.len() {
            loop {
                let deferred =
                    self.threaded.as_mut().expect("checked above").mailboxes[hart].take();
                let Some(deferred) = deferred else { break };
                let hart = hart as u16;
                self.machine(hart).invalidate_isolation();
                self.charge_shootdown(hart, deferred.handler_cycles);
            }
        }
        let state = self.threaded.as_mut().expect("checked above");
        for arena in &mut state.arenas {
            self.metrics.absorb_arena(arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_core::IpiKind;
    use hpmp_memsim::PhysAddr;

    use crate::machine::MachineConfig;

    fn mini_cluster(harts: usize) -> MultiHartMachine {
        MultiHartMachine::new(MachineConfig::rocket(), harts)
    }

    #[test]
    fn backend_parses_and_rejects() {
        assert_eq!(
            "deterministic".parse::<ExecBackend>().unwrap(),
            ExecBackend::Deterministic
        );
        assert_eq!(
            "threaded".parse::<ExecBackend>().unwrap(),
            ExecBackend::Threaded
        );
        assert_eq!(ExecBackend::default(), ExecBackend::Deterministic);
        let err = "turbo".parse::<ExecBackend>().unwrap_err();
        assert!(err.contains("turbo") && err.contains("threaded"), "{err}");
        for name in ExecBackend::NAMES {
            assert_eq!(name.parse::<ExecBackend>().unwrap().name(), name);
        }
    }

    #[test]
    fn dirty_broadcast_keeps_shards_in_sync() {
        let mut mh = mini_cluster(3);
        // Write through the canonical copy before unsharing.
        let addr = PhysAddr::new(0x8000_0000);
        mh.peek_mut(0).phys_mut().write_u64(addr, 0x1111);
        mh.enable_threaded();
        // Post-unshare write on the canonical copy: logged, and invisible
        // to the shards until the next epoch's broadcast.
        mh.peek_mut(0).phys_mut().write_u64(addr, 0x2222);
        let seen = mh.parallel_epoch(&mut [(); 3], |_, machine, ()| machine.phys().read_u64(addr));
        assert_eq!(seen, vec![0x2222, 0x2222, 0x2222]);
    }

    #[test]
    fn deferred_shootdowns_drain_before_epoch_accesses() {
        let mut mh = mini_cluster(2);
        mh.enable_threaded();
        let before_cycles = mh.peek(1).stats().cycles;
        mh.defer_shootdown(
            1,
            DeferredShootdown {
                kind: IpiKind::FenceOnly,
                handler_cycles: 123,
            },
        );
        assert_eq!(mh.deferred_shootdowns(), 1);
        mh.parallel_epoch(&mut [(); 2], |_, _machine, _extra| {});
        assert_eq!(mh.deferred_shootdowns(), 0);
        assert_eq!(
            mh.peek(1).stats().cycles,
            before_cycles + 123,
            "handler cycles charged to the receiving hart"
        );
        let snap = mh.metrics_snapshot();
        assert_eq!(snap.get("hart.1.shootdowns"), Some(1));
        assert_eq!(snap.get("hart.1.shootdown_cycles"), Some(123));
        assert_eq!(snap.get("hart.0.shootdowns"), Some(0));
    }

    #[test]
    fn quiesce_drains_tail_shootdowns() {
        let mut mh = mini_cluster(2);
        mh.enable_threaded();
        mh.defer_shootdown(
            1,
            DeferredShootdown {
                kind: IpiKind::Reprogram,
                handler_cycles: 77,
            },
        );
        mh.quiesce_threaded();
        assert_eq!(mh.deferred_shootdowns(), 0);
        let snap = mh.metrics_snapshot();
        assert_eq!(snap.get("hart.1.shootdowns"), Some(1));
        assert_eq!(snap.get("hart.1.shootdown_cycles"), Some(77));
    }
}
