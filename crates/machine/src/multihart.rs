//! A multi-hart machine: N cores with *private* microarchitectural state
//! (TLBs, PWC, PMPTW-Cache, PMP/HPMP register image) sharing one physical
//! memory.
//!
//! The paper's FPGA evaluation runs Penglai-HPMP on a multicore Rocket
//! SoC, where the costliest monitor path is cross-hart synchronization: a
//! change to one domain's holdings must be reflected on *every* hart whose
//! register image or permission caches could have observed the old state.
//! This type supplies the mechanics for that — per-hart [`Machine`]s, a
//! shared-memory discipline, an [`IpiFabric`], and per-hart
//! `hart.<i>.*` counters — while the policy (who gets a reprogram vs. a
//! fence) stays with the secure monitor, which knows each hart's scheduled
//! domain.
//!
//! ## Shared physical memory without sharing
//!
//! Every [`Machine`] owns its `PhysMem`; threading a shared one through
//! the walk path would ripple `Rc<RefCell<..>>` (or a lifetime) through
//! every layer for the benefit of exactly one caller. Instead the harts
//! take *turns* owning the one real `PhysMem`: [`MultiHartMachine::machine`]
//! O(1)-swaps it from the previously active hart into the requested one.
//! Only the active hart may touch memory — which is also true of the
//! simulation itself, since the deterministic interleaver steps one hart
//! at a time. The inactive harts hold empty placeholders; anything that
//! reads memory must go through [`MultiHartMachine::machine`] first.
//!
//! ## Determinism
//!
//! Hart interleaving is decided by [`HartScheduler`], a seeded SplitMix64
//! round-robin/weighted picker. No wall clock, no thread scheduling: the
//! same seed yields the same interleaving, so traces and metrics are
//! byte-identical at any `--jobs`.

use crate::machine::{Machine, MachineConfig};
use hpmp_core::{Ipi, IpiFabric, IpiKind, ShootdownCost};
use hpmp_memsim::SplitMix64;
use hpmp_trace::{CounterId, MetricsRegistry, NullSink, Snapshot, TraceSink};

/// Per-hart counter ids in the [`MultiHartMachine`]'s own registry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct HartWiring {
    ipis_sent: CounterId,
    ipis_received: CounterId,
    pub(crate) shootdowns: CounterId,
    pub(crate) shootdown_cycles: CounterId,
    fence_stall_cycles: CounterId,
}

impl HartWiring {
    fn wire(metrics: &mut MetricsRegistry, hart: usize) -> HartWiring {
        HartWiring {
            ipis_sent: metrics.counter(format!("hart.{hart}.ipis_sent")),
            ipis_received: metrics.counter(format!("hart.{hart}.ipis_received")),
            shootdowns: metrics.counter(format!("hart.{hart}.shootdowns")),
            shootdown_cycles: metrics.counter(format!("hart.{hart}.shootdown_cycles")),
            fence_stall_cycles: metrics.counter(format!("hart.{hart}.fence_stall_cycles")),
        }
    }
}

/// N harts around one physical memory. See the module docs for the
/// ownership discipline.
#[derive(Debug)]
pub struct MultiHartMachine<S: TraceSink = NullSink> {
    pub(crate) harts: Vec<Machine<S>>,
    /// Which hart currently owns the real `PhysMem` (the canonical copy,
    /// under the threaded backend).
    pub(crate) active: usize,
    fabric: IpiFabric,
    cost: ShootdownCost,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) ids: Vec<HartWiring>,
    /// Threaded-backend state (per-hart shootdown mailboxes and metric
    /// arenas); `None` under the deterministic interleaver. See
    /// [`crate::threaded`].
    pub(crate) threaded: Option<crate::threaded::ThreadedState>,
}

impl MultiHartMachine {
    /// Builds `harts` identical tracing-free machines. Hart 0 starts as
    /// the owner of physical memory.
    pub fn new(config: MachineConfig, harts: usize) -> MultiHartMachine {
        MultiHartMachine::from_machines((0..harts).map(|_| Machine::new(config)).collect())
    }
}

impl<S: TraceSink> MultiHartMachine<S> {
    /// Wraps pre-built machines (e.g. each with its own trace sink). The
    /// first machine's `PhysMem` is taken as the canonical shared memory;
    /// the others' must still be empty.
    ///
    /// # Panics
    /// If `machines` is empty or longer than `u16::MAX` harts.
    pub fn from_machines(mut machines: Vec<Machine<S>>) -> MultiHartMachine<S> {
        assert!(!machines.is_empty(), "a machine needs at least one hart");
        assert!(machines.len() <= usize::from(u16::MAX), "too many harts");
        let mut metrics = MetricsRegistry::new();
        let ids = (0..machines.len())
            .map(|i| HartWiring::wire(&mut metrics, i))
            .collect();
        for (i, m) in machines.iter_mut().enumerate() {
            m.set_hart_id(i as u16);
        }
        let harts = machines.len();
        MultiHartMachine {
            harts: machines,
            active: 0,
            fabric: IpiFabric::new(harts),
            cost: ShootdownCost::DEFAULT,
            metrics,
            ids,
            threaded: None,
        }
    }

    /// Number of harts.
    pub fn harts(&self) -> usize {
        self.harts.len()
    }

    /// The hart currently owning physical memory.
    pub fn active(&self) -> u16 {
        self.active as u16
    }

    /// The IPI cost calibration.
    pub fn shootdown_cost(&self) -> ShootdownCost {
        self.cost
    }

    /// Activates `hart` — moving the shared `PhysMem` into it — and
    /// returns it. O(1); a no-op when `hart` is already active.
    ///
    /// # Panics
    /// If `hart` is out of range.
    pub fn machine(&mut self, hart: u16) -> &mut Machine<S> {
        let hart = usize::from(hart);
        if hart != self.active {
            let (a, b) = (self.active.min(hart), self.active.max(hart));
            let (lo, hi) = self.harts.split_at_mut(b);
            std::mem::swap(lo[a].phys_mut(), hi[0].phys_mut());
            self.active = hart;
        }
        &mut self.harts[hart]
    }

    /// Borrows `hart` *without* activating it. Its caches, registers,
    /// metrics and sink are valid; its `PhysMem` is only valid if `hart`
    /// is the active one.
    pub fn peek(&self, hart: u16) -> &Machine<S> {
        &self.harts[usize::from(hart)]
    }

    /// Mutably borrows `hart` without activating it. Same validity caveat
    /// as [`MultiHartMachine::peek`]: do not touch physical memory through
    /// this borrow unless `hart` is active.
    pub fn peek_mut(&mut self, hart: u16) -> &mut Machine<S> {
        &mut self.harts[usize::from(hart)]
    }

    /// Posts a shootdown IPI from `from` to `to`, charging the sender the
    /// doorbell-write cost. Returns that cost.
    pub fn post_ipi(&mut self, from: u16, to: u16, kind: IpiKind) -> u64 {
        assert_ne!(from, to, "a hart does not IPI itself");
        self.fabric.post(to, Ipi { from, kind });
        self.metrics.bump(self.ids[usize::from(from)].ipis_sent, 1);
        let cost = self.cost.ipi_post;
        self.harts[usize::from(from)].charge_cycles(cost);
        cost
    }

    /// Takes `hart`'s pending IPI, counting the receipt. The caller (the
    /// SMP monitor layer) then performs and charges the handler work via
    /// [`MultiHartMachine::charge_shootdown`].
    pub fn take_ipi(&mut self, hart: u16) -> Option<Ipi> {
        let ipi = self.fabric.take(hart);
        if ipi.is_some() {
            self.metrics
                .bump(self.ids[usize::from(hart)].ipis_received, 1);
        }
        ipi
    }

    /// Charges one shootdown's receiver-side cost (trap, reprogram or
    /// fence, return) to `hart`: bumps `hart.<i>.shootdowns` and
    /// `hart.<i>.shootdown_cycles`, and folds the cycles into the hart's
    /// own cycle counter.
    pub fn charge_shootdown(&mut self, hart: u16, cycles: u64) {
        let ids = self.ids[usize::from(hart)];
        self.metrics.bump(ids.shootdowns, 1);
        self.metrics.bump(ids.shootdown_cycles, cycles);
        self.harts[usize::from(hart)].charge_cycles(cycles);
    }

    /// Charges the sender-side stall for a synchronous shootdown — the
    /// interconnect flight plus waiting for the slowest receiver's ack —
    /// to `hart` as `hart.<i>.fence_stall_cycles`.
    pub fn charge_fence_stall(&mut self, hart: u16, cycles: u64) {
        self.metrics
            .bump(self.ids[usize::from(hart)].fence_stall_cycles, cycles);
        self.harts[usize::from(hart)].charge_cycles(cycles);
    }

    /// Whether `hart` has an undelivered IPI (only under fault-injected
    /// suppression; the normal protocol is synchronous).
    pub fn ipi_pending(&self, hart: u16) -> bool {
        self.fabric.pending(hart)
    }

    /// Total machine cycles across all harts. Monotone and cheap (no
    /// snapshot allocation), this is the machine half of the global
    /// simulated clock that timeline slices and spans are stamped with.
    pub fn total_machine_cycles(&self) -> u64 {
        self.harts.iter().map(|m| m.stats().cycles).sum()
    }

    /// One merged snapshot: this driver's `hart.<i>.*` shootdown/fence
    /// counters, each hart's full machine registry re-prefixed under
    /// `hart.<i>.`, and `smp.*` aggregates (`smp.harts`, `smp.cycles` =
    /// total cycles across harts, `smp.ipis_sent/delivered/merged`).
    pub fn metrics_snapshot(&mut self) -> Snapshot {
        let mut merged = MetricsRegistry::new();
        for (name, value) in self.metrics.snapshot().iter() {
            merged.set(name, value);
        }
        let mut total_cycles = 0;
        for hart in 0..self.harts.len() {
            let snap = self.harts[hart].metrics_snapshot();
            total_cycles += snap.value("machine.cycles");
            for (name, value) in snap.iter() {
                merged.set(format!("hart.{hart}.{name}"), value);
            }
        }
        merged.set("smp.harts", self.harts.len() as u64);
        merged.set("smp.cycles", total_cycles);
        merged.set("smp.ipis_sent", self.fabric.sent());
        merged.set("smp.ipis_delivered", self.fabric.delivered());
        merged.set("smp.ipis_merged", self.fabric.merged());
        merged.snapshot()
    }

    /// Flushes every hart's trace sink.
    pub fn flush_sinks(&mut self) {
        for m in &mut self.harts {
            m.flush_sink();
        }
    }

    /// Consumes the machine, returning each hart's sink in hart order.
    pub fn into_sinks(self) -> Vec<S> {
        self.harts.into_iter().map(Machine::into_sink).collect()
    }
}

/// Snapshot support for the bounded model checker: a clone is an
/// independent fork of the whole multi-hart state (harts, registers,
/// caches, the shared `PhysMem`, IPI fabric, counters) that the DFS can
/// mutate and discard without touching the original.
///
/// Only the deterministic backend can be forked — the threaded backend
/// owns OS threads and per-hart mailboxes that have no meaningful copy.
impl<S: TraceSink + Clone> Clone for MultiHartMachine<S> {
    fn clone(&self) -> MultiHartMachine<S> {
        assert!(
            self.threaded.is_none(),
            "cannot fork a MultiHartMachine while the threaded backend is active"
        );
        MultiHartMachine {
            harts: self.harts.clone(),
            active: self.active,
            fabric: self.fabric.clone(),
            cost: self.cost,
            metrics: self.metrics.clone(),
            ids: self.ids.clone(),
            threaded: None,
        }
    }
}

/// A deterministic hart interleaver: seeded, weighted, wall-clock-free.
///
/// Each call to [`HartScheduler::next`] picks a hart with probability
/// proportional to its weight, from a [`SplitMix64`] stream. Equal weights
/// give a fair random interleaving; skewed weights model asymmetric load.
/// The sequence depends only on `(seed, weights)`, never on thread timing,
/// so multi-hart runs stay byte-identical at any `--jobs`.
#[derive(Clone, Debug)]
pub struct HartScheduler {
    rng: SplitMix64,
    weights: Vec<u64>,
    total: u64,
}

impl HartScheduler {
    /// A fair scheduler over `harts` harts.
    pub fn fair(seed: u64, harts: usize) -> HartScheduler {
        HartScheduler::weighted(seed, vec![1; harts])
    }

    /// A weighted scheduler; `weights[i]` is hart `i`'s relative share.
    ///
    /// # Panics
    /// If `weights` is empty or sums to zero.
    pub fn weighted(seed: u64, weights: Vec<u64>) -> HartScheduler {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "scheduler needs at least one positive weight");
        HartScheduler {
            rng: SplitMix64::seed_from_u64(seed),
            weights,
            total,
        }
    }

    /// The next hart to step.
    pub fn next_hart(&mut self) -> u16 {
        let mut pick = self.rng.gen_range(0..self.total);
        for (hart, &w) in self.weights.iter().enumerate() {
            if pick < w {
                return hart as u16;
            }
            pick -= w;
        }
        unreachable!("pick < total by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_memsim::{PhysAddr, PrivMode};

    fn machine() -> MultiHartMachine {
        MultiHartMachine::new(MachineConfig::rocket(), 3)
    }

    #[test]
    fn phys_mem_follows_the_active_hart() {
        let mut mh = machine();
        let addr = PhysAddr::new(0x8000_0000);
        mh.machine(0).phys_mut().write_u64(addr, 0xdead_beef);
        assert_eq!(mh.machine(0).phys().read_u64(addr), 0xdead_beef);
        // Hart 2 sees the same memory once activated...
        assert_eq!(mh.machine(2).phys().read_u64(addr), 0xdead_beef);
        mh.machine(2).phys_mut().write_u64(addr, 0x1234);
        // ...and hart 0 sees hart 2's write.
        assert_eq!(mh.machine(0).phys().read_u64(addr), 0x1234);
        assert_eq!(mh.active(), 0);
    }

    #[test]
    fn harts_have_private_register_files() {
        use hpmp_core::PmpRegion;
        use hpmp_memsim::Perms;

        let mut mh = machine();
        mh.machine(1)
            .regs_mut()
            .configure_segment(
                0,
                PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000),
                Perms::RW,
            )
            .unwrap();
        assert!(mh.peek(1).regs().entry_region(0).is_some());
        assert!(
            mh.peek(0).regs().entry_region(0).is_none(),
            "register images are per-hart"
        );
        assert!(mh.peek(2).regs().entry_region(0).is_none());
    }

    #[test]
    fn events_carry_their_hart_id() {
        use hpmp_memsim::{AccessKind, FrameAllocator, VirtAddr, PAGE_SIZE};
        use hpmp_paging::{AddressSpace, TranslationMode};
        use hpmp_trace::RingSink;

        let machines = (0..2)
            .map(|_| Machine::with_sink(MachineConfig::rocket(), RingSink::new(8)))
            .collect();
        let mut mh = MultiHartMachine::from_machines(machines);
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 8 * PAGE_SIZE);
        let space = {
            let m = mh.machine(1);
            AddressSpace::new(TranslationMode::Sv39, 1, m.phys_mut(), &mut frames).unwrap()
        };
        // An unmapped access faults, but still emits a trace event.
        let _ = mh.machine(1).access(
            &space,
            VirtAddr::new(0x10_0000),
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        let ev = mh.peek(1).sink().latest().expect("event emitted");
        assert_eq!(ev.hart, 1);
    }

    #[test]
    fn ipi_counters_and_costs() {
        let mut mh = machine();
        let cost = mh.post_ipi(0, 1, IpiKind::Reprogram);
        assert_eq!(cost, ShootdownCost::DEFAULT.ipi_post);
        assert!(mh.ipi_pending(1));
        let ipi = mh.take_ipi(1).unwrap();
        assert_eq!(ipi.from, 0);
        mh.charge_shootdown(1, 500);
        mh.charge_fence_stall(0, 700);

        let snap = mh.metrics_snapshot();
        assert_eq!(snap.value("hart.0.ipis_sent"), 1);
        assert_eq!(snap.value("hart.1.ipis_received"), 1);
        assert_eq!(snap.value("hart.1.shootdowns"), 1);
        assert_eq!(snap.value("hart.1.shootdown_cycles"), 500);
        assert_eq!(snap.value("hart.0.fence_stall_cycles"), 700);
        assert_eq!(snap.value("smp.harts"), 3);
        assert_eq!(snap.value("smp.ipis_sent"), 1);
        assert_eq!(snap.value("smp.ipis_delivered"), 1);
        // Sync costs land in each hart's cycle counter, and smp.cycles
        // totals them.
        assert_eq!(snap.value("hart.0.machine.cycles"), cost + 700);
        assert_eq!(snap.value("hart.1.machine.cycles"), 500);
        assert_eq!(snap.value("smp.cycles"), cost + 700 + 500);
    }

    #[test]
    fn scheduler_is_deterministic_and_fair() {
        let picks = |seed| -> Vec<u16> {
            let mut s = HartScheduler::fair(seed, 4);
            (0..64).map(|_| s.next_hart()).collect()
        };
        assert_eq!(picks(7), picks(7), "same seed, same interleaving");
        assert_ne!(picks(7), picks(8), "different seed, different interleaving");
        let p = picks(7);
        for hart in 0..4u16 {
            assert!(p.contains(&hart), "hart {hart} never scheduled");
        }
    }

    #[test]
    fn weighted_scheduler_respects_weights() {
        let mut s = HartScheduler::weighted(3, vec![9, 1]);
        let picks: Vec<u16> = (0..200).map(|_| s.next_hart()).collect();
        let ones = picks.iter().filter(|&&h| h == 1).count();
        assert!(
            ones > 0 && ones < 80,
            "9:1 weighting grossly violated: {ones}/200"
        );
    }
}
