//! The virtualized machine: 3-D page walks under HPMP (§6, Figures 8/13).
//!
//! A guest access walks guest PT × nested PT, and *every* host-physical
//! reference of that walk is validated by the isolation layer. The schemes
//! compared in Figure 13:
//!
//! * **PMP** — segments everywhere: 16 references, none for permissions.
//! * **PMP Table** — every reference pays a table walk: up to 48.
//! * **HPMP** — NPT pages in a contiguous "fast" GMS behind a segment:
//!   the 24 permission references for NPT pages vanish.
//! * **HPMP-GPT** — the guest also keeps its PT pages contiguous and the
//!   hypervisor backs them with a segment: only the 2 data-page permission
//!   references remain.
//!
//! Like [`Machine`](crate::machine::Machine), the virtualized machine is
//! generic over a [`TraceSink`]: the default [`NullSink`] variant records
//! nothing, and a recording sink gets one [`WalkEvent`] per guest access
//! whose nested/guest PT steps reproduce Figure 8's square/circle sequence.

use hpmp_core::{FillPolicy, PmpRegion, PmpTable, TableLevels};
use hpmp_memsim::{
    AccessKind, CoreModel, HitLevel, MemSystem, Perms, PhysAddr, PhysMem, PrivMode, VirtAddr,
    PAGE_SIZE,
};
use hpmp_paging::{
    apply_translation, nested_walk, AddressSpace, GuestView, NestedPageTable, NestedRefKind, Tlb,
    TlbEntry, TlbHit, TranslationMode, WalkCache,
};
use hpmp_trace::{
    AccessClass, AccessOp, CounterId, FaultCause, LatencyHistograms, LatencyHistogramsWiring,
    MetricsRegistry, NullSink, PmptwOutcome, PrivLevel, Snapshot, StepKind, TlbOutcome, TraceSink,
    WalkEvent, WalkStep, World,
};

use crate::machine::{Fault, MachineConfig};
use crate::setup::IsolationScheme;

/// The isolation scheme for the virtualized experiments, which adds the
/// HPMP-GPT refinement to the three base schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VirtScheme {
    /// Segment-based isolation for everything.
    Pmp,
    /// Table-based isolation for everything.
    PmpTable,
    /// NPT pages behind a segment; everything else behind the table.
    Hpmp,
    /// NPT *and* guest-PT pages behind segments.
    HpmpGpt,
}

impl std::fmt::Display for VirtScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VirtScheme::Pmp => "PMP",
            VirtScheme::PmpTable => "PMPT",
            VirtScheme::Hpmp => "HPMP",
            VirtScheme::HpmpGpt => "HPMP-GPT",
        })
    }
}

impl From<IsolationScheme> for VirtScheme {
    fn from(scheme: IsolationScheme) -> VirtScheme {
        match scheme {
            IsolationScheme::Pmp => VirtScheme::Pmp,
            IsolationScheme::PmpTable => VirtScheme::PmpTable,
            IsolationScheme::Hpmp => VirtScheme::Hpmp,
        }
    }
}

/// Reference breakdown of one guest access, split by Figure 8's categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtRefBreakdown {
    /// Nested-PT page reads (`nL*`).
    pub npt_reads: u64,
    /// Guest-PT page reads (`gL*`).
    pub gpt_reads: u64,
    /// The data reference.
    pub data_reads: u64,
    /// pmpte reads for checking NPT pages.
    pub pmpte_for_npt: u64,
    /// pmpte reads for checking guest-PT pages.
    pub pmpte_for_gpt: u64,
    /// pmpte reads for checking the data page.
    pub pmpte_for_data: u64,
}

impl VirtRefBreakdown {
    /// Total memory references.
    pub fn total(&self) -> u64 {
        self.npt_reads
            + self.gpt_reads
            + self.data_reads
            + self.pmpte_for_npt
            + self.pmpte_for_gpt
            + self.pmpte_for_data
    }
}

/// Outcome of one guest access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtAccessOutcome {
    /// End-to-end latency in core cycles.
    pub cycles: u64,
    /// Reference breakdown.
    pub refs: VirtRefBreakdown,
    /// Whether the combined (gVA → hPA) TLB hit.
    pub tlb_hit: bool,
    /// Host-physical address accessed.
    pub paddr: PhysAddr,
}

/// Aggregate counters for a virtualized machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtMachineStats {
    /// Successful guest accesses.
    pub accesses: u64,
    /// Total cycles across those accesses.
    pub cycles: u64,
    /// Faults taken.
    pub faults: u64,
    /// Combined-TLB-miss walks performed.
    pub walks: u64,
    /// Sum of all reference breakdowns (successful accesses only).
    pub refs: VirtRefBreakdown,
    /// References already issued by accesses that then faulted.
    pub aborted_refs: u64,
}

impl VirtMachineStats {
    /// Total references pushed into the memory system.
    pub fn issued_refs(&self) -> u64 {
        self.refs.total() + self.aborted_refs
    }

    /// Publishes every counter into `reg` under `prefix`.
    pub fn export(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.accesses"), self.accesses);
        reg.set(format!("{prefix}.cycles"), self.cycles);
        reg.set(format!("{prefix}.faults"), self.faults);
        reg.set(format!("{prefix}.walks"), self.walks);
        reg.set(format!("{prefix}.aborted_refs"), self.aborted_refs);
        reg.set(format!("{prefix}.refs"), self.refs.total());
        reg.set(format!("{prefix}.refs.npt_reads"), self.refs.npt_reads);
        reg.set(format!("{prefix}.refs.gpt_reads"), self.refs.gpt_reads);
        reg.set(format!("{prefix}.refs.data_reads"), self.refs.data_reads);
        reg.set(
            format!("{prefix}.refs.pmpte_for_npt"),
            self.refs.pmpte_for_npt,
        );
        reg.set(
            format!("{prefix}.refs.pmpte_for_gpt"),
            self.refs.pmpte_for_gpt,
        );
        reg.set(
            format!("{prefix}.refs.pmpte_for_data"),
            self.refs.pmpte_for_data,
        );
    }
}

/// Interned counter handles for everything a [`VirtMachine`] accounts,
/// wired once at construction (mirrors `MachineWiring` with the `virt.*`
/// prefix and the nested-walk reference breakdown).
#[derive(Debug)]
struct VirtWiring {
    accesses: CounterId,
    cycles: CounterId,
    faults: CounterId,
    walks: CounterId,
    aborted_refs: CounterId,
    refs_total: CounterId,
    npt_reads: CounterId,
    gpt_reads: CounterId,
    data_reads: CounterId,
    pmpte_for_npt: CounterId,
    pmpte_for_gpt: CounterId,
    pmpte_for_data: CounterId,
    tlb: hpmp_paging::TlbStatsIds,
    gtlb: hpmp_paging::TlbStatsIds,
    gpwc: hpmp_paging::WalkCacheStatsIds,
    pmptw_cache: hpmp_core::PmptwCacheStatsIds,
    mem: hpmp_memsim::MemSystemStatsIds,
    latency: LatencyHistogramsWiring,
}

impl VirtWiring {
    fn wire(reg: &mut MetricsRegistry) -> VirtWiring {
        VirtWiring {
            accesses: reg.counter("virt.accesses"),
            cycles: reg.counter("virt.cycles"),
            faults: reg.counter("virt.faults"),
            walks: reg.counter("virt.walks"),
            aborted_refs: reg.counter("virt.aborted_refs"),
            refs_total: reg.counter("virt.refs"),
            npt_reads: reg.counter("virt.refs.npt_reads"),
            gpt_reads: reg.counter("virt.refs.gpt_reads"),
            data_reads: reg.counter("virt.refs.data_reads"),
            pmpte_for_npt: reg.counter("virt.refs.pmpte_for_npt"),
            pmpte_for_gpt: reg.counter("virt.refs.pmpte_for_gpt"),
            pmpte_for_data: reg.counter("virt.refs.pmpte_for_data"),
            tlb: hpmp_paging::TlbStatsIds::wire(reg, "virt.tlb"),
            gtlb: hpmp_paging::TlbStatsIds::wire(reg, "virt.gtlb"),
            gpwc: hpmp_paging::WalkCacheStatsIds::wire(reg, "virt.gpwc"),
            pmptw_cache: hpmp_core::PmptwCacheStatsIds::wire(reg, "virt.pmptw_cache"),
            mem: hpmp_memsim::MemSystemStatsIds::wire(reg, "virt.mem"),
            latency: LatencyHistogramsWiring::wire(reg, "virt.latency"),
        }
    }

    /// The virtualized machine's own counters, for bulk reset.
    fn own_ids(&self) -> [CounterId; 12] {
        [
            self.accesses,
            self.cycles,
            self.faults,
            self.walks,
            self.aborted_refs,
            self.refs_total,
            self.npt_reads,
            self.gpt_reads,
            self.data_reads,
            self.pmpte_for_npt,
            self.pmpte_for_gpt,
            self.pmpte_for_data,
        ]
    }
}

/// A virtualized system: host memory, NPT, one guest, and the isolation
/// layer programmed per [`VirtScheme`].
#[derive(Debug)]
pub struct VirtMachine<S: TraceSink = NullSink> {
    core: CoreModel,
    mem_sys: MemSystem,
    phys: PhysMem,
    npt: NestedPageTable,
    guest: AddressSpace,
    /// Combined TLB: gVA page → hPA page.
    tlb: Tlb,
    /// G-stage TLB: gPA page → hPA page (survives `hfence.vvma`).
    gtlb: Tlb,
    /// Guest-stage walk cache.
    gpwc: WalkCache,
    regs: hpmp_core::HpmpRegFile,
    pmptw_cache: hpmp_core::PmptwCache,
    /// Pre-decoded check plan over `regs` (see `Machine::planned_check`).
    check_plan: hpmp_core::EntryPlan,
    scheme: VirtScheme,
    guest_data_gpa: PhysAddr,
    metrics: MetricsRegistry,
    ids: VirtWiring,
    hists: LatencyHistograms,
    sink: S,
    seq: u64,
}

/// Host RAM layout constants for the virtualized fixture.
const RAM_BASE: u64 = 0x8000_0000;
const RAM_SIZE: u64 = 1 << 30;
const NPT_POOL: u64 = RAM_BASE; // 8 MiB for NPT pages (contiguous)
const NPT_POOL_SIZE: u64 = 8 << 20;
const TABLE_POOL: u64 = RAM_BASE + NPT_POOL_SIZE; // PMP-table pages
const TABLE_POOL_SIZE: u64 = 24 << 20;
const GPT_HOST_POOL: u64 = TABLE_POOL + TABLE_POOL_SIZE; // host frames backing guest PT pages
const GPT_HOST_POOL_SIZE: u64 = 8 << 20;
const DATA_HOST_POOL: u64 = GPT_HOST_POOL + GPT_HOST_POOL_SIZE;

/// Guest-physical layout: PT pool first, then data.
const GPA_PT_POOL: u64 = 0x1000_0000;
const GPA_PT_POOL_SIZE: u64 = 8 << 20;
const GPA_DATA: u64 = GPA_PT_POOL + GPA_PT_POOL_SIZE;

impl VirtMachine {
    /// Builds the virtualized fixture: a guest with `guest_pages` data pages
    /// mapped starting at guest VA 0x20_0000, NPT pages contiguous in the
    /// NPT pool, guest-PT pages contiguous in guest-physical space (and in
    /// the host frames backing them).
    ///
    /// # Panics
    ///
    /// Panics if the fixed pools are exhausted — enlarge the constants
    /// rather than handling it at runtime; this is a fixture.
    pub fn new(config: MachineConfig, scheme: VirtScheme, guest_pages: u64) -> VirtMachine {
        Self::with_options(config, scheme, guest_pages, false)
    }

    /// As [`VirtMachine::new`], with control over guest-data backing:
    /// `fragmented_backing` strides the host frames behind the guest's data
    /// pages (2 MiB + one page apart), reproducing the paper's §8.8 cases
    /// (3)/(4) where "fragmented host virtual pages" back the guest.
    ///
    /// # Panics
    ///
    /// As [`VirtMachine::new`].
    pub fn with_options(
        config: MachineConfig,
        scheme: VirtScheme,
        guest_pages: u64,
        fragmented_backing: bool,
    ) -> VirtMachine {
        Self::with_sink_options(config, scheme, guest_pages, fragmented_backing, NullSink)
    }
}

impl<S: TraceSink> VirtMachine<S> {
    /// As [`VirtMachine::new`], recording one [`WalkEvent`] per guest access
    /// into `sink`.
    ///
    /// # Panics
    ///
    /// As [`VirtMachine::new`].
    pub fn with_sink(
        config: MachineConfig,
        scheme: VirtScheme,
        guest_pages: u64,
        sink: S,
    ) -> VirtMachine<S> {
        Self::with_sink_options(config, scheme, guest_pages, false, sink)
    }

    /// The fully general constructor: scheme, backing layout, and sink.
    ///
    /// # Panics
    ///
    /// As [`VirtMachine::new`].
    pub fn with_sink_options(
        config: MachineConfig,
        scheme: VirtScheme,
        guest_pages: u64,
        fragmented_backing: bool,
        sink: S,
    ) -> VirtMachine<S> {
        let mut phys = PhysMem::new();
        let mut npt_frames =
            hpmp_memsim::FrameAllocator::new(PhysAddr::new(NPT_POOL), NPT_POOL_SIZE);
        let mut npt = NestedPageTable::new(&mut phys, &mut npt_frames).expect("NPT root");

        // Back the guest-physical PT pool and data pool with host frames.
        let mut gpt_host =
            hpmp_memsim::FrameAllocator::new(PhysAddr::new(GPT_HOST_POOL), GPT_HOST_POOL_SIZE);
        for i in 0..GPA_PT_POOL_SIZE / PAGE_SIZE {
            let gpa = PhysAddr::new(GPA_PT_POOL + i * PAGE_SIZE);
            let hpa = gpt_host.alloc().expect("guest PT host frames");
            npt.map_page(&mut phys, &mut npt_frames, gpa, hpa, true)
                .expect("NPT map");
        }
        let data_pages_backed = guest_pages.max(64) * 2;
        let backing_stride = if fragmented_backing {
            (2u64 << 20) / PAGE_SIZE + 1
        } else {
            1
        };
        for i in 0..data_pages_backed {
            let gpa = PhysAddr::new(GPA_DATA + i * PAGE_SIZE);
            let hpa = PhysAddr::new(DATA_HOST_POOL + i * backing_stride * PAGE_SIZE);
            npt.map_page(&mut phys, &mut npt_frames, gpa, hpa, true)
                .expect("NPT map");
        }

        // Build the guest page table in guest-physical memory.
        let mut guest_pt_frames =
            hpmp_memsim::FrameAllocator::new(PhysAddr::new(GPA_PT_POOL), GPA_PT_POOL_SIZE);
        let mut view = GuestView::new(&mut phys, &npt);
        let mut guest =
            AddressSpace::new(TranslationMode::Sv39, 5, &mut view, &mut guest_pt_frames)
                .expect("guest root");
        for i in 0..guest_pages {
            let gva = VirtAddr::new(0x20_0000 + i * PAGE_SIZE);
            let gpa = PhysAddr::new(GPA_DATA + i * PAGE_SIZE);
            guest
                .map_page(&mut view, &mut guest_pt_frames, gva, gpa, Perms::RW, true)
                .expect("guest map");
        }

        // Program the isolation layer.
        let ram = PmpRegion::new(PhysAddr::new(RAM_BASE), RAM_SIZE);
        let mut regs = hpmp_core::HpmpRegFile::new();
        let mut table_frames =
            hpmp_memsim::FrameAllocator::new(PhysAddr::new(TABLE_POOL), TABLE_POOL_SIZE);
        match scheme {
            VirtScheme::Pmp => {
                regs.configure_segment(0, ram, Perms::RWX).expect("segment");
            }
            VirtScheme::PmpTable | VirtScheme::Hpmp | VirtScheme::HpmpGpt => {
                let mut table = PmpTable::new(ram, &mut phys, &mut table_frames).expect("table");
                table
                    .set_range_perm(
                        &mut phys,
                        &mut table_frames,
                        PhysAddr::new(RAM_BASE),
                        RAM_SIZE / 2,
                        Perms::RWX,
                        FillPolicy::PerPage,
                    )
                    .expect("table fill");
                let mut next = 0;
                if scheme == VirtScheme::Hpmp || scheme == VirtScheme::HpmpGpt {
                    regs.configure_segment(
                        next,
                        PmpRegion::new(PhysAddr::new(NPT_POOL), NPT_POOL_SIZE),
                        Perms::RW,
                    )
                    .expect("NPT fast GMS");
                    next += 1;
                }
                if scheme == VirtScheme::HpmpGpt {
                    regs.configure_segment(
                        next,
                        PmpRegion::new(PhysAddr::new(GPT_HOST_POOL), GPT_HOST_POOL_SIZE),
                        Perms::RW,
                    )
                    .expect("GPT fast GMS");
                    next += 1;
                }
                regs.configure_table(next, ram, table.root(), TableLevels::Two)
                    .expect("table entry");
            }
        }

        let mut metrics = MetricsRegistry::new();
        let ids = VirtWiring::wire(&mut metrics);
        VirtMachine {
            core: config.core,
            mem_sys: MemSystem::new(config.mem),
            phys,
            npt,
            guest,
            tlb: Tlb::new(config.tlb),
            gtlb: Tlb::new(config.tlb),
            gpwc: WalkCache::new(config.pwc),
            regs,
            pmptw_cache: hpmp_core::PmptwCache::new(config.pmptw_cache),
            check_plan: hpmp_core::EntryPlan::default(),
            scheme,
            guest_data_gpa: PhysAddr::new(GPA_DATA),
            metrics,
            ids,
            hists: LatencyHistograms::new(),
            sink,
            seq: 0,
        }
    }

    /// The scheme this machine was built for.
    pub fn scheme(&self) -> VirtScheme {
        self.scheme
    }

    /// Guest-physical base of the guest's data pool (for tests).
    pub fn guest_data_gpa(&self) -> PhysAddr {
        self.guest_data_gpa
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the machine, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Aggregate counters, reconstructed from the interned registry (the
    /// live accounting is a `Vec<u64>` behind [`CounterId`] handles).
    pub fn stats(&self) -> VirtMachineStats {
        VirtMachineStats {
            accesses: self.metrics.get(self.ids.accesses),
            cycles: self.metrics.get(self.ids.cycles),
            faults: self.metrics.get(self.ids.faults),
            walks: self.metrics.get(self.ids.walks),
            refs: VirtRefBreakdown {
                npt_reads: self.metrics.get(self.ids.npt_reads),
                gpt_reads: self.metrics.get(self.ids.gpt_reads),
                data_reads: self.metrics.get(self.ids.data_reads),
                pmpte_for_npt: self.metrics.get(self.ids.pmpte_for_npt),
                pmpte_for_gpt: self.metrics.get(self.ids.pmpte_for_gpt),
                pmpte_for_data: self.metrics.get(self.ids.pmpte_for_data),
            },
            aborted_refs: self.metrics.get(self.ids.aborted_refs),
        }
    }

    /// Per-access-class latency histograms.
    pub fn histograms(&self) -> &LatencyHistograms {
        &self.hists
    }

    /// One snapshot unifying the virtualized machine's counters under
    /// dotted `virt.*` names.
    pub fn metrics_snapshot(&mut self) -> Snapshot {
        let refs_total = self.stats().refs.total();
        self.metrics.store(self.ids.refs_total, refs_total);
        self.tlb.stats().store(&mut self.metrics, &self.ids.tlb);
        self.gtlb.stats().store(&mut self.metrics, &self.ids.gtlb);
        self.gpwc.stats().store(&mut self.metrics, &self.ids.gpwc);
        self.pmptw_cache
            .stats()
            .store(&mut self.metrics, &self.ids.pmptw_cache);
        self.mem_sys.stats().store(&mut self.metrics, &self.ids.mem);
        self.ids.latency.store(&mut self.metrics, &self.hists);
        self.metrics.snapshot()
    }

    /// Checks that every reference the machine claims to have issued is
    /// visible in the memory system (as
    /// [`Machine::verify_accounting`](crate::machine::Machine::verify_accounting)).
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when the counters disagree.
    pub fn verify_accounting(&self) -> Result<(), String> {
        let stats = self.stats();
        let claimed = stats.issued_refs();
        let observed = self.mem_sys.stats().accesses;
        if claimed == observed {
            Ok(())
        } else {
            Err(format!(
                "virt machine claims {claimed} references (refs {} + aborted {}) but \
                 the memory system observed {observed}",
                stats.refs.total(),
                stats.aborted_refs
            ))
        }
    }

    /// Clears all counters and histograms (cache contents untouched; the
    /// event sequence number keeps running).
    pub fn reset_stats(&mut self) {
        for id in self.ids.own_ids() {
            self.metrics.store(id, 0);
        }
        self.mem_sys.reset_stats();
        self.tlb.reset_stats();
        self.gtlb.reset_stats();
        self.gpwc.reset_stats();
        self.pmptw_cache.reset_stats();
        self.hists.reset();
    }

    /// `hfence.vvma`: flush guest-stage translations, keep the G-stage TLB.
    pub fn hfence_vvma(&mut self) {
        self.tlb.flush_all();
        self.gpwc.flush_all();
    }

    /// `hfence.gvma`: flush everything derived from the NPT as well.
    pub fn hfence_gvma(&mut self) {
        self.tlb.flush_all();
        self.gpwc.flush_all();
        self.gtlb.flush_all();
    }

    /// Cold state: empty caches and TLBs (TC1).
    pub fn flush_microarch(&mut self) {
        self.mem_sys.flush_all();
        self.hfence_gvma();
        self.pmptw_cache.flush_all();
    }

    /// Performs one guest load/store (the paper uses `hlv.d` from the host
    /// to avoid guest-software noise; the reference sequence is identical).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] on translation failure in either stage or an
    /// isolation denial.
    pub fn access(&mut self, gva: VirtAddr, kind: AccessKind) -> Result<VirtAccessOutcome, Fault> {
        let mode = PrivMode::Supervisor; // VS-mode accesses are checked like S.
        let mut cycles = self.core.pipeline_overhead + 2; // two-stage TLB tax
        let mut refs = VirtRefBreakdown::default();
        let mut steps: Vec<WalkStep> = Vec::new();
        let mut pmptw: Option<PmptwOutcome> = None;

        // Combined TLB hit: data reference only (permission inlined).
        if let Some((entry, hit)) = self.tlb.lookup(self.guest.asid(), gva) {
            let tlb_out = if hit == TlbHit::L2 {
                TlbOutcome::L2Hit
            } else {
                TlbOutcome::L1Hit
            };
            let paddr = apply_translation(&entry, gva);
            if !entry.page_perms.allows(kind) {
                return Err(self.abort(
                    Fault::PtePermission(gva),
                    refs,
                    kind,
                    gva,
                    Some(paddr.raw()),
                    tlb_out,
                    pmptw,
                    cycles,
                    steps,
                ));
            }
            if !entry.isolation_perms.allows(kind) {
                return Err(self.abort(
                    Fault::IsolationOnData(paddr),
                    refs,
                    kind,
                    gva,
                    Some(paddr.raw()),
                    tlb_out,
                    pmptw,
                    cycles,
                    steps,
                ));
            }
            let data_cycles = self.data_ref(paddr, kind);
            cycles += data_cycles;
            if S::ENABLED {
                steps.push(WalkStep {
                    kind: StepKind::Data,
                    level: None,
                    addr: paddr.raw(),
                    cycles: data_cycles,
                });
            }
            refs.data_reads = 1;
            self.metrics.bump(self.ids.accesses, 1);
            self.metrics.bump(self.ids.cycles, cycles);
            self.accumulate(refs);
            self.hists
                .record(AccessClass::classify(op_of(kind), true), cycles);
            self.emit(
                kind,
                gva,
                Some(paddr.raw()),
                tlb_out,
                pmptw,
                cycles,
                None,
                steps,
            );
            return Ok(VirtAccessOutcome {
                cycles,
                refs,
                tlb_hit: true,
                paddr,
            });
        }

        // Two-stage walk.
        self.metrics.bump(self.ids.walks, 1);
        let result = nested_walk(
            &self.phys,
            &self.guest,
            &self.npt,
            &mut self.gtlb,
            &mut self.gpwc,
            gva,
        );
        for r in &result.refs {
            let check = self.planned_check(r.addr, AccessKind::Read, mode);
            let pmpte_count = check.refs.len() as u64;
            cycles += self.charge_pmpte_refs(&check.refs, &mut steps);
            pmptw = check.pmptw.or(pmptw);
            match r.kind {
                NestedRefKind::NestedPt { .. } => refs.pmpte_for_npt += pmpte_count,
                NestedRefKind::GuestPt { .. } => refs.pmpte_for_gpt += pmpte_count,
            }
            if !check.allowed {
                return Err(self.abort(
                    Fault::IsolationOnPtPage(r.addr),
                    refs,
                    kind,
                    gva,
                    None,
                    TlbOutcome::Miss,
                    pmptw,
                    cycles,
                    steps,
                ));
            }
            let pt_cycles = self.mem_sys.access_ptw(r.addr).cycles;
            cycles += pt_cycles;
            match r.kind {
                NestedRefKind::NestedPt { level } => {
                    refs.npt_reads += 1;
                    if S::ENABLED {
                        steps.push(WalkStep {
                            kind: StepKind::NestedPt,
                            level: Some(level as u8),
                            addr: r.addr.raw(),
                            cycles: pt_cycles,
                        });
                    }
                }
                NestedRefKind::GuestPt { level } => {
                    refs.gpt_reads += 1;
                    if S::ENABLED {
                        steps.push(WalkStep {
                            kind: StepKind::GuestPt,
                            level: Some(level as u8),
                            addr: r.addr.raw(),
                            cycles: pt_cycles,
                        });
                    }
                }
            }
        }
        let Some(translation) = result.translation else {
            return Err(self.abort(
                Fault::PageFault(gva),
                refs,
                kind,
                gva,
                None,
                TlbOutcome::Miss,
                pmptw,
                cycles,
                steps,
            ));
        };
        if !translation.perms.allows(kind) {
            return Err(self.abort(
                Fault::PtePermission(gva),
                refs,
                kind,
                gva,
                None,
                TlbOutcome::Miss,
                pmptw,
                cycles,
                steps,
            ));
        }

        // Data-page permission check + TLB refill + data reference.
        let check = self.planned_check(translation.paddr, kind, mode);
        refs.pmpte_for_data += check.refs.len() as u64;
        cycles += self.charge_pmpte_refs(&check.refs, &mut steps);
        pmptw = check.pmptw.or(pmptw);
        if !check.allowed {
            return Err(self.abort(
                Fault::IsolationOnData(translation.paddr),
                refs,
                kind,
                gva,
                Some(translation.paddr.raw()),
                TlbOutcome::Miss,
                pmptw,
                cycles,
                steps,
            ));
        }
        self.tlb.fill(TlbEntry {
            asid: self.guest.asid(),
            vpn: gva.page_number(),
            frame: translation.paddr.page_base(),
            page_perms: translation.perms,
            isolation_perms: check.perms,
            user: translation.user,
            epoch: 0,
        });
        let data_cycles = self.data_ref(translation.paddr, kind);
        cycles += data_cycles;
        if S::ENABLED {
            steps.push(WalkStep {
                kind: StepKind::Data,
                level: None,
                addr: translation.paddr.raw(),
                cycles: data_cycles,
            });
        }
        refs.data_reads = 1;

        self.metrics.bump(self.ids.accesses, 1);
        self.metrics.bump(self.ids.cycles, cycles);
        self.accumulate(refs);
        self.hists
            .record(AccessClass::classify(op_of(kind), false), cycles);
        self.emit(
            kind,
            gva,
            Some(translation.paddr.raw()),
            TlbOutcome::Miss,
            pmptw,
            cycles,
            None,
            steps,
        );
        Ok(VirtAccessOutcome {
            cycles,
            refs,
            tlb_hit: false,
            paddr: translation.paddr,
        })
    }

    /// Books a faulting access (mirrors `Machine::abort`).
    #[allow(clippy::too_many_arguments)]
    fn abort(
        &mut self,
        fault: Fault,
        refs: VirtRefBreakdown,
        kind: AccessKind,
        gva: VirtAddr,
        paddr: Option<u64>,
        tlb: TlbOutcome,
        pmptw: Option<PmptwOutcome>,
        cycles: u64,
        steps: Vec<WalkStep>,
    ) -> Fault {
        self.metrics.bump(self.ids.faults, 1);
        self.metrics.bump(self.ids.aborted_refs, refs.total());
        self.emit(
            kind,
            gva,
            paddr,
            tlb,
            pmptw,
            cycles,
            Some(fault.cause()),
            steps,
        );
        fault
    }

    /// Emits one trace event; compiles to nothing when the sink is disabled.
    /// `pipeline_cycles` includes the two-stage TLB tax so events balance.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        kind: AccessKind,
        gva: VirtAddr,
        paddr: Option<u64>,
        tlb: TlbOutcome,
        pmptw: Option<PmptwOutcome>,
        cycles: u64,
        fault: Option<FaultCause>,
        steps: Vec<WalkStep>,
    ) {
        if !S::ENABLED {
            return;
        }
        let event = WalkEvent {
            seq: self.seq,
            // The virtualized stack is only driven single-hart.
            hart: 0,
            world: World::Guest,
            op: op_of(kind),
            privilege: PrivLevel::Supervisor,
            va: gva.raw(),
            paddr,
            tlb,
            pwc_level: None,
            pmptw,
            pipeline_cycles: self.core.pipeline_overhead + 2,
            cycles,
            fault,
            steps,
        };
        self.seq += 1;
        self.sink.record(&event);
    }

    fn accumulate(&mut self, refs: VirtRefBreakdown) {
        self.metrics.bump(self.ids.npt_reads, refs.npt_reads);
        self.metrics.bump(self.ids.gpt_reads, refs.gpt_reads);
        self.metrics.bump(self.ids.data_reads, refs.data_reads);
        self.metrics
            .bump(self.ids.pmpte_for_npt, refs.pmpte_for_npt);
        self.metrics
            .bump(self.ids.pmpte_for_gpt, refs.pmpte_for_gpt);
        self.metrics
            .bump(self.ids.pmpte_for_data, refs.pmpte_for_data);
    }

    /// Isolation check through the cached pre-decoded plan, rebuilt iff
    /// the register file mutated (see `Machine::planned_check`).
    #[inline]
    fn planned_check(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        mode: PrivMode,
    ) -> hpmp_core::CheckOutcome {
        if self.check_plan.generation() != self.regs.generation() {
            self.check_plan = self.regs.plan();
        }
        self.check_plan
            .check(&self.phys, &mut self.pmptw_cache, addr, kind, mode)
    }

    fn charge_pmpte_refs(
        &mut self,
        pmpte_refs: &[hpmp_core::PmptRef],
        steps: &mut Vec<WalkStep>,
    ) -> u64 {
        // Walk references are a dependent pointer chase: the out-of-order
        // window cannot overlap them, so they cost their raw latency.
        let mut cycles = 0;
        for r in pmpte_refs {
            let c = self.mem_sys.access_ptw(r.addr).cycles;
            if S::ENABLED {
                steps.push(WalkStep {
                    kind: if r.is_root {
                        StepKind::PmptRoot
                    } else {
                        StepKind::PmptLeaf
                    },
                    level: None,
                    addr: r.addr.raw(),
                    cycles: c,
                });
            }
            cycles += c;
        }
        cycles
    }

    fn data_ref(&mut self, paddr: PhysAddr, kind: AccessKind) -> u64 {
        let outcome = self.mem_sys.access(paddr);
        let hit = outcome.level != HitLevel::Dram;
        let mut cycles = self.core.observed_ref_cycles(outcome.cycles, hit);
        if kind == AccessKind::Write && outcome.level != HitLevel::L1 {
            cycles += self.core.store_miss_penalty;
        }
        cycles
    }
}

/// The trace operation for a memsim access kind.
fn op_of(kind: AccessKind) -> AccessOp {
    match kind {
        AccessKind::Read => AccessOp::Read,
        AccessKind::Write => AccessOp::Write,
        AccessKind::Fetch => AccessOp::Fetch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_trace::RingSink;

    const GVA: VirtAddr = VirtAddr::new(0x20_0000);

    fn machine(scheme: VirtScheme) -> VirtMachine {
        VirtMachine::new(MachineConfig::rocket(), scheme, 16)
    }

    /// Figure 8: PMP = 16 refs, PMPT = 48, HPMP = 24, HPMP-GPT = 18.
    #[test]
    fn cold_reference_counts_match_section_6() {
        let expect = [
            (VirtScheme::Pmp, 16, 0, 0, 0),
            (VirtScheme::PmpTable, 16, 24, 6, 2),
            (VirtScheme::Hpmp, 16, 0, 6, 2),
            (VirtScheme::HpmpGpt, 16, 0, 0, 2),
        ];
        for (scheme, base, npt_pmpte, gpt_pmpte, data_pmpte) in expect {
            let mut m = machine(scheme);
            m.flush_microarch();
            let out = m.access(GVA, AccessKind::Read).unwrap();
            let walk_refs = out.refs.npt_reads + out.refs.gpt_reads + out.refs.data_reads;
            assert_eq!(walk_refs, base, "{scheme}: base walk refs");
            assert_eq!(
                out.refs.pmpte_for_npt, npt_pmpte,
                "{scheme}: NPT pmpte refs"
            );
            assert_eq!(
                out.refs.pmpte_for_gpt, gpt_pmpte,
                "{scheme}: GPT pmpte refs"
            );
            assert_eq!(
                out.refs.pmpte_for_data, data_pmpte,
                "{scheme}: data pmpte refs"
            );
            assert_eq!(
                out.refs.total(),
                base + npt_pmpte + gpt_pmpte + data_pmpte,
                "{scheme}: total"
            );
        }
    }

    #[test]
    fn tlb_hit_single_reference() {
        let mut m = machine(VirtScheme::PmpTable);
        m.access(GVA, AccessKind::Read).unwrap();
        let out = m.access(GVA, AccessKind::Read).unwrap();
        assert!(out.tlb_hit);
        assert_eq!(out.refs.total(), 1);
    }

    #[test]
    fn hfence_vvma_cheaper_than_gvma() {
        let mut cost = std::collections::HashMap::new();
        for (name, gvma) in [("v", false), ("g", true)] {
            let mut m = machine(VirtScheme::PmpTable);
            m.access(GVA, AccessKind::Read).unwrap();
            if gvma {
                m.hfence_gvma();
            } else {
                m.hfence_vvma();
            }
            let out = m.access(GVA, AccessKind::Read).unwrap();
            cost.insert(name, out.refs.total());
        }
        assert!(
            cost["v"] < cost["g"],
            "hfence.vvma {} < hfence.gvma {}",
            cost["v"],
            cost["g"]
        );
    }

    #[test]
    fn latency_ordering_matches_figure_13() {
        let mut lat = Vec::new();
        for scheme in [
            VirtScheme::Pmp,
            VirtScheme::HpmpGpt,
            VirtScheme::Hpmp,
            VirtScheme::PmpTable,
        ] {
            let mut m = machine(scheme);
            m.flush_microarch();
            lat.push(m.access(GVA, AccessKind::Read).unwrap().cycles);
        }
        assert!(lat[0] < lat[1], "PMP < HPMP-GPT");
        assert!(lat[1] < lat[2], "HPMP-GPT < HPMP");
        assert!(lat[2] < lat[3], "HPMP < PMPT");
    }

    #[test]
    fn unmapped_gva_faults() {
        let mut m = machine(VirtScheme::Pmp);
        assert!(matches!(
            m.access(VirtAddr::new(0x5000_0000), AccessKind::Read),
            Err(Fault::PageFault(_))
        ));
    }

    #[test]
    fn translation_lands_in_host_data_pool() {
        let mut m = machine(VirtScheme::Pmp);
        let out = m.access(GVA + 0x123, AccessKind::Read).unwrap();
        assert_eq!(out.paddr, PhysAddr::new(DATA_HOST_POOL + 0x123));
    }

    #[test]
    fn traced_guest_walk_reproduces_figure_8_steps() {
        let mut m = VirtMachine::with_sink(
            MachineConfig::rocket(),
            VirtScheme::PmpTable,
            16,
            RingSink::new(8),
        );
        m.flush_microarch();
        let out = m.access(GVA, AccessKind::Read).unwrap();
        let event = m.sink().events().next().cloned().expect("one event");
        assert_eq!(event.world, World::Guest);
        assert!(event.is_balanced(), "guest event balances");
        assert_eq!(event.cycles, out.cycles);
        assert_eq!(
            event.count_of(StepKind::NestedPt) as u64,
            out.refs.npt_reads
        );
        assert_eq!(event.count_of(StepKind::GuestPt) as u64, out.refs.gpt_reads);
        assert_eq!(
            event.count_of(StepKind::PmptRoot) + event.count_of(StepKind::PmptLeaf),
            (out.refs.pmpte_for_npt + out.refs.pmpte_for_gpt + out.refs.pmpte_for_data) as usize
        );
    }

    #[test]
    fn virt_accounting_and_snapshot_agree() {
        let mut m = machine(VirtScheme::Hpmp);
        m.access(GVA, AccessKind::Read).unwrap();
        m.access(GVA, AccessKind::Read).unwrap();
        m.access(VirtAddr::new(0x5000_0000), AccessKind::Read)
            .unwrap_err();
        m.verify_accounting().expect("refs all accounted for");
        let snap = m.metrics_snapshot();
        assert_eq!(snap.value("virt.accesses"), m.stats().accesses);
        assert_eq!(snap.value("virt.refs"), m.stats().refs.total());
        assert_eq!(snap.value("virt.mem.accesses"), m.stats().issued_refs());
    }
}
