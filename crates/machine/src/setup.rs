//! Canonical system setups for the three isolation schemes.
//!
//! The paper compares **PMP** (all-segment), **PMP Table** (all-table) and
//! **HPMP** (segments for PT pages, table for data). [`SystemBuilder`]
//! constructs a flat S-mode system in each configuration: one protected RAM
//! region, one pool of PT-page frames, and an address space whose PT pages
//! come from that pool — contiguous (HPMP's "fast" GMS) or deliberately
//! scattered through RAM (the baseline).

use hpmp_core::{FillPolicy, PmpRegion, PmpTable, TableLevels};
use hpmp_memsim::{FrameAllocator, Perms, PhysAddr, VirtAddr, PAGE_SIZE};
use hpmp_paging::{AddressSpace, PtFrameSource, TranslationMode};
use hpmp_trace::{NullSink, TraceSink};

use crate::machine::{Machine, MachineConfig};

/// The physical-memory isolation scheme under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IsolationScheme {
    /// Segment-based isolation (RISC-V PMP): in-register checks only.
    Pmp,
    /// Table-based isolation (PMP Table for everything).
    PmpTable,
    /// Hybrid: PT pages behind a segment, data behind the table.
    Hpmp,
}

impl std::fmt::Display for IsolationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IsolationScheme::Pmp => "PMP",
            IsolationScheme::PmpTable => "PMPT",
            IsolationScheme::Hpmp => "HPMP",
        })
    }
}

/// A PT-frame source that scatters page-table pages across RAM with a large
/// stride, modelling a buddy allocator handing out whatever frame is free —
/// the baseline layout that defeats segment protection.
#[derive(Debug)]
pub struct ScatteredPtFrames {
    base: PhysAddr,
    stride: u64,
    limit: u64,
    next: u64,
}

impl ScatteredPtFrames {
    /// Scatters frames as `base + i * stride` for `i < limit`.
    pub fn new(base: PhysAddr, stride: u64, limit: u64) -> ScatteredPtFrames {
        assert!(stride >= PAGE_SIZE && stride.is_multiple_of(PAGE_SIZE));
        ScatteredPtFrames {
            base,
            stride,
            limit,
            next: 0,
        }
    }
}

impl PtFrameSource for ScatteredPtFrames {
    fn alloc_pt_frame(&mut self) -> Option<PhysAddr> {
        if self.next >= self.limit {
            return None;
        }
        let frame = PhysAddr::new(self.base.raw() + self.next * self.stride);
        self.next += 1;
        Some(frame)
    }
}

/// Where the builder placed everything; handed to tests and workloads.
#[derive(Debug)]
pub struct System<S: TraceSink = NullSink> {
    /// The machine, with HPMP programmed per the chosen scheme.
    pub machine: Machine<S>,
    /// The S-mode address space under test.
    pub space: AddressSpace,
    /// Data-page frames remaining for further mappings.
    pub data_frames: FrameAllocator,
    /// PT-page frames remaining (contiguous pool or scattered source).
    pub pt_frames: Box<dyn PtFrameSource>,
    /// The PMP Table protecting RAM (present for `PmpTable` and `Hpmp`).
    pub pmp_table: Option<PmpTable>,
    /// Frames remaining for PMP-Table pages.
    pub table_frames: FrameAllocator,
    /// The protected RAM region.
    pub ram: PmpRegion,
}

impl<S: TraceSink> System<S> {
    /// Maps `pages` consecutive virtual pages starting at `va`, pulling data
    /// frames from the data pool and granting `perms`.
    ///
    /// # Panics
    ///
    /// Panics if the pools run dry (fixtures size them generously).
    pub fn map_range(&mut self, va: VirtAddr, pages: u64, perms: Perms) {
        for i in 0..pages {
            let frame = self.data_frames.alloc().expect("data frames exhausted");
            self.grant_data_page(frame);
            self.space
                .map_page(
                    self.machine.phys_mut(),
                    self.pt_frames.as_mut(),
                    va + i * PAGE_SIZE,
                    frame,
                    perms,
                    true,
                )
                .expect("mapping failed");
        }
    }

    /// Maps `va` to a specific frame (used by fragmentation experiments).
    ///
    /// # Panics
    ///
    /// Panics if the mapping fails.
    pub fn map_page_at(&mut self, va: VirtAddr, frame: PhysAddr, perms: Perms) {
        self.grant_data_page(frame);
        self.space
            .map_page(
                self.machine.phys_mut(),
                self.pt_frames.as_mut(),
                va,
                frame,
                perms,
                true,
            )
            .expect("mapping failed");
    }

    /// Ensures the PMP Table (if any) grants RWX on a data page. Idempotent.
    fn grant_data_page(&mut self, frame: PhysAddr) {
        if let Some(table) = &mut self.pmp_table {
            table
                .set_page_perm(
                    self.machine.phys_mut(),
                    &mut self.table_frames,
                    frame,
                    Perms::RWX,
                )
                .expect("PMP table fill failed");
        }
    }
}

/// Builder for the canonical single-domain system.
#[derive(Debug)]
pub struct SystemBuilder<S: TraceSink = NullSink> {
    config: MachineConfig,
    scheme: IsolationScheme,
    ram_base: u64,
    ram_size: u64,
    contiguous_pt: Option<bool>,
    mode: TranslationMode,
    sink: S,
}

impl SystemBuilder {
    /// Starts a builder for `scheme` on the given SoC configuration.
    pub fn new(config: MachineConfig, scheme: IsolationScheme) -> SystemBuilder {
        SystemBuilder {
            config,
            scheme,
            ram_base: 0x8000_0000,
            ram_size: 1 << 30,
            contiguous_pt: None,
            mode: TranslationMode::Sv39,
            sink: NullSink,
        }
    }
}

impl<S: TraceSink> SystemBuilder<S> {
    /// Overrides the protected RAM region (must be NAPOT-representable).
    pub fn ram(mut self, base: u64, size: u64) -> SystemBuilder<S> {
        self.ram_base = base;
        self.ram_size = size;
        self
    }

    /// Overrides PT-page placement. Defaults to contiguous for every scheme
    /// — the Penglai family always keeps PT pages in one region (Penglai
    /// already requires it to trap page-table modifications, §5); scattered
    /// placement is the stock-kernel ablation.
    pub fn contiguous_pt(mut self, contiguous: bool) -> SystemBuilder<S> {
        self.contiguous_pt = Some(contiguous);
        self
    }

    /// Overrides the translation mode (default Sv39).
    pub fn translation_mode(mut self, mode: TranslationMode) -> SystemBuilder<S> {
        self.mode = mode;
        self
    }

    /// Attaches a trace sink: the built machine records one event per
    /// access into it.
    pub fn sink<T: TraceSink>(self, sink: T) -> SystemBuilder<T> {
        SystemBuilder {
            config: self.config,
            scheme: self.scheme,
            ram_base: self.ram_base,
            ram_size: self.ram_size,
            contiguous_pt: self.contiguous_pt,
            mode: self.mode,
            sink,
        }
    }

    /// Builds the machine, programs the HPMP entries for the scheme, and
    /// creates an empty address space.
    ///
    /// Layout inside RAM: `[pt pool 16 MiB][table pages 16 MiB][data ...]`.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small or not NAPOT-encodable — fixture
    /// misuse, not a runtime condition.
    pub fn build(self) -> System<S> {
        let ram = PmpRegion::new(PhysAddr::new(self.ram_base), self.ram_size);
        assert!(ram.is_napot(), "RAM region must be NAPOT-encodable");
        assert!(self.ram_size >= 64 << 20, "RAM must be at least 64 MiB");
        let mut machine = Machine::with_sink(self.config, self.sink);

        let pt_pool_base = PhysAddr::new(self.ram_base);
        let pt_pool_size = 16u64 << 20;
        let table_base = PhysAddr::new(self.ram_base + pt_pool_size);
        let table_size = 16u64 << 20;
        let data_base = PhysAddr::new(self.ram_base + pt_pool_size + table_size);
        let data_size = self.ram_size - pt_pool_size - table_size;

        let mut table_frames = FrameAllocator::new(table_base, table_size);
        let contiguous_pt = self.contiguous_pt.unwrap_or(true);
        let mut pt_frames: Box<dyn PtFrameSource> = if contiguous_pt {
            Box::new(FrameAllocator::new(pt_pool_base, pt_pool_size))
        } else {
            // Scatter PT pages through the data area with a 2 MiB stride.
            Box::new(ScatteredPtFrames::new(
                PhysAddr::new(data_base.raw() + data_size / 2),
                2 << 20,
                pt_pool_size / PAGE_SIZE,
            ))
        };

        // Program the register file.
        let mut pmp_table = None;
        match self.scheme {
            IsolationScheme::Pmp => {
                machine
                    .regs_mut()
                    .configure_segment(0, ram, Perms::RWX)
                    .expect("segment setup");
            }
            IsolationScheme::PmpTable => {
                let table =
                    PmpTable::new(ram, machine.phys_mut(), &mut table_frames).expect("table setup");
                machine
                    .regs_mut()
                    .configure_table(0, ram, table.root(), TableLevels::Two)
                    .expect("table entry setup");
                pmp_table = Some(table);
            }
            IsolationScheme::Hpmp => {
                let mut table =
                    PmpTable::new(ram, machine.phys_mut(), &mut table_frames).expect("table setup");
                // Include the PT pool in the table too (cache-like
                // management: segments are a cache of the table), so
                // flipping the segment off still leaves the pool covered.
                table
                    .set_range_perm(
                        machine.phys_mut(),
                        &mut table_frames,
                        pt_pool_base,
                        pt_pool_size,
                        Perms::RW,
                        FillPolicy::PerPage,
                    )
                    .expect("pool fill");
                // Entry 0: the fast GMS (PT pool) as a segment.
                machine
                    .regs_mut()
                    .configure_segment(0, PmpRegion::new(pt_pool_base, pt_pool_size), Perms::RW)
                    .expect("fast GMS setup");
                // Entries 1/2: the table over all of RAM.
                machine
                    .regs_mut()
                    .configure_table(1, ram, table.root(), TableLevels::Two)
                    .expect("table entry setup");
                pmp_table = Some(table);
            }
        }

        // PMP-table pages themselves must be readable by the hardware
        // walker; they are M-mode-owned and the PMPTW is not subject to
        // HPMP checks (it is the checker), so nothing to configure.

        let space = AddressSpace::new(self.mode, 1, machine.phys_mut(), pt_frames.as_mut())
            .expect("address space root");

        // In table schemes, PT pages must be granted in the table (the OS
        // reads/writes them, and the PTW checks them). Grant the root now;
        // System::map_range grants further PT pages lazily via
        // grant_pt_pages below.
        let system_pt_pages: Vec<PhysAddr> = space.pt_pages().to_vec();
        if let Some(table) = &mut pmp_table {
            for page in &system_pt_pages {
                table
                    .set_page_perm(machine.phys_mut(), &mut table_frames, *page, Perms::RW)
                    .expect("grant PT page");
            }
        }

        let data_frames = FrameAllocator::new(data_base, data_size / 2);
        System {
            machine,
            space,
            data_frames,
            pt_frames,
            pmp_table,
            table_frames,
            ram,
        }
    }
}

impl<S: TraceSink> System<S> {
    /// Grants table permissions for any PT pages created since the last
    /// call. Call after a batch of mappings when running a table scheme
    /// (PMPT grants PT pages in the table; HPMP *also* includes them, per
    /// the cache-like management rule).
    pub fn sync_pt_grants(&mut self) {
        let Some(table) = &mut self.pmp_table else {
            return;
        };
        let pages: Vec<PhysAddr> = self.space.pt_pages().to_vec();
        for page in pages {
            // set_page_perm is idempotent for already-granted pages.
            table
                .set_page_perm(
                    self.machine.phys_mut(),
                    &mut self.table_frames,
                    page,
                    Perms::RW,
                )
                .expect("grant PT page");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_memsim::{AccessKind, PrivMode};

    fn system(scheme: IsolationScheme) -> System {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme).build();
        sys.map_range(VirtAddr::new(0x10_0000), 16, Perms::RW);
        sys.sync_pt_grants();
        sys
    }

    /// Figure 2-a/b: PMP adds no memory references — 3 PT reads + 1 data.
    #[test]
    fn pmp_reference_count_matches_figure_2b() {
        let mut sys = system(IsolationScheme::Pmp);
        sys.machine.flush_microarch();
        let out = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .unwrap();
        assert_eq!(out.refs.pt_reads, 3);
        assert_eq!(out.refs.data_reads, 1);
        assert_eq!(out.refs.pmpte_for_pt, 0);
        assert_eq!(out.refs.pmpte_for_data, 0);
        assert_eq!(out.refs.total(), 4);
    }

    /// Figure 2-c: a 2-level permission table makes it 12.
    #[test]
    fn pmpt_reference_count_matches_figure_2c() {
        let mut sys = system(IsolationScheme::PmpTable);
        sys.machine.flush_microarch();
        let out = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .unwrap();
        assert_eq!(out.refs.pt_reads, 3);
        assert_eq!(out.refs.data_reads, 1);
        assert_eq!(out.refs.pmpte_for_pt, 6);
        assert_eq!(out.refs.pmpte_for_data, 2);
        assert_eq!(out.refs.total(), 12);
    }

    /// Figure 4: HPMP reduces it to 6.
    #[test]
    fn hpmp_reference_count_matches_figure_4() {
        let mut sys = system(IsolationScheme::Hpmp);
        sys.machine.flush_microarch();
        let out = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .unwrap();
        assert_eq!(out.refs.pt_reads, 3);
        assert_eq!(out.refs.data_reads, 1);
        assert_eq!(out.refs.pmpte_for_pt, 0, "PT pages are segment-checked");
        assert_eq!(out.refs.pmpte_for_data, 2);
        assert_eq!(out.refs.total(), 6);
    }

    /// TLB hits are scheme-independent (permission inlining).
    #[test]
    fn tlb_hit_identical_across_schemes() {
        let mut cycles = Vec::new();
        for scheme in [
            IsolationScheme::Pmp,
            IsolationScheme::PmpTable,
            IsolationScheme::Hpmp,
        ] {
            let mut sys = system(scheme);
            let va = VirtAddr::new(0x10_0000);
            sys.machine
                .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
                .unwrap();
            let warm = sys
                .machine
                .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
                .unwrap();
            assert_eq!(warm.refs.total(), 1);
            assert!(warm.tlb_hit.is_some());
            cycles.push(warm.cycles);
        }
        assert!(
            cycles.windows(2).all(|w| w[0] == w[1]),
            "TC4 must be identical: {cycles:?}"
        );
    }

    /// Cold latency ordering: PMP < HPMP < PMPT.
    #[test]
    fn cold_latency_ordering() {
        let mut lat = Vec::new();
        for scheme in [
            IsolationScheme::Pmp,
            IsolationScheme::Hpmp,
            IsolationScheme::PmpTable,
        ] {
            let mut sys = system(scheme);
            sys.machine.flush_microarch();
            let out = sys
                .machine
                .access(
                    &sys.space,
                    VirtAddr::new(0x10_0000),
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .unwrap();
            lat.push(out.cycles);
        }
        assert!(
            lat[0] < lat[1],
            "PMP {} should beat HPMP {}",
            lat[0],
            lat[1]
        );
        assert!(
            lat[1] < lat[2],
            "HPMP {} should beat PMPT {}",
            lat[1],
            lat[2]
        );
    }

    /// Unmapped addresses fault; addresses outside HPMP coverage fault.
    #[test]
    fn faults_reported() {
        let mut sys = system(IsolationScheme::Pmp);
        let err = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0xdead_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .unwrap_err();
        assert!(matches!(err, crate::machine::Fault::PageFault(_)));
        // Write to a read-mapped... map an RO page and try to write.
        sys.map_range(VirtAddr::new(0x80_0000), 1, Perms::READ);
        sys.sync_pt_grants();
        let err = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x80_0000),
                AccessKind::Write,
                PrivMode::Supervisor,
            )
            .unwrap_err();
        assert!(matches!(err, crate::machine::Fault::PtePermission(_)));
    }

    /// A data page never granted in the table faults under PMPT.
    #[test]
    fn table_denial_faults() {
        let mut sys = system(IsolationScheme::PmpTable);
        // Map a VA to a frame but revoke it in the table.
        let frame = sys.data_frames.alloc().unwrap();
        sys.map_page_at(VirtAddr::new(0x90_0000), frame, Perms::RW);
        sys.sync_pt_grants();
        let table = sys.pmp_table.as_mut().unwrap();
        table
            .set_page_perm(
                sys.machine.phys_mut(),
                &mut sys.table_frames,
                frame,
                Perms::NONE,
            )
            .unwrap();
        sys.machine.sfence_vma_all();
        let err = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x90_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .unwrap_err();
        assert!(matches!(err, crate::machine::Fault::IsolationOnData(_)));
    }

    /// Sv48 under PMPT: 4 PT reads, each with 2 pmpte reads => 15 total.
    #[test]
    fn sv48_scales_reference_count() {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::PmpTable)
            .translation_mode(TranslationMode::Sv48)
            .build();
        sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();
        let out = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .unwrap();
        assert_eq!(out.refs.pt_reads, 4);
        assert_eq!(out.refs.pmpte_for_pt, 8);
        assert_eq!(out.refs.total(), 15);
    }
}
