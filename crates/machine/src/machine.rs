//! The simulated machine: TLB → PTW → HPMP checker → cache hierarchy.
//!
//! [`Machine::access`] reproduces the paper's Figure 2/Figure 4 reference
//! sequences exactly:
//!
//! * TLB hit (with permission inlining): one data reference, no permission
//!   walk — identical latency for every isolation scheme (TC4).
//! * TLB miss: for each PT-page reference of the radix walk, a permission
//!   check (0 refs in segment mode, up to `depth` pmpte reads in table
//!   mode), then the PTE read; finally the permission check for the data
//!   page and the data reference itself.
//!
//! Every reference is pushed through the shared [`MemSystem`], so warm/cold
//! behaviour (TC1–TC3), pmpte cache-line sharing, and DRAM row locality all
//! emerge rather than being hard-coded.
//!
//! The machine is generic over a [`TraceSink`]: with the default
//! [`NullSink`] every emission site compiles away (the `S::ENABLED`
//! constant is false, so the event-building branches are dead code), and
//! with a recording sink each access produces one [`WalkEvent`] whose
//! per-step cycles sum exactly to the access's cycle count. Tracing never
//! changes a cycle result.

use hpmp_core::{EntryPlan, HpmpRegFile, PmptwCache, PmptwCacheConfig};
use hpmp_memsim::{
    AccessKind, CoreModel, HitLevel, MemSystem, MemSystemConfig, PhysAddr, PhysMem, PrivMode,
    VirtAddr,
};
use hpmp_paging::{
    apply_translation, walk, AddressSpace, Tlb, TlbConfig, TlbEntry, TlbHit, WalkCache,
    WalkCacheConfig,
};
use hpmp_trace::{
    AccessClass, AccessOp, CounterId, FaultCause, LatencyHistograms, LatencyHistogramsWiring,
    MetricsRegistry, NullSink, PmptwOutcome, PrivLevel, Snapshot, StepKind, TlbOutcome, TraceSink,
    WalkEvent, WalkStep, World,
};

/// Why an access failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No valid translation for the virtual address.
    PageFault(VirtAddr),
    /// The page-table permission did not allow the access.
    PtePermission(VirtAddr),
    /// The isolation layer denied a PT-page reference during the walk.
    IsolationOnPtPage(PhysAddr),
    /// The isolation layer denied the data reference.
    IsolationOnData(PhysAddr),
    /// A pmpte read during the permission walk failed its integrity check
    /// (reserved bits set or parity mismatch). The checker fails closed:
    /// the access is denied and the corruption is surfaced as its own
    /// fault cause so the monitor can quarantine and rebuild rather than
    /// treat it as a policy denial.
    CorruptPmpte(PhysAddr),
}

impl Fault {
    /// The structured trace cause for this fault.
    pub fn cause(&self) -> FaultCause {
        match self {
            Fault::PageFault(_) => FaultCause::PageFault,
            Fault::PtePermission(_) => FaultCause::PtePermission,
            Fault::IsolationOnPtPage(_) => FaultCause::IsolationOnPtPage,
            Fault::IsolationOnData(_) => FaultCause::IsolationOnData,
            Fault::CorruptPmpte(_) => FaultCause::CorruptPmpte,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::PageFault(va) => write!(f, "page fault at {va}"),
            Fault::PtePermission(va) => write!(f, "PTE permission fault at {va}"),
            Fault::IsolationOnPtPage(pa) => {
                write!(f, "isolation fault on PT page at {pa}")
            }
            Fault::IsolationOnData(pa) => write!(f, "isolation fault on data at {pa}"),
            Fault::CorruptPmpte(pa) => {
                write!(f, "corrupt pmpte encountered checking {pa}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// The trace operation for a memsim access kind.
fn op_of(kind: AccessKind) -> AccessOp {
    match kind {
        AccessKind::Read => AccessOp::Read,
        AccessKind::Write => AccessOp::Write,
        AccessKind::Fetch => AccessOp::Fetch,
    }
}

/// The trace privilege level for a memsim privilege mode.
fn priv_of(mode: PrivMode) -> PrivLevel {
    match mode {
        PrivMode::User => PrivLevel::User,
        PrivMode::Supervisor => PrivLevel::Supervisor,
        PrivMode::Machine => PrivLevel::Machine,
    }
}

/// Per-access breakdown of memory references, mirroring the squares and
/// circles of Figures 2 and 4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefBreakdown {
    /// Page-table-page reads.
    pub pt_reads: u64,
    /// Data (or instruction) reads/writes.
    pub data_reads: u64,
    /// pmpte reads caused by checking PT pages.
    pub pmpte_for_pt: u64,
    /// pmpte reads caused by checking the data page.
    pub pmpte_for_data: u64,
}

impl RefBreakdown {
    /// Total memory references for the access.
    pub fn total(&self) -> u64 {
        self.pt_reads + self.data_reads + self.pmpte_for_pt + self.pmpte_for_data
    }
}

/// The result of one successful memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// End-to-end latency in core cycles (pipeline overhead included).
    pub cycles: u64,
    /// Reference breakdown.
    pub refs: RefBreakdown,
    /// TLB hit level, or `None` when the access walked.
    pub tlb_hit: Option<TlbHit>,
    /// Physical address that was accessed.
    pub paddr: PhysAddr,
}

/// Aggregate counters for a machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Successful accesses performed.
    pub accesses: u64,
    /// Total cycles across those accesses.
    pub cycles: u64,
    /// Sum of all reference breakdowns (successful accesses only).
    pub refs: RefBreakdown,
    /// Faults taken.
    pub faults: u64,
    /// TLB-miss walks performed.
    pub walks: u64,
    /// Memory references already issued by accesses that then faulted
    /// (their breakdown is not folded into `refs`).
    pub aborted_refs: u64,
    /// Memory references issued by DMA transfers.
    pub dma_refs: u64,
}

impl MachineStats {
    /// Total references the machine has pushed into the memory system:
    /// completed-access references plus aborted-walk and DMA references.
    /// Equals the memory system's own access counter — see
    /// [`Machine::verify_accounting`].
    pub fn issued_refs(&self) -> u64 {
        self.refs.total() + self.aborted_refs + self.dma_refs
    }

    /// Publishes every counter into `reg` under `prefix`. The reference
    /// breakdown exports both its total (at `<prefix>.refs`) and each
    /// component (`<prefix>.refs.pt_reads`, …).
    pub fn export(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.accesses"), self.accesses);
        reg.set(format!("{prefix}.cycles"), self.cycles);
        reg.set(format!("{prefix}.faults"), self.faults);
        reg.set(format!("{prefix}.walks"), self.walks);
        reg.set(format!("{prefix}.aborted_refs"), self.aborted_refs);
        reg.set(format!("{prefix}.dma_refs"), self.dma_refs);
        reg.set(format!("{prefix}.refs"), self.refs.total());
        reg.set(format!("{prefix}.refs.pt_reads"), self.refs.pt_reads);
        reg.set(format!("{prefix}.refs.data_reads"), self.refs.data_reads);
        reg.set(
            format!("{prefix}.refs.pmpte_for_pt"),
            self.refs.pmpte_for_pt,
        );
        reg.set(
            format!("{prefix}.refs.pmpte_for_data"),
            self.refs.pmpte_for_data,
        );
    }
}

/// Interned counter handles for everything a [`Machine`] accounts: its own
/// counters plus every sub-component's, wired once at construction so the
/// per-access bookkeeping is a `Vec<u64>` index bump — counter names are
/// only materialized again when [`Machine::metrics_snapshot`] is taken.
#[derive(Clone, Debug)]
struct MachineWiring {
    accesses: CounterId,
    cycles: CounterId,
    faults: CounterId,
    walks: CounterId,
    aborted_refs: CounterId,
    dma_refs: CounterId,
    refs_total: CounterId,
    pt_reads: CounterId,
    data_reads: CounterId,
    pmpte_for_pt: CounterId,
    pmpte_for_data: CounterId,
    dtlb: hpmp_paging::TlbStatsIds,
    itlb: hpmp_paging::TlbStatsIds,
    pwc: hpmp_paging::WalkCacheStatsIds,
    pmptw_cache: hpmp_core::PmptwCacheStatsIds,
    mem: hpmp_memsim::MemSystemStatsIds,
    latency: LatencyHistogramsWiring,
}

impl MachineWiring {
    fn wire(reg: &mut MetricsRegistry) -> MachineWiring {
        MachineWiring {
            accesses: reg.counter("machine.accesses"),
            cycles: reg.counter("machine.cycles"),
            faults: reg.counter("machine.faults"),
            walks: reg.counter("machine.walks"),
            aborted_refs: reg.counter("machine.aborted_refs"),
            dma_refs: reg.counter("machine.dma_refs"),
            refs_total: reg.counter("machine.refs"),
            pt_reads: reg.counter("machine.refs.pt_reads"),
            data_reads: reg.counter("machine.refs.data_reads"),
            pmpte_for_pt: reg.counter("machine.refs.pmpte_for_pt"),
            pmpte_for_data: reg.counter("machine.refs.pmpte_for_data"),
            dtlb: hpmp_paging::TlbStatsIds::wire(reg, "machine.dtlb"),
            itlb: hpmp_paging::TlbStatsIds::wire(reg, "machine.itlb"),
            pwc: hpmp_paging::WalkCacheStatsIds::wire(reg, "machine.pwc"),
            pmptw_cache: hpmp_core::PmptwCacheStatsIds::wire(reg, "machine.pmptw_cache"),
            mem: hpmp_memsim::MemSystemStatsIds::wire(reg, "machine.mem"),
            latency: LatencyHistogramsWiring::wire(reg, "machine.latency"),
        }
    }

    /// The machine's own counters, for bulk reset.
    fn own_ids(&self) -> [CounterId; 11] {
        [
            self.accesses,
            self.cycles,
            self.faults,
            self.walks,
            self.aborted_refs,
            self.dma_refs,
            self.refs_total,
            self.pt_reads,
            self.data_reads,
            self.pmpte_for_pt,
            self.pmpte_for_data,
        ]
    }
}

/// Configuration of a [`Machine`].
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Core timing parameters.
    pub core: CoreModel,
    /// Cache/DRAM geometry.
    pub mem: MemSystemConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Page-walk-cache geometry.
    pub pwc: WalkCacheConfig,
    /// PMPTW-Cache geometry (disabled by default, per §7).
    pub pmptw_cache: PmptwCacheConfig,
    /// TLB permission inlining (§7): when enabled (the default, used by both
    /// the baseline and HPMP), a TLB hit needs no permission walk; when
    /// disabled, even TLB hits consult the isolation layer — the paper's
    /// Implication-2 ablation.
    pub tlb_inlining: bool,
    /// HPMP register-file entries (16 for the prototype, 64 with ePMP).
    pub hpmp_entries: usize,
}

impl MachineConfig {
    /// RocketCore SoC per Table 1.
    pub fn rocket() -> MachineConfig {
        MachineConfig {
            core: CoreModel::rocket(),
            mem: MemSystemConfig::rocket(),
            tlb: TlbConfig::default(),
            pwc: WalkCacheConfig::default(),
            pmptw_cache: PmptwCacheConfig::DISABLED,
            tlb_inlining: true,
            hpmp_entries: hpmp_core::HPMP_ENTRIES,
        }
    }

    /// BOOM SoC per Table 1.
    pub fn boom() -> MachineConfig {
        MachineConfig {
            core: CoreModel::boom(),
            mem: MemSystemConfig::boom(),
            tlb: TlbConfig::default(),
            pwc: WalkCacheConfig::default(),
            pmptw_cache: PmptwCacheConfig::DISABLED,
            tlb_inlining: true,
            hpmp_entries: hpmp_core::HPMP_ENTRIES,
        }
    }
}

/// A simulated core + MMU + HPMP + memory system.
///
/// The isolation *scheme* is not a field: it is whatever the HPMP register
/// file has been programmed to — all-segment (PMP), all-table (PMP Table) or
/// hybrid (HPMP) — which is precisely the paper's point that one hardware
/// structure expresses all three.
///
/// The `S` parameter selects the trace sink. The default [`NullSink`]
/// machine ([`Machine::new`]) records nothing and pays nothing; a machine
/// built with [`Machine::with_sink`] emits one [`WalkEvent`] per access.
#[derive(Clone, Debug)]
pub struct Machine<S: TraceSink = NullSink> {
    core: CoreModel,
    mem_sys: MemSystem,
    phys: PhysMem,
    tlb: Tlb,
    itlb: Tlb,
    pwc: WalkCache,
    pmptw_cache: PmptwCache,
    regs: HpmpRegFile,
    /// Pre-decoded permission-check plan over `regs`, rebuilt lazily
    /// whenever the register file's generation stamp moves. All hot-path
    /// isolation checks go through this plan so a whole walk's per-step
    /// checks are one pass over pre-decoded matching entries instead of
    /// re-decoding every register each time.
    check_plan: EntryPlan,
    tlb_inlining: bool,
    suppress_fences: bool,
    metrics: MetricsRegistry,
    ids: MachineWiring,
    hists: LatencyHistograms,
    sink: S,
    world: World,
    seq: u64,
    hart_id: u16,
}

impl Machine {
    /// Builds a machine with empty physical memory, all HPMP entries off,
    /// and the zero-cost [`NullSink`].
    pub fn new(config: MachineConfig) -> Machine {
        Machine::with_sink(config, NullSink)
    }
}

impl<S: TraceSink> Machine<S> {
    /// Builds a machine that records a [`WalkEvent`] per access into `sink`.
    pub fn with_sink(config: MachineConfig, sink: S) -> Machine<S> {
        let mut metrics = MetricsRegistry::new();
        let ids = MachineWiring::wire(&mut metrics);
        Machine {
            core: config.core,
            mem_sys: MemSystem::new(config.mem),
            phys: PhysMem::new(),
            tlb: Tlb::new(config.tlb),
            itlb: Tlb::new(config.tlb),
            pwc: WalkCache::new(config.pwc),
            pmptw_cache: PmptwCache::new(config.pmptw_cache),
            regs: HpmpRegFile::with_entries(config.hpmp_entries),
            check_plan: EntryPlan::default(),
            tlb_inlining: config.tlb_inlining,
            suppress_fences: false,
            metrics,
            ids,
            hists: LatencyHistograms::new(),
            sink,
            world: World::Host,
            seq: 0,
            hart_id: 0,
        }
    }

    /// The hart id stamped on emitted events (0 on single-hart machines).
    pub fn hart_id(&self) -> u16 {
        self.hart_id
    }

    /// Sets the hart id stamped on emitted events. The multi-hart driver
    /// calls this once per hart at construction.
    pub fn set_hart_id(&mut self, hart: u16) {
        self.hart_id = hart;
    }

    /// Charges cycles that were spent outside the walk path — IPI traps,
    /// remote reprogramming, fence stalls — into this machine's cycle
    /// counter so per-hart totals include synchronization overhead.
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.metrics.bump(self.ids.cycles, cycles);
    }

    /// The hot-path isolation check: runs against the cached
    /// [`EntryPlan`], rebuilding it first iff any register mutated since
    /// the plan was decoded (CSR writes are orders of magnitude rarer
    /// than checks). Observably identical to `self.regs.check(...)`.
    #[inline]
    fn planned_check(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        mode: PrivMode,
    ) -> hpmp_core::CheckOutcome {
        if self.check_plan.generation() != self.regs.generation() {
            self.check_plan = self.regs.plan();
        }
        self.check_plan
            .check(&self.phys, &mut self.pmptw_cache, addr, kind, mode)
    }

    /// The core timing model.
    pub fn core(&self) -> &CoreModel {
        &self.core
    }

    /// Simulated physical memory (for building page tables and PMP tables).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Mutable access to simulated physical memory.
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// The HPMP register file (M-mode software's view).
    pub fn regs(&self) -> &HpmpRegFile {
        &self.regs
    }

    /// Mutable access to the HPMP register file. The caller (the secure
    /// monitor) must flush the TLB afterwards, as the paper requires —
    /// [`Machine::sfence_vma_all`] — because permissions are inlined in TLB
    /// entries.
    pub fn regs_mut(&mut self) -> &mut HpmpRegFile {
        &mut self.regs
    }

    /// The PMPTW-Cache (for stats inspection).
    pub fn pmptw_cache(&self) -> &PmptwCache {
        &self.pmptw_cache
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the trace sink (e.g. to drain a ring buffer).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the machine, returning the sink (e.g. to finish a JSONL
    /// file and inspect the writer).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Flushes the trace sink (no-op for non-buffering sinks).
    pub fn flush_sink(&mut self) {
        self.sink.flush();
    }

    /// The world tag stamped on emitted events.
    pub fn world(&self) -> World {
        self.world
    }

    /// Sets the world tag; the secure monitor calls this on domain switch
    /// so events carry host/enclave attribution.
    pub fn set_world(&mut self, world: World) {
        self.world = world;
    }

    /// Flushes all TLB, PWC and PMPTW-Cache state (`sfence.vma` +
    /// HPMP-reconfiguration flush).
    pub fn sfence_vma_all(&mut self) {
        self.tlb.flush_all();
        self.itlb.flush_all();
        self.pwc.flush_all();
        self.pmptw_cache.flush_all();
    }

    /// Invalidates all cached isolation decisions after an HPMP
    /// reconfiguration (remap, relabel, domain teardown).
    ///
    /// Two halves make this robust against dropped fences. The *commit*
    /// half advances the isolation epoch on both TLBs and the PMPTW-Cache —
    /// modelling a hardware generation tag bumped by the register-file
    /// write itself — so any entry filled before the reconfiguration can
    /// never hit again, only force a re-walk (counted in the caches'
    /// `stale` stats). The *flush* half is the ordinary software fence,
    /// which fault campaigns may suppress via
    /// [`Machine::set_fence_suppression`]; dropping it degrades to extra
    /// walks, never to a stale grant.
    pub fn invalidate_isolation(&mut self) {
        self.tlb.advance_epoch();
        self.itlb.advance_epoch();
        self.pmptw_cache.advance_epoch();
        if !self.suppress_fences {
            self.sfence_vma_all();
        }
    }

    /// Suppresses (or restores) the flush half of
    /// [`Machine::invalidate_isolation`] — the fault injector's model of a
    /// monitor whose invalidation path was interposed. The epoch half
    /// cannot be suppressed; it is what keeps suppression graceful.
    pub fn set_fence_suppression(&mut self, suppress: bool) {
        self.suppress_fences = suppress;
    }

    /// Whether the flush half of invalidation is currently suppressed.
    pub fn fence_suppressed(&self) -> bool {
        self.suppress_fences
    }

    /// Flushes translation state for one ASID (`sfence.vma` with ASID).
    pub fn sfence_vma_asid(&mut self, asid: u16) {
        self.tlb.flush_asid(asid);
        self.itlb.flush_asid(asid);
        self.pwc.flush_asid(asid);
    }

    /// Flushes one page's translation (`sfence.vma` with address + ASID).
    /// The PWC is flushed per-ASID: its entries cache non-leaf steps that a
    /// single-page unmap may invalidate at the leaf level only, but a
    /// conservative implementation (like ours) drops the ASID's entries.
    pub fn sfence_vma_page(&mut self, asid: u16, va: VirtAddr) {
        self.tlb.flush_page(asid, va);
        self.itlb.flush_page(asid, va);
        self.pwc.flush_asid(asid);
    }

    /// Empties all caches and DRAM row buffers — the cold TC1 state.
    pub fn flush_microarch(&mut self) {
        self.mem_sys.flush_all();
        self.sfence_vma_all();
    }

    /// Aggregate counters, reconstructed from the interned registry (the
    /// live accounting is a `Vec<u64>` behind [`CounterId`] handles).
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            accesses: self.metrics.get(self.ids.accesses),
            cycles: self.metrics.get(self.ids.cycles),
            refs: RefBreakdown {
                pt_reads: self.metrics.get(self.ids.pt_reads),
                data_reads: self.metrics.get(self.ids.data_reads),
                pmpte_for_pt: self.metrics.get(self.ids.pmpte_for_pt),
                pmpte_for_data: self.metrics.get(self.ids.pmpte_for_data),
            },
            faults: self.metrics.get(self.ids.faults),
            walks: self.metrics.get(self.ids.walks),
            aborted_refs: self.metrics.get(self.ids.aborted_refs),
            dma_refs: self.metrics.get(self.ids.dma_refs),
        }
    }

    /// D-TLB counters.
    pub fn tlb_stats(&self) -> hpmp_paging::TlbStats {
        self.tlb.stats()
    }

    /// I-TLB counters.
    pub fn itlb_stats(&self) -> hpmp_paging::TlbStats {
        self.itlb.stats()
    }

    /// Memory-system counters.
    pub fn mem_stats(&self) -> hpmp_memsim::MemSystemStats {
        self.mem_sys.stats()
    }

    /// Per-access-class latency histograms (always recorded; reset by
    /// [`Machine::reset_stats`]).
    pub fn histograms(&self) -> &LatencyHistograms {
        &self.hists
    }

    /// One snapshot unifying every counter the machine keeps: machine
    /// totals, D-/I-TLB, PWC, PMPTW-Cache, the memory hierarchy, and the
    /// per-class latency summaries, under dotted `machine.*` names.
    pub fn metrics_snapshot(&mut self) -> Snapshot {
        let refs_total = self.stats().refs.total();
        self.metrics.store(self.ids.refs_total, refs_total);
        // Lossy sinks (ring eviction, I/O failure) surface here instead of
        // dropping events silently.
        let trace_dropped = self.sink.dropped();
        self.metrics.set("machine.trace.dropped", trace_dropped);
        self.tlb.stats().store(&mut self.metrics, &self.ids.dtlb);
        self.itlb.stats().store(&mut self.metrics, &self.ids.itlb);
        self.pwc.stats().store(&mut self.metrics, &self.ids.pwc);
        self.pmptw_cache
            .stats()
            .store(&mut self.metrics, &self.ids.pmptw_cache);
        self.mem_sys.stats().store(&mut self.metrics, &self.ids.mem);
        self.ids.latency.store(&mut self.metrics, &self.hists);
        self.metrics.snapshot()
    }

    /// Checks that every reference the machine claims to have issued is
    /// visible in the memory system: `refs.total() + aborted_refs +
    /// dma_refs == mem.accesses`. Holds whenever all traffic goes through
    /// [`Machine::access`]/[`Machine::fetch`]/[`Machine::dma_transfer`]
    /// since the last [`Machine::reset_stats`].
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when the counters disagree.
    pub fn verify_accounting(&self) -> Result<(), String> {
        let stats = self.stats();
        let claimed = stats.issued_refs();
        let observed = self.mem_sys.stats().accesses;
        if claimed == observed {
            Ok(())
        } else {
            Err(format!(
                "machine claims {claimed} references (refs {} + aborted {} + dma {}) but \
                 the memory system observed {observed}",
                stats.refs.total(),
                stats.aborted_refs,
                stats.dma_refs
            ))
        }
    }

    /// Clears all counters and histograms (cache contents are untouched;
    /// the event sequence number keeps running).
    pub fn reset_stats(&mut self) {
        for id in self.ids.own_ids() {
            self.metrics.store(id, 0);
        }
        self.mem_sys.reset_stats();
        self.tlb.reset_stats();
        self.itlb.reset_stats();
        self.pwc.reset_stats();
        self.pmptw_cache.reset_stats();
        self.hists.reset();
    }

    /// Performs one data access at `va` in `space`.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] on translation failure, a PTE permission
    /// violation, or an isolation denial (on a PT page or on the data page).
    pub fn access(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivMode,
    ) -> Result<AccessOutcome, Fault> {
        self.access_inner(space, va, kind, mode, kind == AccessKind::Fetch)
    }

    /// Performs one instruction fetch at `va` in `space` — HPMP "applies to
    /// all memory accesses … including instruction fetches". Fetches use a
    /// separate I-TLB (Table 1's "L1 I/D TLB 32 entries each") but share the
    /// walker, the checker and the cache hierarchy.
    ///
    /// # Errors
    ///
    /// As [`Machine::access`], with the X permission required at both
    /// layers.
    pub fn fetch(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
        mode: PrivMode,
    ) -> Result<AccessOutcome, Fault> {
        self.access_inner(space, va, AccessKind::Fetch, mode, true)
    }

    fn access_inner(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivMode,
        instruction: bool,
    ) -> Result<AccessOutcome, Fault> {
        let mut cycles = self.core.pipeline_overhead;
        let mut refs = RefBreakdown::default();
        // Step records for the trace event. With a disabled sink nothing is
        // ever pushed (and `Vec::new` does not allocate), so this is free.
        let mut steps: Vec<WalkStep> = Vec::new();
        let mut pmptw: Option<PmptwOutcome> = None;

        // 1. TLB lookup (I-TLB for fetches). Permission inlining means a
        //    hit needs no isolation-layer work at all.
        let tlb = if instruction {
            &mut self.itlb
        } else {
            &mut self.tlb
        };
        let lookup = tlb.lookup(space.asid(), va);
        if let Some((entry, hit)) = lookup {
            let tlb_out = if hit == TlbHit::L2 {
                TlbOutcome::L2Hit
            } else {
                TlbOutcome::L1Hit
            };
            if !entry.page_perms.allows(kind) {
                return Err(self.abort(
                    Fault::PtePermission(va),
                    refs,
                    kind,
                    mode,
                    va,
                    None,
                    tlb_out,
                    None,
                    pmptw,
                    cycles,
                    steps,
                ));
            }
            let paddr = apply_translation(&entry, va);
            if self.tlb_inlining {
                if !entry.isolation_perms.allows(kind) {
                    return Err(self.abort(
                        Fault::IsolationOnData(paddr),
                        refs,
                        kind,
                        mode,
                        va,
                        Some(paddr.raw()),
                        tlb_out,
                        None,
                        pmptw,
                        cycles,
                        steps,
                    ));
                }
            } else {
                // Ablation: no inlining — every access re-checks.
                let check = self.planned_check(paddr, kind, mode);
                refs.pmpte_for_data += check.refs.len() as u64;
                cycles += self.charge_pmpte_refs(&check.refs, &mut steps);
                pmptw = check.pmptw.or(pmptw);
                if !check.allowed {
                    let fault = if check.malformed {
                        Fault::CorruptPmpte(paddr)
                    } else {
                        Fault::IsolationOnData(paddr)
                    };
                    return Err(self.abort(
                        fault,
                        refs,
                        kind,
                        mode,
                        va,
                        Some(paddr.raw()),
                        tlb_out,
                        None,
                        pmptw,
                        cycles,
                        steps,
                    ));
                }
            }
            if hit == TlbHit::L2 {
                // Both TLBs share one configuration.
                let l2 = self.tlb.config().l2_hit_latency;
                cycles += l2;
                if S::ENABLED {
                    steps.push(WalkStep {
                        kind: StepKind::TlbL2,
                        level: None,
                        addr: 0,
                        cycles: l2,
                    });
                }
            }
            let data_cycles = self.data_ref(paddr, kind);
            cycles += data_cycles;
            if S::ENABLED {
                steps.push(WalkStep {
                    kind: StepKind::Data,
                    level: None,
                    addr: paddr.raw(),
                    cycles: data_cycles,
                });
            }
            refs.data_reads = 1;
            self.metrics.bump(self.ids.accesses, 1);
            self.metrics.bump(self.ids.cycles, cycles);
            self.accumulate(refs);
            self.hists
                .record(AccessClass::classify(op_of(kind), true), cycles);
            self.emit(
                kind,
                mode,
                va,
                Some(paddr.raw()),
                tlb_out,
                None,
                pmptw,
                cycles,
                None,
                steps,
            );
            return Ok(AccessOutcome {
                cycles,
                refs,
                tlb_hit: Some(hit),
                paddr,
            });
        }

        // 2. TLB miss: page-table walk. Each PT-page reference is first
        //    validated by the isolation layer, then read.
        self.metrics.bump(self.ids.walks, 1);
        let result = walk(&self.phys, space, &mut self.pwc, va);
        let pwc_level = result.pwc_hit_level.map(|l| l as u8);
        for pt_ref in &result.pt_refs {
            let check = self.planned_check(pt_ref.addr, AccessKind::Read, mode);
            refs.pmpte_for_pt += check.refs.len() as u64;
            cycles += self.charge_pmpte_refs(&check.refs, &mut steps);
            pmptw = check.pmptw.or(pmptw);
            if !check.allowed {
                let fault = if check.malformed {
                    Fault::CorruptPmpte(pt_ref.addr)
                } else {
                    Fault::IsolationOnPtPage(pt_ref.addr)
                };
                return Err(self.abort(
                    fault,
                    refs,
                    kind,
                    mode,
                    va,
                    None,
                    TlbOutcome::Miss,
                    pwc_level,
                    pmptw,
                    cycles,
                    steps,
                ));
            }
            let pt_cycles = self.mem_sys.access_ptw(pt_ref.addr).cycles;
            cycles += pt_cycles;
            if S::ENABLED {
                steps.push(WalkStep {
                    kind: StepKind::Pt,
                    level: Some(pt_ref.level as u8),
                    addr: pt_ref.addr.raw(),
                    cycles: pt_cycles,
                });
            }
            refs.pt_reads += 1;
        }
        let Some(translation) = result.translation else {
            return Err(self.abort(
                Fault::PageFault(va),
                refs,
                kind,
                mode,
                va,
                None,
                TlbOutcome::Miss,
                pwc_level,
                pmptw,
                cycles,
                steps,
            ));
        };
        if !translation.perms.allows(kind) {
            return Err(self.abort(
                Fault::PtePermission(va),
                refs,
                kind,
                mode,
                va,
                None,
                TlbOutcome::Miss,
                pwc_level,
                pmptw,
                cycles,
                steps,
            ));
        }

        // 3. Isolation check for the data page.
        let check = self.planned_check(translation.paddr, kind, mode);
        refs.pmpte_for_data += check.refs.len() as u64;
        cycles += self.charge_pmpte_refs(&check.refs, &mut steps);
        pmptw = check.pmptw.or(pmptw);
        if !check.allowed {
            let fault = if check.malformed {
                Fault::CorruptPmpte(translation.paddr)
            } else {
                Fault::IsolationOnData(translation.paddr)
            };
            return Err(self.abort(
                fault,
                refs,
                kind,
                mode,
                va,
                Some(translation.paddr.raw()),
                TlbOutcome::Miss,
                pwc_level,
                pmptw,
                cycles,
                steps,
            ));
        }

        // 4. TLB refill with inlined isolation permission, then the data
        //    reference itself.
        let tlb = if instruction {
            &mut self.itlb
        } else {
            &mut self.tlb
        };
        tlb.fill(TlbEntry {
            asid: space.asid(),
            vpn: va.page_number(),
            frame: translation.paddr.page_base(),
            page_perms: translation.perms,
            isolation_perms: check.perms,
            user: translation.user,
            epoch: 0,
        });
        let data_cycles = self.data_ref(translation.paddr, kind);
        cycles += data_cycles;
        if S::ENABLED {
            steps.push(WalkStep {
                kind: StepKind::Data,
                level: None,
                addr: translation.paddr.raw(),
                cycles: data_cycles,
            });
        }
        refs.data_reads = 1;

        self.metrics.bump(self.ids.accesses, 1);
        self.metrics.bump(self.ids.cycles, cycles);
        self.accumulate(refs);
        self.hists
            .record(AccessClass::classify(op_of(kind), false), cycles);
        self.emit(
            kind,
            mode,
            va,
            Some(translation.paddr.raw()),
            TlbOutcome::Miss,
            pwc_level,
            pmptw,
            cycles,
            None,
            steps,
        );
        Ok(AccessOutcome {
            cycles,
            refs,
            tlb_hit: None,
            paddr: translation.paddr,
        })
    }

    /// Books a faulting access: counts the fault, rolls its partial
    /// references into `aborted_refs`, emits the trace event, and hands the
    /// fault back for the caller to return.
    #[allow(clippy::too_many_arguments)]
    fn abort(
        &mut self,
        fault: Fault,
        refs: RefBreakdown,
        kind: AccessKind,
        mode: PrivMode,
        va: VirtAddr,
        paddr: Option<u64>,
        tlb: TlbOutcome,
        pwc_level: Option<u8>,
        pmptw: Option<PmptwOutcome>,
        cycles: u64,
        steps: Vec<WalkStep>,
    ) -> Fault {
        self.metrics.bump(self.ids.faults, 1);
        self.metrics.bump(self.ids.aborted_refs, refs.total());
        self.emit(
            kind,
            mode,
            va,
            paddr,
            tlb,
            pwc_level,
            pmptw,
            cycles,
            Some(fault.cause()),
            steps,
        );
        fault
    }

    /// Emits one trace event. Compiles to nothing when the sink is
    /// disabled.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        kind: AccessKind,
        mode: PrivMode,
        va: VirtAddr,
        paddr: Option<u64>,
        tlb: TlbOutcome,
        pwc_level: Option<u8>,
        pmptw: Option<PmptwOutcome>,
        cycles: u64,
        fault: Option<FaultCause>,
        steps: Vec<WalkStep>,
    ) {
        if !S::ENABLED {
            return;
        }
        let event = WalkEvent {
            seq: self.seq,
            hart: self.hart_id,
            world: self.world,
            op: op_of(kind),
            privilege: priv_of(mode),
            va: va.raw(),
            paddr,
            tlb,
            pwc_level,
            pmptw,
            pipeline_cycles: self.core.pipeline_overhead,
            cycles,
            fault,
            steps,
        };
        self.seq += 1;
        self.sink.record(&event);
    }

    /// Charges a list of pmpte reads to the memory system, returning their
    /// observed latency and recording one step per read.
    fn charge_pmpte_refs(
        &mut self,
        pmpte_refs: &[hpmp_core::PmptRef],
        steps: &mut Vec<WalkStep>,
    ) -> u64 {
        // Walk references are a dependent pointer chase: the out-of-order
        // window cannot overlap them, so they cost their raw latency.
        let mut cycles = 0;
        for r in pmpte_refs {
            let c = self.mem_sys.access_ptw(r.addr).cycles;
            if S::ENABLED {
                steps.push(WalkStep {
                    kind: if r.is_root {
                        StepKind::PmptRoot
                    } else {
                        StepKind::PmptLeaf
                    },
                    level: None,
                    addr: r.addr.raw(),
                    cycles: c,
                });
            }
            cycles += c;
        }
        cycles
    }

    /// Issues the data reference, including the store-miss penalty.
    fn data_ref(&mut self, paddr: PhysAddr, kind: AccessKind) -> u64 {
        let outcome = self.mem_sys.access(paddr);
        let hit = outcome.level != HitLevel::Dram;
        let mut cycles = self.core.observed_ref_cycles(outcome.cycles, hit);
        if kind == AccessKind::Write && outcome.level != HitLevel::L1 {
            cycles += self.core.store_miss_penalty;
        }
        cycles
    }

    fn accumulate(&mut self, refs: RefBreakdown) {
        self.metrics.bump(self.ids.pt_reads, refs.pt_reads);
        self.metrics.bump(self.ids.data_reads, refs.data_reads);
        self.metrics.bump(self.ids.pmpte_for_pt, refs.pmpte_for_pt);
        self.metrics
            .bump(self.ids.pmpte_for_data, refs.pmpte_for_data);
    }

    /// Adds pure-compute cycles to the running total (used by workload
    /// models for their non-memory instructions).
    pub fn run_compute(&mut self, instructions: u64) -> u64 {
        let cycles = self.core.alu_cycles(instructions);
        self.metrics.bump(self.ids.cycles, cycles);
        cycles
    }

    /// Performs a DMA transfer of `len` bytes at `base` from `device`,
    /// checked line-by-page against `iopmp` (§9's I/O protection). DMA
    /// bypasses the L1 like the walker port. Returns the cycle cost.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::IsolationOnData`] at the first denied page.
    pub fn dma_transfer(
        &mut self,
        iopmp: &hpmp_core::IoPmp,
        device: hpmp_core::DeviceId,
        base: PhysAddr,
        len: u64,
        kind: AccessKind,
    ) -> Result<u64, Fault> {
        let mut cycles = 0;
        let mut offset = 0;
        let mut checked_page = None;
        while offset < len {
            let addr = base + offset;
            // One permission check per page crossed.
            if checked_page != Some(addr.page_number()) {
                let outcome = iopmp.check(&self.phys, device, addr, kind);
                for r in &outcome.refs {
                    cycles += self.mem_sys.access_ptw(r.addr).cycles;
                }
                self.metrics
                    .bump(self.ids.dma_refs, outcome.refs.len() as u64);
                if !outcome.allowed {
                    self.metrics.bump(self.ids.faults, 1);
                    return Err(Fault::IsolationOnData(addr));
                }
                checked_page = Some(addr.page_number());
            }
            cycles += self.mem_sys.access_ptw(addr).cycles;
            self.metrics.bump(self.ids.dma_refs, 1);
            offset += hpmp_memsim::LINE_SIZE;
        }
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_core::{PmpRegion, PmpTable, TableLevels};
    use hpmp_memsim::{FrameAllocator, Perms, PAGE_SIZE};
    use hpmp_paging::TranslationMode;
    use hpmp_trace::RingSink;

    fn flat_machine() -> (Machine, AddressSpace) {
        flat_machine_with_sink(NullSink)
    }

    fn flat_machine_with_sink<S: TraceSink>(sink: S) -> (Machine<S>, AddressSpace) {
        let mut machine = Machine::with_sink(MachineConfig::rocket(), sink);
        machine
            .regs_mut()
            .configure_segment(
                0,
                PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30),
                Perms::RWX,
            )
            .expect("segment");
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let mut space =
            AddressSpace::new(TranslationMode::Sv39, 1, machine.phys_mut(), &mut frames)
                .expect("space");
        space
            .map_page(
                machine.phys_mut(),
                &mut frames,
                VirtAddr::new(0x1000),
                PhysAddr::new(0x8010_0000),
                Perms::RX,
                true,
            )
            .expect("code page");
        space
            .map_page(
                machine.phys_mut(),
                &mut frames,
                VirtAddr::new(0x2000),
                PhysAddr::new(0x8010_1000),
                Perms::RW,
                true,
            )
            .expect("data page");
        (machine, space)
    }

    #[test]
    fn fetch_requires_execute_permission() {
        let (mut machine, space) = flat_machine();
        machine
            .fetch(&space, VirtAddr::new(0x1000), PrivMode::User)
            .expect("RX page is fetchable");
        let err = machine
            .fetch(&space, VirtAddr::new(0x2000), PrivMode::User)
            .expect_err("RW page is not fetchable");
        assert!(matches!(err, Fault::PtePermission(_)));
    }

    #[test]
    fn itlb_and_dtlb_are_separate() {
        let (mut machine, space) = flat_machine();
        let code = VirtAddr::new(0x1000);
        // A data read warms the D-TLB only.
        machine
            .access(&space, code, AccessKind::Read, PrivMode::User)
            .expect("read");
        let fetch = machine.fetch(&space, code, PrivMode::User).expect("fetch");
        assert!(
            fetch.tlb_hit.is_none(),
            "first fetch must walk despite warm D-TLB"
        );
        let refetch = machine
            .fetch(&space, code, PrivMode::User)
            .expect("refetch");
        assert!(refetch.tlb_hit.is_some(), "second fetch hits the I-TLB");
    }

    #[test]
    fn fetch_checked_by_isolation_layer() {
        let (mut machine, space) = flat_machine();
        // Shrink the allow segment so the code page falls outside it.
        machine.regs_mut().disable(0).expect("disable");
        machine
            .regs_mut()
            .configure_segment(
                0,
                PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 20),
                Perms::RWX,
            )
            .expect("narrow segment");
        machine.sfence_vma_all();
        let err = machine
            .fetch(&space, VirtAddr::new(0x1000), PrivMode::User)
            .expect_err("fetch outside the segment must fault");
        assert!(matches!(
            err,
            Fault::IsolationOnPtPage(_) | Fault::IsolationOnData(_)
        ));
    }

    #[test]
    fn traced_events_balance_and_match_cycles() {
        let (mut machine, space) = flat_machine_with_sink(RingSink::new(16));
        let walk = machine
            .access(
                &space,
                VirtAddr::new(0x2000),
                AccessKind::Read,
                PrivMode::User,
            )
            .expect("walk access");
        let hit = machine
            .access(
                &space,
                VirtAddr::new(0x2000),
                AccessKind::Read,
                PrivMode::User,
            )
            .expect("hit access");
        let events: Vec<_> = machine.sink().events().cloned().collect();
        assert_eq!(events.len(), 2);
        assert!(events[0].is_balanced(), "walk event balances");
        assert!(events[1].is_balanced(), "hit event balances");
        assert_eq!(events[0].cycles, walk.cycles);
        assert_eq!(events[1].cycles, hit.cycles);
        assert_eq!(events[0].tlb, TlbOutcome::Miss);
        assert_eq!(events[0].count_of(StepKind::Pt) as u64, walk.refs.pt_reads);
        assert!(events[1].tlb.is_hit());
        assert_eq!(events[1].count_of(StepKind::Data), 1);
    }

    #[test]
    fn tracing_does_not_change_cycle_results() {
        let (mut plain, space_a) = flat_machine();
        let (mut traced, space_b) = flat_machine_with_sink(RingSink::new(64));
        for va in [0x1000u64, 0x2000, 0x1000, 0x2000] {
            let a = plain
                .access(
                    &space_a,
                    VirtAddr::new(va),
                    AccessKind::Read,
                    PrivMode::User,
                )
                .expect("plain");
            let b = traced
                .access(
                    &space_b,
                    VirtAddr::new(va),
                    AccessKind::Read,
                    PrivMode::User,
                )
                .expect("traced");
            assert_eq!(a.cycles, b.cycles, "cycles diverge at va {va:#x}");
            assert_eq!(a.refs, b.refs, "refs diverge at va {va:#x}");
        }
    }

    #[test]
    fn suppressed_fence_cannot_grant_stale_isolation() {
        let (mut machine, space) = flat_machine();
        let va = VirtAddr::new(0x2000);
        machine
            .access(&space, va, AccessKind::Read, PrivMode::User)
            .expect("warm access fills the TLB");
        // The TLB entry now carries the old RWX isolation permission.
        // Reconfigure the HPMP so the data page is no longer covered, with
        // the software fence suppressed: only the epoch stops the stale
        // entry from granting.
        machine.set_fence_suppression(true);
        machine.regs_mut().disable(0).expect("disable");
        machine
            .regs_mut()
            .configure_segment(
                0,
                PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 20),
                Perms::RWX,
            )
            .expect("narrow segment");
        machine.invalidate_isolation();
        let err = machine
            .access(&space, va, AccessKind::Read, PrivMode::User)
            .expect_err("stale TLB entry must not grant");
        assert!(matches!(
            err,
            Fault::IsolationOnPtPage(_) | Fault::IsolationOnData(_)
        ));
        assert!(
            machine.tlb_stats().stale > 0,
            "the stale entry must be epoch-rejected, not hit"
        );
    }

    #[test]
    fn corrupt_leaf_pmpte_faults_and_recovers() {
        let mut machine = Machine::new(MachineConfig::rocket());
        let region = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 28);
        // PMP table pages live outside the protected region; PT and data
        // pages inside it.
        let mut table_frames = FrameAllocator::new(PhysAddr::new(0x9800_0000), 64 * PAGE_SIZE);
        let mut table =
            PmpTable::new(region, machine.phys_mut(), &mut table_frames).expect("table");
        let mut space_frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        for i in 0..64u64 {
            table
                .set_page_perm(
                    machine.phys_mut(),
                    &mut table_frames,
                    PhysAddr::new(0x8000_0000 + i * PAGE_SIZE),
                    Perms::RWX,
                )
                .expect("PT page perm");
        }
        let data_pa = PhysAddr::new(0x8010_0000);
        table
            .set_page_perm(machine.phys_mut(), &mut table_frames, data_pa, Perms::RW)
            .expect("data page perm");
        machine
            .regs_mut()
            .configure_table(0, region, table.root(), TableLevels::Two)
            .expect("table mode");
        let mut space = AddressSpace::new(
            TranslationMode::Sv39,
            1,
            machine.phys_mut(),
            &mut space_frames,
        )
        .expect("space");
        let va = VirtAddr::new(0x2000);
        space
            .map_page(
                machine.phys_mut(),
                &mut space_frames,
                va,
                data_pa,
                Perms::RW,
                true,
            )
            .expect("map");
        machine
            .access(&space, va, AccessKind::Read, PrivMode::User)
            .expect("intact table allows the read");
        // Locate the leaf pmpte the check reads, then flip one bit of it.
        let leaf_addr = {
            let check = machine.regs().check(
                machine.phys(),
                &mut PmptwCache::disabled(),
                data_pa,
                AccessKind::Read,
                PrivMode::User,
            );
            check.refs.last().expect("table walk has refs").addr
        };
        let raw = machine.phys().read_u64(leaf_addr);
        machine.phys_mut().write_u64(leaf_addr, raw ^ 1);
        machine.sfence_vma_all();
        let err = machine
            .access(&space, va, AccessKind::Read, PrivMode::User)
            .expect_err("corrupt pmpte must deny");
        assert!(matches!(err, Fault::CorruptPmpte(_)), "got {err:?}");
        // Restoring the bit restores service — fail-closed, not wedged.
        machine.phys_mut().write_u64(leaf_addr, raw);
        machine.sfence_vma_all();
        machine
            .access(&space, va, AccessKind::Read, PrivMode::User)
            .expect("restored table allows the read again");
    }

    #[test]
    fn accounting_covers_faulted_walks() {
        let (mut machine, space) = flat_machine();
        machine
            .access(
                &space,
                VirtAddr::new(0x2000),
                AccessKind::Read,
                PrivMode::User,
            )
            .expect("good access");
        // A page fault mid-walk still issues PT reads.
        machine
            .access(
                &space,
                VirtAddr::new(0x7000),
                AccessKind::Read,
                PrivMode::User,
            )
            .expect_err("unmapped");
        let stats = machine.stats();
        assert!(
            stats.aborted_refs > 0,
            "faulted walk must book its references"
        );
        machine
            .verify_accounting()
            .expect("all references accounted for");
    }

    #[test]
    fn metrics_snapshot_mirrors_legacy_stats() {
        let (mut machine, space) = flat_machine();
        machine
            .access(
                &space,
                VirtAddr::new(0x2000),
                AccessKind::Read,
                PrivMode::User,
            )
            .expect("access");
        let snap = machine.metrics_snapshot();
        let stats = machine.stats();
        assert_eq!(snap.value("machine.accesses"), stats.accesses);
        assert_eq!(snap.value("machine.refs"), stats.refs.total());
        assert_eq!(
            snap.value("machine.mem.accesses"),
            machine.mem_stats().accesses
        );
        assert_eq!(
            snap.value("machine.dtlb.misses"),
            machine.tlb_stats().misses
        );
        assert_eq!(
            snap.value("machine.latency.read_walk.count"),
            machine.histograms().class(AccessClass::ReadWalk).count()
        );
    }

    #[test]
    fn reset_stats_clears_every_counter() {
        let (mut machine, space) = flat_machine();
        machine
            .access(
                &space,
                VirtAddr::new(0x2000),
                AccessKind::Read,
                PrivMode::User,
            )
            .expect("access");
        machine
            .fetch(&space, VirtAddr::new(0x1000), PrivMode::User)
            .expect("fetch");
        machine.reset_stats();
        assert_eq!(machine.stats(), MachineStats::default());
        assert_eq!(machine.mem_stats().accesses, 0);
        assert_eq!(machine.tlb_stats().lookups(), 0);
        assert_eq!(
            machine.itlb_stats().lookups(),
            0,
            "the I-TLB must reset too"
        );
        assert_eq!(machine.histograms().total_count(), 0);
        machine.verify_accounting().expect("balanced after reset");
    }
}
