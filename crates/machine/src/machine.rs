//! The simulated machine: TLB → PTW → HPMP checker → cache hierarchy.
//!
//! [`Machine::access`] reproduces the paper's Figure 2/Figure 4 reference
//! sequences exactly:
//!
//! * TLB hit (with permission inlining): one data reference, no permission
//!   walk — identical latency for every isolation scheme (TC4).
//! * TLB miss: for each PT-page reference of the radix walk, a permission
//!   check (0 refs in segment mode, up to `depth` pmpte reads in table
//!   mode), then the PTE read; finally the permission check for the data
//!   page and the data reference itself.
//!
//! Every reference is pushed through the shared [`MemSystem`], so warm/cold
//! behaviour (TC1–TC3), pmpte cache-line sharing, and DRAM row locality all
//! emerge rather than being hard-coded.

use hpmp_core::{HpmpRegFile, PmptwCache, PmptwCacheConfig};
use hpmp_memsim::{
    AccessKind, CoreModel, HitLevel, MemSystem, MemSystemConfig, PhysAddr, PhysMem,
    PrivMode, VirtAddr,
};
use hpmp_paging::{
    apply_translation, walk, AddressSpace, Tlb, TlbConfig, TlbEntry, TlbHit, WalkCache,
    WalkCacheConfig,
};

/// Why an access failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No valid translation for the virtual address.
    PageFault(VirtAddr),
    /// The page-table permission did not allow the access.
    PtePermission(VirtAddr),
    /// The isolation layer denied a PT-page reference during the walk.
    IsolationOnPtPage(PhysAddr),
    /// The isolation layer denied the data reference.
    IsolationOnData(PhysAddr),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::PageFault(va) => write!(f, "page fault at {va}"),
            Fault::PtePermission(va) => write!(f, "PTE permission fault at {va}"),
            Fault::IsolationOnPtPage(pa) => {
                write!(f, "isolation fault on PT page at {pa}")
            }
            Fault::IsolationOnData(pa) => write!(f, "isolation fault on data at {pa}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Per-access breakdown of memory references, mirroring the squares and
/// circles of Figures 2 and 4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefBreakdown {
    /// Page-table-page reads.
    pub pt_reads: u64,
    /// Data (or instruction) reads/writes.
    pub data_reads: u64,
    /// pmpte reads caused by checking PT pages.
    pub pmpte_for_pt: u64,
    /// pmpte reads caused by checking the data page.
    pub pmpte_for_data: u64,
}

impl RefBreakdown {
    /// Total memory references for the access.
    pub fn total(&self) -> u64 {
        self.pt_reads + self.data_reads + self.pmpte_for_pt + self.pmpte_for_data
    }
}

/// The result of one successful memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// End-to-end latency in core cycles (pipeline overhead included).
    pub cycles: u64,
    /// Reference breakdown.
    pub refs: RefBreakdown,
    /// TLB hit level, or `None` when the access walked.
    pub tlb_hit: Option<TlbHit>,
    /// Physical address that was accessed.
    pub paddr: PhysAddr,
}

/// Aggregate counters for a machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Successful accesses performed.
    pub accesses: u64,
    /// Total cycles across those accesses.
    pub cycles: u64,
    /// Sum of all reference breakdowns.
    pub refs: RefBreakdown,
    /// Faults taken.
    pub faults: u64,
    /// TLB-miss walks performed.
    pub walks: u64,
}

/// Configuration of a [`Machine`].
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Core timing parameters.
    pub core: CoreModel,
    /// Cache/DRAM geometry.
    pub mem: MemSystemConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Page-walk-cache geometry.
    pub pwc: WalkCacheConfig,
    /// PMPTW-Cache geometry (disabled by default, per §7).
    pub pmptw_cache: PmptwCacheConfig,
    /// TLB permission inlining (§7): when enabled (the default, used by both
    /// the baseline and HPMP), a TLB hit needs no permission walk; when
    /// disabled, even TLB hits consult the isolation layer — the paper's
    /// Implication-2 ablation.
    pub tlb_inlining: bool,
    /// HPMP register-file entries (16 for the prototype, 64 with ePMP).
    pub hpmp_entries: usize,
}

impl MachineConfig {
    /// RocketCore SoC per Table 1.
    pub fn rocket() -> MachineConfig {
        MachineConfig {
            core: CoreModel::rocket(),
            mem: MemSystemConfig::rocket(),
            tlb: TlbConfig::default(),
            pwc: WalkCacheConfig::default(),
            pmptw_cache: PmptwCacheConfig::DISABLED,
            tlb_inlining: true,
            hpmp_entries: hpmp_core::HPMP_ENTRIES,
        }
    }

    /// BOOM SoC per Table 1.
    pub fn boom() -> MachineConfig {
        MachineConfig {
            core: CoreModel::boom(),
            mem: MemSystemConfig::boom(),
            tlb: TlbConfig::default(),
            pwc: WalkCacheConfig::default(),
            pmptw_cache: PmptwCacheConfig::DISABLED,
            tlb_inlining: true,
            hpmp_entries: hpmp_core::HPMP_ENTRIES,
        }
    }
}

/// A simulated core + MMU + HPMP + memory system.
///
/// The isolation *scheme* is not a field: it is whatever the HPMP register
/// file has been programmed to — all-segment (PMP), all-table (PMP Table) or
/// hybrid (HPMP) — which is precisely the paper's point that one hardware
/// structure expresses all three.
#[derive(Debug)]
pub struct Machine {
    core: CoreModel,
    mem_sys: MemSystem,
    phys: PhysMem,
    tlb: Tlb,
    itlb: Tlb,
    pwc: WalkCache,
    pmptw_cache: PmptwCache,
    regs: HpmpRegFile,
    tlb_inlining: bool,
    stats: MachineStats,
}

impl Machine {
    /// Builds a machine with empty physical memory and all HPMP entries off.
    pub fn new(config: MachineConfig) -> Machine {
        Machine {
            core: config.core,
            mem_sys: MemSystem::new(config.mem),
            phys: PhysMem::new(),
            tlb: Tlb::new(config.tlb),
            itlb: Tlb::new(config.tlb),
            pwc: WalkCache::new(config.pwc),
            pmptw_cache: PmptwCache::new(config.pmptw_cache),
            regs: HpmpRegFile::with_entries(config.hpmp_entries),
            tlb_inlining: config.tlb_inlining,
            stats: MachineStats::default(),
        }
    }

    /// The core timing model.
    pub fn core(&self) -> &CoreModel {
        &self.core
    }

    /// Simulated physical memory (for building page tables and PMP tables).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Mutable access to simulated physical memory.
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// The HPMP register file (M-mode software's view).
    pub fn regs(&self) -> &HpmpRegFile {
        &self.regs
    }

    /// Mutable access to the HPMP register file. The caller (the secure
    /// monitor) must flush the TLB afterwards, as the paper requires —
    /// [`Machine::sfence_vma_all`] — because permissions are inlined in TLB
    /// entries.
    pub fn regs_mut(&mut self) -> &mut HpmpRegFile {
        &mut self.regs
    }

    /// The PMPTW-Cache (for stats inspection).
    pub fn pmptw_cache(&self) -> &PmptwCache {
        &self.pmptw_cache
    }

    /// Flushes all TLB, PWC and PMPTW-Cache state (`sfence.vma` +
    /// HPMP-reconfiguration flush).
    pub fn sfence_vma_all(&mut self) {
        self.tlb.flush_all();
        self.itlb.flush_all();
        self.pwc.flush_all();
        self.pmptw_cache.flush_all();
    }

    /// Flushes translation state for one ASID (`sfence.vma` with ASID).
    pub fn sfence_vma_asid(&mut self, asid: u16) {
        self.tlb.flush_asid(asid);
        self.itlb.flush_asid(asid);
        self.pwc.flush_asid(asid);
    }

    /// Flushes one page's translation (`sfence.vma` with address + ASID).
    /// The PWC is flushed per-ASID: its entries cache non-leaf steps that a
    /// single-page unmap may invalidate at the leaf level only, but a
    /// conservative implementation (like ours) drops the ASID's entries.
    pub fn sfence_vma_page(&mut self, asid: u16, va: VirtAddr) {
        self.tlb.flush_page(asid, va);
        self.itlb.flush_page(asid, va);
        self.pwc.flush_asid(asid);
    }

    /// Empties all caches and DRAM row buffers — the cold TC1 state.
    pub fn flush_microarch(&mut self) {
        self.mem_sys.flush_all();
        self.sfence_vma_all();
    }

    /// Aggregate counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> hpmp_paging::TlbStats {
        self.tlb.stats()
    }

    /// Memory-system counters.
    pub fn mem_stats(&self) -> hpmp_memsim::MemSystemStats {
        self.mem_sys.stats()
    }

    /// Clears all counters (cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = MachineStats::default();
        self.mem_sys.reset_stats();
        self.tlb.reset_stats();
        self.pwc.reset_stats();
        self.pmptw_cache.reset_stats();
    }

    /// Performs one data access at `va` in `space`.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] on translation failure, a PTE permission
    /// violation, or an isolation denial (on a PT page or on the data page).
    pub fn access(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivMode,
    ) -> Result<AccessOutcome, Fault> {
        self.access_inner(space, va, kind, mode, kind == AccessKind::Fetch)
    }

    /// Performs one instruction fetch at `va` in `space` — HPMP "applies to
    /// all memory accesses … including instruction fetches". Fetches use a
    /// separate I-TLB (Table 1's "L1 I/D TLB 32 entries each") but share the
    /// walker, the checker and the cache hierarchy.
    ///
    /// # Errors
    ///
    /// As [`Machine::access`], with the X permission required at both
    /// layers.
    pub fn fetch(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
        mode: PrivMode,
    ) -> Result<AccessOutcome, Fault> {
        self.access_inner(space, va, AccessKind::Fetch, mode, true)
    }

    fn access_inner(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivMode,
        instruction: bool,
    ) -> Result<AccessOutcome, Fault> {
        let mut cycles = self.core.pipeline_overhead;
        let mut refs = RefBreakdown::default();

        // 1. TLB lookup (I-TLB for fetches). Permission inlining means a
        //    hit needs no isolation-layer work at all.
        let tlb = if instruction { &mut self.itlb } else { &mut self.tlb };
        let lookup = tlb.lookup(space.asid(), va);
        if let Some((entry, hit)) = lookup {
            if !entry.page_perms.allows(kind) {
                self.stats.faults += 1;
                return Err(Fault::PtePermission(va));
            }
            let paddr = apply_translation(&entry, va);
            if self.tlb_inlining {
                if !entry.isolation_perms.allows(kind) {
                    self.stats.faults += 1;
                    return Err(Fault::IsolationOnData(paddr));
                }
            } else {
                // Ablation: no inlining — every access re-checks.
                let check =
                    self.regs.check(&self.phys, &mut self.pmptw_cache, paddr, kind, mode);
                refs.pmpte_for_data += check.refs.len() as u64;
                cycles += self.charge_pmpte_refs(&check.refs);
                if !check.allowed {
                    self.stats.faults += 1;
                    return Err(Fault::IsolationOnData(paddr));
                }
            }
            if hit == TlbHit::L2 {
                // Both TLBs share one configuration.
                cycles += self.tlb.config().l2_hit_latency;
            }
            cycles += self.data_ref(paddr, kind);
            refs.data_reads = 1;
            self.stats.accesses += 1;
            self.stats.cycles += cycles;
            self.accumulate(refs);
            return Ok(AccessOutcome { cycles, refs, tlb_hit: Some(hit), paddr });
        }

        // 2. TLB miss: page-table walk. Each PT-page reference is first
        //    validated by the isolation layer, then read.
        self.stats.walks += 1;
        let result = walk(&self.phys, space, &mut self.pwc, va);
        for pt_ref in &result.pt_refs {
            let check = self.regs.check(
                &self.phys,
                &mut self.pmptw_cache,
                pt_ref.addr,
                AccessKind::Read,
                mode,
            );
            refs.pmpte_for_pt += check.refs.len() as u64;
            cycles += self.charge_pmpte_refs(&check.refs);
            if !check.allowed {
                self.stats.faults += 1;
                return Err(Fault::IsolationOnPtPage(pt_ref.addr));
            }
            cycles += self.mem_sys.access_ptw(pt_ref.addr).cycles;
            refs.pt_reads += 1;
        }
        let Some(translation) = result.translation else {
            self.stats.faults += 1;
            return Err(Fault::PageFault(va));
        };
        if !translation.perms.allows(kind) {
            self.stats.faults += 1;
            return Err(Fault::PtePermission(va));
        }

        // 3. Isolation check for the data page.
        let check = self.regs.check(
            &self.phys,
            &mut self.pmptw_cache,
            translation.paddr,
            kind,
            mode,
        );
        refs.pmpte_for_data += check.refs.len() as u64;
        cycles += self.charge_pmpte_refs(&check.refs);
        if !check.allowed {
            self.stats.faults += 1;
            return Err(Fault::IsolationOnData(translation.paddr));
        }

        // 4. TLB refill with inlined isolation permission, then the data
        //    reference itself.
        let tlb = if instruction { &mut self.itlb } else { &mut self.tlb };
        tlb.fill(TlbEntry {
            asid: space.asid(),
            vpn: va.page_number(),
            frame: translation.paddr.page_base(),
            page_perms: translation.perms,
            isolation_perms: check.perms,
            user: translation.user,
        });
        cycles += self.data_ref(translation.paddr, kind);
        refs.data_reads = 1;

        self.stats.accesses += 1;
        self.stats.cycles += cycles;
        self.accumulate(refs);
        Ok(AccessOutcome { cycles, refs, tlb_hit: None, paddr: translation.paddr })
    }

    /// Charges a list of pmpte reads to the memory system, returning their
    /// observed latency.
    fn charge_pmpte_refs(&mut self, pmpte_refs: &[hpmp_core::PmptRef]) -> u64 {
        // Walk references are a dependent pointer chase: the out-of-order
        // window cannot overlap them, so they cost their raw latency.
        let mut cycles = 0;
        for r in pmpte_refs {
            cycles += self.mem_sys.access_ptw(r.addr).cycles;
        }
        cycles
    }

    /// Issues the data reference, including the store-miss penalty.
    fn data_ref(&mut self, paddr: PhysAddr, kind: AccessKind) -> u64 {
        let outcome = self.mem_sys.access(paddr);
        let hit = outcome.level != HitLevel::Dram;
        let mut cycles = self.core.observed_ref_cycles(outcome.cycles, hit);
        if kind == AccessKind::Write && outcome.level != HitLevel::L1 {
            cycles += self.core.store_miss_penalty;
        }
        cycles
    }

    fn accumulate(&mut self, refs: RefBreakdown) {
        self.stats.refs.pt_reads += refs.pt_reads;
        self.stats.refs.data_reads += refs.data_reads;
        self.stats.refs.pmpte_for_pt += refs.pmpte_for_pt;
        self.stats.refs.pmpte_for_data += refs.pmpte_for_data;
    }

    /// Adds pure-compute cycles to the running total (used by workload
    /// models for their non-memory instructions).
    pub fn run_compute(&mut self, instructions: u64) -> u64 {
        let cycles = self.core.alu_cycles(instructions);
        self.stats.cycles += cycles;
        cycles
    }

    /// Performs a DMA transfer of `len` bytes at `base` from `device`,
    /// checked line-by-page against `iopmp` (§9's I/O protection). DMA
    /// bypasses the L1 like the walker port. Returns the cycle cost.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::IsolationOnData`] at the first denied page.
    pub fn dma_transfer(
        &mut self,
        iopmp: &hpmp_core::IoPmp,
        device: hpmp_core::DeviceId,
        base: PhysAddr,
        len: u64,
        kind: AccessKind,
    ) -> Result<u64, Fault> {
        let mut cycles = 0;
        let mut offset = 0;
        let mut checked_page = None;
        while offset < len {
            let addr = base + offset;
            // One permission check per page crossed.
            if checked_page != Some(addr.page_number()) {
                let outcome = iopmp.check(&self.phys, device, addr, kind);
                for r in &outcome.refs {
                    cycles += self.mem_sys.access_ptw(r.addr).cycles;
                }
                if !outcome.allowed {
                    self.stats.faults += 1;
                    return Err(Fault::IsolationOnData(addr));
                }
                checked_page = Some(addr.page_number());
            }
            cycles += self.mem_sys.access_ptw(addr).cycles;
            offset += hpmp_memsim::LINE_SIZE;
        }
        self.stats.cycles += cycles;
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_core::PmpRegion;
    use hpmp_memsim::{FrameAllocator, Perms, PAGE_SIZE};
    use hpmp_paging::TranslationMode;

    fn flat_machine() -> (Machine, AddressSpace) {
        let mut machine = Machine::new(MachineConfig::rocket());
        machine
            .regs_mut()
            .configure_segment(0, PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30),
                               Perms::RWX)
            .expect("segment");
        let mut frames =
            FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let mut space =
            AddressSpace::new(TranslationMode::Sv39, 1, machine.phys_mut(), &mut frames)
                .expect("space");
        space
            .map_page(machine.phys_mut(), &mut frames, VirtAddr::new(0x1000),
                      PhysAddr::new(0x8010_0000), Perms::RX, true)
            .expect("code page");
        space
            .map_page(machine.phys_mut(), &mut frames, VirtAddr::new(0x2000),
                      PhysAddr::new(0x8010_1000), Perms::RW, true)
            .expect("data page");
        (machine, space)
    }

    #[test]
    fn fetch_requires_execute_permission() {
        let (mut machine, space) = flat_machine();
        machine
            .fetch(&space, VirtAddr::new(0x1000), PrivMode::User)
            .expect("RX page is fetchable");
        let err = machine
            .fetch(&space, VirtAddr::new(0x2000), PrivMode::User)
            .expect_err("RW page is not fetchable");
        assert!(matches!(err, Fault::PtePermission(_)));
    }

    #[test]
    fn itlb_and_dtlb_are_separate() {
        let (mut machine, space) = flat_machine();
        let code = VirtAddr::new(0x1000);
        // A data read warms the D-TLB only.
        machine.access(&space, code, AccessKind::Read, PrivMode::User).expect("read");
        let fetch = machine.fetch(&space, code, PrivMode::User).expect("fetch");
        assert!(fetch.tlb_hit.is_none(), "first fetch must walk despite warm D-TLB");
        let refetch = machine.fetch(&space, code, PrivMode::User).expect("refetch");
        assert!(refetch.tlb_hit.is_some(), "second fetch hits the I-TLB");
    }

    #[test]
    fn fetch_checked_by_isolation_layer() {
        let (mut machine, space) = flat_machine();
        // Shrink the allow segment so the code page falls outside it.
        machine.regs_mut().disable(0).expect("disable");
        machine
            .regs_mut()
            .configure_segment(0, PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 20),
                               Perms::RWX)
            .expect("narrow segment");
        machine.sfence_vma_all();
        let err = machine
            .fetch(&space, VirtAddr::new(0x1000), PrivMode::User)
            .expect_err("fetch outside the segment must fault");
        assert!(matches!(err, Fault::IsolationOnPtPage(_) | Fault::IsolationOnData(_)));
    }
}
