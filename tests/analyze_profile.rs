//! End-to-end: the acceptance path for `hpmp-analyze profile` — drive real
//! machines with a JSONL sink, read the trace back through the versioned
//! reader, and verify the paper's reference-count claims are recovered
//! from event data alone (native Sv39 miss path 6 vs 12 references;
//! virtualized 3-D dimension 12 vs 36).

use hpmp_suite::analyze::{IsolationShape, WalkProfile};
use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder, VirtMachine, VirtScheme};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr};
use hpmp_suite::trace::{JsonlSink, TraceReader};

/// One cold native access under `scheme`, traced into the lent sink.
fn trace_native(scheme: IsolationScheme, sink: &mut JsonlSink<Vec<u8>>) {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme)
        .sink(sink)
        .build();
    sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
    sys.sync_pt_grants();
    sys.machine.flush_microarch();
    sys.machine
        .access(
            &sys.space,
            VirtAddr::new(0x10_0000),
            AccessKind::Read,
            PrivMode::Supervisor,
        )
        .expect("mapped");
}

/// One cold virtualized access under `scheme`, traced into the lent sink.
fn trace_virt(scheme: VirtScheme, sink: &mut JsonlSink<Vec<u8>>) {
    let mut machine = VirtMachine::with_sink(MachineConfig::rocket(), scheme, 4, sink);
    machine.flush_microarch();
    machine
        .access(VirtAddr::new(0x20_0000), AccessKind::Read)
        .expect("guest page mapped");
}

#[test]
fn profile_recovers_paper_reference_counts_from_trace_alone() {
    // One stream, several machines: exactly what `repro --trace-out` emits.
    let mut sink = JsonlSink::new(Vec::new());
    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        trace_native(scheme, &mut sink);
    }
    for scheme in [
        VirtScheme::Pmp,
        VirtScheme::PmpTable,
        VirtScheme::Hpmp,
        VirtScheme::HpmpGpt,
    ] {
        trace_virt(scheme, &mut sink);
    }
    let bytes = sink.into_inner();

    let events = TraceReader::new(bytes.as_slice())
        .expect("header validates")
        .read_all()
        .expect("trace parses");
    assert_eq!(events.len(), 7, "one event per cold access");

    let profile = WalkProfile::from_events(&events);
    assert!(profile.is_balanced(), "every cycle attributed");

    // §3: the native Sv39 miss path — 12 references under the permission
    // table, 6 under the hybrid, 4 under pure segments.
    let native = &profile.native_cold;
    assert_eq!(native[&IsolationShape::Segment].refs.total(), 4);
    assert_eq!(native[&IsolationShape::Table].refs.total(), 12);
    assert_eq!(native[&IsolationShape::Hybrid].refs.total(), 6);

    // §6: the virtualized walk's extra dimension — 36 G-stage references
    // under the permission table, 12 under HPMP (and under pure segments:
    // the 12 NPT references themselves).
    let virt = &profile.virt_cold;
    assert_eq!(virt[&IsolationShape::Segment].refs.three_d(), 12);
    assert_eq!(virt[&IsolationShape::Table].refs.three_d(), 36);
    assert_eq!(virt[&IsolationShape::Hybrid].refs.three_d(), 12);
    assert_eq!(virt[&IsolationShape::Table].refs.total(), 48);

    // The claim table agrees with the paper wherever it states a number.
    assert!(profile.claims_hold(), "claims: {:?}", profile.claims());

    // And the rendered report carries the verdicts a human would read.
    let report = profile.render();
    assert!(report.contains("step-sum invariant: OK"), "{report}");
    assert!(
        report.contains("3-D references: 36 (paper: 36) OK"),
        "{report}"
    );
    assert!(
        report.contains("3-D references: 12 (paper: 12) OK"),
        "{report}"
    );
    assert!(
        report.contains("total references: 6 (paper: 6) OK"),
        "{report}"
    );
    assert!(
        report.contains("total references: 12 (paper: 12) OK"),
        "{report}"
    );
}

#[test]
fn pmpte_attribution_matches_machine_purpose_counters() {
    // The adjacency rule the profiler uses must agree with the simulator's
    // own per-purpose accounting, for every scheme.
    for (scheme, for_npt, for_gpt, for_data) in [
        (VirtScheme::PmpTable, 24, 6, 2),
        (VirtScheme::Hpmp, 0, 6, 2),
        (VirtScheme::HpmpGpt, 0, 0, 2),
    ] {
        let mut sink = JsonlSink::new(Vec::new());
        trace_virt(scheme, &mut sink);
        let bytes = sink.into_inner();
        let events = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_all()
            .unwrap();
        let refs = hpmp_suite::analyze::EventRefs::of(&events[0]);
        assert_eq!(refs.pmpte_for_npt, for_npt, "{scheme:?}");
        assert_eq!(refs.pmpte_for_gpt, for_gpt, "{scheme:?}");
        assert_eq!(refs.pmpte_for_data, for_data, "{scheme:?}");
        assert_eq!(refs.pmpte_aborted, 0, "{scheme:?}");
    }
}
