//! Cross-backend conformance battery: the threaded SMP backend must be
//! observably identical to the deterministic interleaver — same
//! [`SmpOutcome`], and byte-identical merged counter snapshots — on
//! fixed-seed workloads across hart counts.
//!
//! This is the contract that lets the threaded backend's wall-clock
//! speedup be claimed for free: if the merged snapshot (every `hart.<i>.*`
//! machine counter, the `smp.*` aggregates, the `monitor.*` costs) is the
//! same byte string, nothing the simulation *models* changed — only how
//! long it took to compute.

use hpmp_machine::ExecBackend;
use hpmp_memsim::CoreKind;
use hpmp_penglai::TeeFlavor;
use hpmp_trace::Snapshot;
use hpmp_workloads::smp::{run_smp_backend, spec_for, SmpOutcome};

/// The fixed seed every conformance run uses (same as `hpmpsim`'s).
const SMP_SEED: u64 = 0x4850_4d50;

fn run(
    workload: &str,
    harts: usize,
    backend: ExecBackend,
    flavor: TeeFlavor,
) -> (SmpOutcome, Snapshot) {
    let spec = spec_for(workload).expect("workload has an SMP shape");
    run_smp_backend(flavor, CoreKind::Rocket, harts, SMP_SEED, spec, backend)
        .expect("workload runs clean")
}

fn assert_conformant(workload: &str, harts: usize, flavor: TeeFlavor) {
    let (det, det_snap) = run(workload, harts, ExecBackend::Deterministic, flavor);
    let (thr, thr_snap) = run(workload, harts, ExecBackend::Threaded, flavor);
    assert_eq!(
        det, thr,
        "{workload}@{harts}: outcome diverged between backends"
    );
    assert_eq!(
        det_snap.to_json_versioned(),
        thr_snap.to_json_versioned(),
        "{workload}@{harts}: merged counter snapshots are not byte-identical"
    );
}

/// The shootdown stress case: continual allocs, frees and switches, so
/// every epoch is short and the mailbox path is exercised hard.
#[test]
fn tenancy_conforms_across_hart_counts() {
    for harts in [2, 4, 8] {
        assert_conformant("tenancy", harts, TeeFlavor::PenglaiHpmp);
    }
}

/// Switch-heavy but churn-free: epochs end on domain switches only, so
/// every deferred shootdown is a `FenceOnly`.
#[test]
fn lmbench_conforms_across_hart_counts() {
    for harts in [2, 4, 8] {
        assert_conformant("lmbench", harts, TeeFlavor::PenglaiHpmp);
    }
}

/// No monitor traffic after setup: the whole run is one epoch, the purest
/// parallel case (and the one where a shard-sync bug would hide longest).
#[test]
fn gap_conforms_across_hart_counts() {
    for harts in [2, 4, 8] {
        assert_conformant("gap", harts, TeeFlavor::PenglaiHpmp);
    }
}

/// The PMP baseline flavor reprograms remote images on churn, driving the
/// `Reprogram` mailbox path rather than `FenceOnly`.
#[test]
fn tenancy_conforms_under_pmp_baseline() {
    assert_conformant("tenancy", 4, TeeFlavor::PenglaiPmp);
}

/// The threaded backend itself must be run-to-run deterministic: thread
/// scheduling may not leak into outcomes or snapshots.
#[test]
fn threaded_backend_is_run_to_run_deterministic() {
    let (a, snap_a) = run("tenancy", 4, ExecBackend::Threaded, TeeFlavor::PenglaiHpmp);
    let (b, snap_b) = run("tenancy", 4, ExecBackend::Threaded, TeeFlavor::PenglaiHpmp);
    assert_eq!(a, b);
    assert_eq!(snap_a.to_json_versioned(), snap_b.to_json_versioned());
}
