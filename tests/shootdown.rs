//! Cross-hart shootdown conformance: under randomized multi-hart
//! schedules of domain switches, GMS grants/revokes and teardowns, every
//! hart's fast-path permission answer must stay consistent with the
//! monitor's cache-free lockstep oracle — a stale grant on *any* hart is a
//! silent isolation failure.
//!
//! The battery has four parts:
//!
//! 1. A property test: seeded random schedules (default 1000, overridable
//!    via `HPMP_SCHEDULES`) across 2–4 harts and all three flavours, with
//!    the fail-closed invariant (`fast grant ⇒ oracle grant`) checked on
//!    every hart after every op.
//! 2. A meta-test proving the property is *observable*: with shootdown
//!    delivery suppressed, a remote hart's inlined-TLB grant survives the
//!    revoke and contradicts the oracle; with delivery on, the same
//!    schedule revokes it.
//! 3. A regression for the hole the SMP layer actually closes: destroying
//!    a domain scheduled on another hart must park that hart in the host,
//!    not leave it running a corpse's image.
//! 4. Pinned counterexample schedules harvested from `hpmp-verify bmc
//!    --plant suppress-shootdown`, replayed in both directions: closed
//!    with delivery on, reproducing the reported divergence when
//!    suppressed.

use hpmp_suite::core::{PmpRegion, PmptwCache};
use hpmp_suite::memsim::{
    AccessKind, FrameAllocator, PhysAddr, PrivMode, SplitMix64, VirtAddr, PAGE_SIZE,
};
use hpmp_suite::paging::{AddressSpace, TranslationMode};
use hpmp_suite::penglai::{DomainId, GmsLabel, MonitorError, SmpSystem, TeeFlavor};
use hpmp_suite::trace::NullSink;

const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

const FLAVORS: [TeeFlavor; 3] = [
    TeeFlavor::PenglaiPmp,
    TeeFlavor::PenglaiPmpt,
    TeeFlavor::PenglaiHpmp,
];

fn boot(flavor: TeeFlavor, harts: usize) -> SmpSystem {
    SmpSystem::boot(
        hpmp_suite::machine::MachineConfig::rocket(),
        flavor,
        RAM,
        harts,
    )
    .expect("SMP system boots")
}

/// Every hart's register-image answer for `addr`, checked against the
/// oracle's answer for that hart's scheduled domain. Fail-closed: the fast
/// path may deny what the oracle would grant (a stale *revoke* is safe),
/// never grant what the oracle denies.
fn assert_no_divergence(smp: &mut SmpSystem<NullSink>, probes: &[PhysAddr], context: &str) {
    for hart in 0..smp.harts() as u16 {
        for &pa in probes {
            let fast = {
                let m = smp.machine(hart);
                let mut cache = PmptwCache::disabled();
                m.regs()
                    .check(
                        m.phys(),
                        &mut cache,
                        pa,
                        AccessKind::Read,
                        PrivMode::Supervisor,
                    )
                    .allowed
            };
            let oracle = smp.oracle_check_on(hart, pa, AccessKind::Read);
            assert!(
                !fast || oracle,
                "{context}: hart {hart} fast path grants {pa} to {:?} but the oracle denies it",
                smp.scheduled(hart)
            );
        }
    }
}

/// The probe set: the monitor's own memory plus every live domain's first
/// region base.
fn probes(smp: &SmpSystem<NullSink>, live: &[DomainId]) -> Vec<PhysAddr> {
    let mut probes = vec![PhysAddr::new(
        smp.monitor().monitor_region().base.raw() + 0x800,
    )];
    for &d in live {
        if let Ok(regions) = smp.monitor().regions_of(d) {
            if let Some(g) = regions.first() {
                probes.push(g.region.base);
            }
        }
    }
    probes
}

/// Number of random schedules the property test runs. `HPMP_SCHEDULES`
/// overrides the default of 1000 — lower for quick local iteration,
/// higher for a soak run; the seed is fixed either way, so any count's
/// prefix is reproducible.
fn schedule_count() -> u32 {
    match std::env::var("HPMP_SCHEDULES") {
        Err(_) => 1000,
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("HPMP_SCHEDULES must be a count, got `{v}`")),
    }
}

#[test]
fn randomized_schedules_never_diverge_from_the_oracle() {
    let mut rng = SplitMix64::seed_from_u64(0x5100_7d01);
    for case in 0..schedule_count() {
        let flavor = FLAVORS[rng.gen_range(0..3) as usize];
        let harts = 2 + rng.gen_range(0..3) as usize; // 2..=4
        let mut smp = boot(flavor, harts);
        let mut live: Vec<DomainId> = vec![DomainId::HOST];
        // Regions allocated during the schedule, free/relabel candidates.
        let mut grants: Vec<(DomainId, PhysAddr)> = Vec::new();

        let n_ops = 3 + rng.gen_range(0..6) as usize;
        for step in 0..n_ops {
            let hart = rng.gen_range(0..harts as u64) as u16;
            match rng.gen_range(0..6) {
                0 => match smp.create_domain_on(hart, 256 * 1024, GmsLabel::Slow) {
                    Ok((id, _)) => live.push(id),
                    Err(MonitorError::OutOfPmpEntries | MonitorError::OutOfMemory) => {}
                    Err(e) => panic!("create failed: {e}"),
                },
                1 => {
                    let enclaves: Vec<DomainId> = live
                        .iter()
                        .copied()
                        .filter(|&d| d != DomainId::HOST)
                        .collect();
                    if enclaves.is_empty() {
                        continue;
                    }
                    let victim = enclaves[rng.gen_range(0..enclaves.len() as u64) as usize];
                    smp.destroy_domain_on(hart, victim).expect("destroy");
                    live.retain(|&d| d != victim);
                    grants.retain(|&(d, _)| d != victim);
                }
                2 => {
                    let target = live[rng.gen_range(0..live.len() as u64) as usize];
                    let size = 64 * 1024 * rng.gen_range(1..5);
                    match smp.alloc_on(hart, target, size, GmsLabel::Slow) {
                        Ok((region, _)) => grants.push((target, region.base)),
                        Err(MonitorError::OutOfPmpEntries | MonitorError::OutOfMemory) => {}
                        Err(e) => panic!("alloc failed: {e}"),
                    }
                }
                3 => {
                    if grants.is_empty() {
                        continue;
                    }
                    let (domain, base) =
                        grants.swap_remove(rng.gen_range(0..grants.len() as u64) as usize);
                    if !live.contains(&domain) {
                        continue;
                    }
                    smp.free_on(hart, domain, base).expect("free");
                }
                4 => {
                    let target = live[rng.gen_range(0..live.len() as u64) as usize];
                    match smp.switch_on(hart, target) {
                        Ok(_) => {}
                        Err(MonitorError::AlreadyScheduled(_) | MonitorError::OutOfPmpEntries) => {}
                        Err(e) => panic!("switch failed: {e}"),
                    }
                }
                _ => {
                    if grants.is_empty() {
                        continue;
                    }
                    let (domain, base) = grants[rng.gen_range(0..grants.len() as u64) as usize];
                    if !live.contains(&domain) {
                        continue;
                    }
                    let label = if rng.gen_range(0..2) == 0 {
                        GmsLabel::Fast
                    } else {
                        GmsLabel::Slow
                    };
                    match smp.relabel_on(hart, domain, base, label) {
                        Ok(_) => {}
                        Err(MonitorError::OutOfPmpEntries | MonitorError::OutOfMemory) => {}
                        Err(e) => panic!("relabel failed: {e}"),
                    }
                }
            }
            let probes = probes(&smp, &live);
            assert_no_divergence(
                &mut smp,
                &probes,
                &format!("case {case} ({flavor}, {harts} harts) step {step}"),
            );
        }
        // Cycle and IPI accounting must also have stayed coherent across
        // the schedule — a shootdown delivered but not charged (or vice
        // versa) is an observability failure even when permissions agree.
        smp.verify_accounting()
            .unwrap_or_else(|e| panic!("case {case} ({flavor}, {harts} harts): {e}"));
    }
}

/// Boots a 2-hart system with one enclave scheduled on hart 1, its data
/// region mapped at `va` in an address space hart 1 can walk. Returns the
/// system, the enclave id, the data region, and the space.
fn enclave_on_hart1(
    flavor: TeeFlavor,
) -> (
    SmpSystem<NullSink>,
    DomainId,
    PmpRegion,
    AddressSpace,
    VirtAddr,
) {
    let mut smp = boot(flavor, 2);
    let (id, _) = smp
        .create_domain_on(0, 256 * 1024, GmsLabel::Slow)
        .expect("create");
    let pool = smp.monitor().regions_of(id).expect("live")[0].region;
    let (data, _) = smp
        .alloc_on(0, id, 16 * PAGE_SIZE, GmsLabel::Slow)
        .expect("alloc");
    smp.switch_on(1, id).expect("schedule on hart 1");

    let mut frames = FrameAllocator::new(pool.base, pool.size);
    let machine = smp.machine(1);
    let mut space = AddressSpace::new(TranslationMode::Sv39, 1, machine.phys_mut(), &mut frames)
        .expect("space");
    let va = VirtAddr::new(0x10_0000);
    space
        .map_page(
            machine.phys_mut(),
            &mut frames,
            va,
            data.base,
            hpmp_suite::memsim::Perms::RW,
            true,
        )
        .expect("map");
    (smp, id, data, space, va)
}

/// The meta-test: the divergence the property test guards against is real
/// and observable. Permissions are inlined in TLB entries, so a hart that
/// never receives the shootdown keeps *granting* — the register image and
/// the TLB both go stale, and only the IPI closes them.
#[test]
fn suppressed_shootdown_leaves_a_stale_grant_on_the_remote_hart() {
    let (mut smp, id, data, space, va) = enclave_on_hart1(TeeFlavor::PenglaiHpmp);

    // Warm hart 1's TLB with the enclave mapping: permission now inlined.
    smp.machine(1)
        .access(&space, va, AccessKind::Read, PrivMode::User)
        .expect("enclave reaches its own data");

    // Revoke the data region from hart 0 with delivery suppressed.
    smp.set_shootdown_suppression(true);
    smp.free_on(0, id, data.base).expect("revoke");

    // The oracle says no; the remote hart still says yes. This is exactly
    // the divergence `assert_no_divergence` exists to catch.
    assert!(
        !smp.oracle_check_on(1, data.base, AccessKind::Read),
        "oracle must deny the freed region"
    );
    let stale = smp
        .machine(1)
        .access(&space, va, AccessKind::Read, PrivMode::User);
    assert!(
        stale.is_ok(),
        "suppressed shootdown must leave the stale TLB grant observable"
    );
}

/// The same schedule with delivery on: the remote fence kills the inlined
/// grant and the next access faults on the re-walk.
#[test]
fn delivered_shootdown_revokes_the_remote_grant() {
    let (mut smp, id, data, space, va) = enclave_on_hart1(TeeFlavor::PenglaiHpmp);
    smp.machine(1)
        .access(&space, va, AccessKind::Read, PrivMode::User)
        .expect("enclave reaches its own data");

    smp.free_on(0, id, data.base).expect("revoke");

    assert!(
        smp.machine(1)
            .access(&space, va, AccessKind::Read, PrivMode::User)
            .is_err(),
        "the shootdown fence must kill the inlined grant"
    );
    // And the fast path agrees with the oracle again, with every cycle of
    // the shootdown charged consistently across harts and monitor.
    let probes = [data.base];
    assert_no_divergence(&mut smp, &probes, "post-shootdown");
    smp.verify_accounting().expect("accounting stays coherent");
}

/// Counterexample schedules harvested from `hpmp-verify bmc --flavor pmp
/// --plant suppress-shootdown --seed-out`, pinned as regressions. Each is
/// replayed in both directions against the same 128 MiB 2-hart boot the
/// checker used: with delivery on, the monitor must close the window (no
/// divergence anywhere); with delivery suppressed, the schedule must
/// reproduce a grant-where-oracle-denies — proving the pinned text still
/// drives the hole the checker reported, not a vacuous replay.
///
/// PMP flavour, because that is where the register *image* itself goes
/// stale; the table flavours share permission tables in physical memory,
/// so suppression there only leaves cached (non-architectural) staleness.
const PINNED_BMC_COUNTEREXAMPLES: [&str; 3] = [
    // The minimal (depth-1) counterexample: creating an enclave carves a
    // deny out of the host's image; unshot, hart 1 keeps the stale grant.
    "h0:create",
    // Widening the carve: a second region allocated to the enclave adds
    // a second deny hart 1 never receives.
    "h0:create h0:alloc(1,fast)",
    // Revoke staleness under pressure placement: a compaction-sized
    // allocation then its free, with the revoke never delivered.
    "h0:create h0:alloc(1,slow,big) h0:free(1,1)",
];

#[test]
fn pinned_bmc_counterexamples_stay_closed() {
    use hpmp_suite::modelcheck::bmc::{boot_system, fail_closed_violation, BmcConfig, Plant};
    use hpmp_suite::modelcheck::Schedule;

    let config = BmcConfig {
        flavor: TeeFlavor::PenglaiPmp,
        ..BmcConfig::default()
    };
    for text in PINNED_BMC_COUNTEREXAMPLES {
        let sched = Schedule::parse(text).expect("pinned schedule parses");

        // Delivery on: every hart converges after every op.
        let mut smp = boot_system(&config);
        sched.run(&mut smp).expect("pinned schedule replays");
        assert!(
            fail_closed_violation(&mut smp).is_none(),
            "`{text}` must not diverge with shootdown delivery on"
        );

        // Suppressed: the divergence the checker reported must reproduce.
        let mut smp = boot_system(&BmcConfig {
            plant: Plant::SuppressShootdowns,
            ..config
        });
        sched.run(&mut smp).expect("pinned schedule replays");
        let (hart, addr) = fail_closed_violation(&mut smp)
            .unwrap_or_else(|| panic!("`{text}` must reproduce its stale grant when suppressed"));
        assert!(
            hart > 0,
            "`{text}`: the issuing hart shot itself down locally"
        );
        assert_ne!(addr, 0);
    }
}

/// Regression: destroying a domain that is scheduled on a different hart.
/// The reprogram IPI's handler finds its domain gone and must park that
/// hart in the host — the original implementation hole was resolving the
/// dead domain's regions during reprogramming.
#[test]
fn destroy_under_a_running_hart_parks_it_in_the_host() {
    for flavor in FLAVORS {
        let mut smp = boot(flavor, 3);
        let (id, _) = smp
            .create_domain_on(0, 256 * 1024, GmsLabel::Slow)
            .expect("create");
        smp.switch_on(2, id).expect("schedule on hart 2");
        smp.destroy_domain_on(0, id).expect("destroy from hart 0");
        assert_eq!(smp.scheduled(2), DomainId::HOST, "{flavor}");
        // The parked hart answers as the host, with no divergence.
        let probes = probes(&smp, &[DomainId::HOST]);
        assert_no_divergence(&mut smp, &probes, &format!("{flavor} post-destroy"));
        smp.verify_accounting()
            .unwrap_or_else(|e| panic!("{flavor}: {e}"));
    }
}
