//! §9 "efficient isolation through new abstractions": the three hint
//! ioctls (create / delete / query) that let an application mark hot data
//! regions, which Penglai-HPMP then backs with segment entries — removing
//! the *data-page* permission references on top of the already-removed
//! PT-page references.

use hpmp_suite::memsim::{AccessKind, CoreKind, VirtAddr, PAGE_SIZE};
use hpmp_suite::penglai::{OsError, TeeFlavor, USER_HEAP_BASE};
use hpmp_suite::workloads::TeeBench;

fn boot_with_heap(flavor: TeeFlavor) -> (TeeBench, hpmp_suite::penglai::Pid) {
    let mut tee = TeeBench::boot(flavor, CoreKind::Rocket);
    let (pid, _) = tee.os.spawn(&mut tee.machine, 2).expect("spawn");
    tee.os.mmap(&mut tee.machine, pid, 16).expect("mmap");
    (tee, pid)
}

/// A hinted hot page is checked by segment: a cold HPMP walk drops from 6
/// references (3 PT + 2 pmpte-for-data + 1 data) to 4 — PMP-class cost at
/// page granularity.
#[test]
fn hint_removes_data_pmpte_refs() {
    let (mut tee, pid) = boot_with_heap(TeeFlavor::PenglaiHpmp);
    let heap = VirtAddr::new(USER_HEAP_BASE);
    let domain = tee.domain;

    // Before the hint: cold access pays the data permission walk (1 ref
    // here — the host grant used a huge root pmpte — 2 with per-page fill).
    tee.machine.flush_microarch();
    tee.machine.reset_stats();
    let before = tee
        .os
        .user_access(&mut tee.machine, pid, heap, AccessKind::Read)
        .expect("access");
    let pmpte_before = tee.machine.stats().refs.pmpte_for_data;
    assert!(
        pmpte_before >= 1,
        "table path must be active before the hint"
    );

    let (hint, _) = tee
        .os
        .ioctl_hint_create(&mut tee.machine, &mut tee.monitor, domain, pid, heap, 8)
        .expect("hint create");

    tee.machine.flush_microarch();
    tee.machine.reset_stats();
    let after = tee
        .os
        .user_access(&mut tee.machine, pid, heap, AccessKind::Read)
        .expect("access");
    let stats = tee.machine.stats();
    assert_eq!(
        stats.refs.pmpte_for_data, 0,
        "hot region must be segment-checked"
    );
    assert_eq!(stats.refs.total(), 4, "PMP-class walk for hinted data");
    let _ = pmpte_before;
    assert!(
        after < before,
        "hinted access must be cheaper: {after} vs {before}"
    );

    // Delete restores table checking.
    tee.os
        .ioctl_hint_delete(&mut tee.machine, &mut tee.monitor, domain, hint)
        .expect("hint delete");
    tee.machine.flush_microarch();
    tee.machine.reset_stats();
    tee.os
        .user_access(&mut tee.machine, pid, heap, AccessKind::Read)
        .expect("access");
    assert_eq!(
        tee.machine.stats().refs.pmpte_for_data,
        pmpte_before,
        "delete restores the table path"
    );
}

/// Query lists installed hints; delete removes exactly one.
#[test]
fn hint_query_and_delete() {
    let (mut tee, pid) = boot_with_heap(TeeFlavor::PenglaiHpmp);
    let domain = tee.domain;
    let (a, _) = tee
        .os
        .ioctl_hint_create(
            &mut tee.machine,
            &mut tee.monitor,
            domain,
            pid,
            VirtAddr::new(USER_HEAP_BASE),
            4,
        )
        .expect("hint a");
    let (b, _) = tee
        .os
        .ioctl_hint_create(
            &mut tee.machine,
            &mut tee.monitor,
            domain,
            pid,
            VirtAddr::new(USER_HEAP_BASE + 8 * PAGE_SIZE),
            4,
        )
        .expect("hint b");
    assert_eq!(tee.os.ioctl_hint_query().len(), 2);
    tee.os
        .ioctl_hint_delete(&mut tee.machine, &mut tee.monitor, domain, a)
        .expect("del");
    let remaining = tee.os.ioctl_hint_query();
    assert_eq!(remaining.len(), 1);
    assert_eq!(remaining[0].id, b);
    // Double delete fails cleanly.
    assert!(matches!(
        tee.os
            .ioctl_hint_delete(&mut tee.machine, &mut tee.monitor, domain, a),
        Err(OsError::NoSuchHint(_))
    ));
}

/// Hints demand a mapped, physically contiguous range.
#[test]
fn hint_validates_range() {
    let (mut tee, pid) = boot_with_heap(TeeFlavor::PenglaiHpmp);
    let domain = tee.domain;
    // Unmapped range.
    let err = tee
        .os
        .ioctl_hint_create(
            &mut tee.machine,
            &mut tee.monitor,
            domain,
            pid,
            VirtAddr::new(0x7000_0000),
            4,
        )
        .unwrap_err();
    assert!(matches!(err, OsError::BadHintRange(_)));
}

/// The hint path is HPMP-only: the other flavours have no fast segments
/// for data, so the ioctl reports a monitor rejection.
#[test]
fn hints_require_hpmp_flavor() {
    for flavor in [TeeFlavor::PenglaiPmp, TeeFlavor::PenglaiPmpt] {
        let (mut tee, pid) = boot_with_heap(flavor);
        let domain = tee.domain;
        let err = tee
            .os
            .ioctl_hint_create(
                &mut tee.machine,
                &mut tee.monitor,
                domain,
                pid,
                VirtAddr::new(USER_HEAP_BASE),
                4,
            )
            .unwrap_err();
        assert!(matches!(err, OsError::Monitor(_)), "{flavor}");
    }
}

/// Hot-region hints compose with the PT-pool segment: a workload touching
/// only hinted pages sees zero permission-table references at all.
#[test]
fn hints_eliminate_all_table_traffic() {
    let (mut tee, pid) = boot_with_heap(TeeFlavor::PenglaiHpmp);
    let domain = tee.domain;
    tee.os
        .ioctl_hint_create(
            &mut tee.machine,
            &mut tee.monitor,
            domain,
            pid,
            VirtAddr::new(USER_HEAP_BASE),
            16,
        )
        .expect("hint");
    tee.machine.flush_microarch();
    tee.machine.reset_stats();
    for i in 0..16u64 {
        tee.os
            .user_access(
                &mut tee.machine,
                pid,
                VirtAddr::new(USER_HEAP_BASE + i * PAGE_SIZE),
                AccessKind::Write,
            )
            .expect("access");
    }
    let refs = tee.machine.stats().refs;
    assert_eq!(
        refs.pmpte_for_pt + refs.pmpte_for_data,
        0,
        "no permission-table traffic for hinted working sets"
    );
}
