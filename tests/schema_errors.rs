//! Schema-version conformance across every artifact reader: a document
//! declaring a version the reader does not understand must produce a
//! typed [`ReadError::Schema`] that names the offending version — never a
//! panic, and never a silent misparse. One test per reader, all driven
//! off genuine writer output with only the version byte mutated.

use hpmp_suite::analyze::{parse_history, HistoryEntry, BENCH_HISTORY_STREAM};
use hpmp_suite::trace::{
    BenchReport, HostProfile, MetricsRegistry, ReadError, Snapshot, SpanStream, Timeline,
    TraceReader, SCHEMA_VERSION, SPAN_EVENT_STREAM, TIMELINE_STREAM, WALK_EVENT_STREAM,
};

/// The version no reader understands.
const ALIEN: u32 = 99;

/// Assert `err` is the typed schema error and that its message names both
/// the alien version and the supported one, so the user knows what to
/// regenerate with what.
fn assert_schema_error(err: ReadError) {
    assert!(
        matches!(err, ReadError::Schema { .. }),
        "expected ReadError::Schema, got: {err:?}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains(&ALIEN.to_string()),
        "offending version missing: {msg}"
    );
    assert!(
        msg.contains(&SCHEMA_VERSION.to_string()),
        "supported version missing: {msg}"
    );
}

/// Swap the real schema version for the alien one in a serialized doc.
fn bump(doc: &str) -> String {
    let from = format!("\"schema\":{SCHEMA_VERSION}");
    let to = format!("\"schema\":{ALIEN}");
    assert!(
        doc.contains(&from),
        "writer output carries no version: {doc}"
    );
    doc.replacen(&from, &to, 1)
}

#[test]
fn trace_reader_rejects_unknown_version() {
    let good = format!("{{\"schema\":{SCHEMA_VERSION},\"stream\":\"{WALK_EVENT_STREAM}\"}}\n");
    assert!(TraceReader::new(good.as_bytes()).is_ok());
    let err = TraceReader::new(bump(&good).as_bytes())
        .err()
        .expect("must reject");
    assert_schema_error(err);
}

#[test]
fn snapshot_rejects_unknown_version() {
    let mut reg = MetricsRegistry::new();
    reg.set("machine.walks", 7);
    let good = reg.snapshot().to_json_versioned();
    assert_eq!(
        Snapshot::from_json(&good)
            .expect("round trip")
            .get("machine.walks"),
        Some(7)
    );
    assert_schema_error(Snapshot::from_json(&bump(&good)).expect_err("must reject"));
}

#[test]
fn bench_report_rejects_unknown_version() {
    let good = BenchReport::new("schema-probe").to_json();
    assert!(BenchReport::from_json(&good).is_ok());
    assert_schema_error(BenchReport::from_json(&bump(&good)).expect_err("must reject"));
}

#[test]
fn host_profile_rejects_unknown_version() {
    let good = HostProfile {
        name: "schema-probe".to_string(),
        ..HostProfile::default()
    }
    .to_json();
    assert!(HostProfile::from_json(&good).is_ok());
    assert_schema_error(HostProfile::from_json(&bump(&good)).expect_err("must reject"));
}

#[test]
fn span_stream_rejects_unknown_version() {
    let good = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"stream\":\"{SPAN_EVENT_STREAM}\",\"dropped\":0}}\n"
    );
    assert!(SpanStream::parse(good.as_bytes()).is_ok());
    assert_schema_error(SpanStream::parse(bump(&good).as_bytes()).expect_err("must reject"));
}

#[test]
fn timeline_rejects_unknown_version() {
    let good = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"stream\":\"{TIMELINE_STREAM}\",\"interval\":100}}\n"
    );
    // A header-only timeline is truncated (no footer) but that is a
    // *later* error; the version check must fire first on a bumped one.
    assert_schema_error(Timeline::parse(bump(&good).as_bytes()).expect_err("must reject"));
}

#[test]
fn bench_history_rejects_unknown_version_naming_the_line() {
    let good = HistoryEntry {
        label: "seed".to_string(),
        report: "repro".to_string(),
        experiments: Default::default(),
    }
    .to_json_line();
    assert_eq!(parse_history(&good).expect("round trip").len(), 1);
    // Line 1 is fine, line 2 is from the future: the error must name
    // line 2 so an append-only file is debuggable.
    let err = parse_history(&format!("{good}\n{}\n", bump(&good))).expect_err("must reject");
    let msg = err.to_string();
    assert_schema_error(err);
    assert!(msg.contains("line 2"), "line number missing: {msg}");
}

#[test]
fn bench_history_rejects_foreign_streams() {
    let good = HistoryEntry::default().to_json_line();
    let foreign = good.replacen(BENCH_HISTORY_STREAM, WALK_EVENT_STREAM, 1);
    let err = parse_history(&foreign).expect_err("must reject");
    assert!(
        matches!(err, ReadError::Schema { .. }),
        "expected ReadError::Schema, got: {err:?}"
    );
    assert!(err.to_string().contains(WALK_EVENT_STREAM), "{err}");
}
