//! Golden-sequence regression tests: the exact ordered memory-reference
//! sequence of Figure 2-c (and Figure 4), pinned address by address for a
//! known configuration. Any change to walker, checker or builder layout
//! that silently alters the hardware behaviour trips these.

use hpmp_suite::core::PmptwCache;
use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr};
use hpmp_suite::paging::{walk, WalkCache, WalkCacheConfig};

/// Kind tags for the golden sequence.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Ref {
    RootPmpte,
    LeafPmpte,
    Pte(usize),
    Data,
}

/// Reconstructs the ordered reference sequence for one cold TLB-missing
/// load, the way the Figure 2/4 diagrams number their squares and circles.
fn sequence(scheme: IsolationScheme) -> Vec<(Ref, u64)> {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme).build();
    let va = VirtAddr::new(0x10_0000);
    sys.map_range(va, 1, Perms::RW);
    sys.sync_pt_grants();

    let mut out = Vec::new();
    let mut pwc = WalkCache::new(WalkCacheConfig {
        entries: 0,
        hit_latency: 1,
    });
    let result = walk(sys.machine.phys(), &sys.space, &mut pwc, va);
    let mut cache = PmptwCache::disabled();
    for pt_ref in &result.pt_refs {
        let check = sys.machine.regs().check(
            sys.machine.phys(),
            &mut cache,
            pt_ref.addr,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        for r in &check.refs {
            out.push((
                if r.is_root {
                    Ref::RootPmpte
                } else {
                    Ref::LeafPmpte
                },
                r.addr.raw(),
            ));
        }
        out.push((Ref::Pte(pt_ref.level), pt_ref.addr.raw()));
    }
    let t = result.translation.expect("mapped");
    let check = sys.machine.regs().check(
        sys.machine.phys(),
        &mut cache,
        t.paddr,
        AccessKind::Read,
        PrivMode::Supervisor,
    );
    for r in &check.refs {
        out.push((
            if r.is_root {
                Ref::RootPmpte
            } else {
                Ref::LeafPmpte
            },
            r.addr.raw(),
        ));
    }
    out.push((Ref::Data, t.paddr.raw()));
    out
}

/// Figure 2-c: the 12-reference sequence, with the paper's interleaving —
/// (PL1, PL0) before each page-table level, then the leaf data pair.
#[test]
fn pmpt_sequence_matches_figure_2c() {
    let seq = sequence(IsolationScheme::PmpTable);
    assert_eq!(seq.len(), 12);
    let kinds: Vec<Ref> = seq.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        kinds,
        vec![
            Ref::RootPmpte,
            Ref::LeafPmpte,
            Ref::Pte(2), // 1,2,3
            Ref::RootPmpte,
            Ref::LeafPmpte,
            Ref::Pte(1), // 4,5,6
            Ref::RootPmpte,
            Ref::LeafPmpte,
            Ref::Pte(0), // 7,8,9
            Ref::RootPmpte,
            Ref::LeafPmpte,
            Ref::Data, // 10,11,12
        ],
    );
    // Exact addresses for the fixed builder layout (regression pin):
    // PT pages are the first pool frames; pmptes live in the table area.
    assert_eq!(seq[2].1, 0x8000_0000, "root PT page (pool base)");
    assert_eq!(seq[5].1, 0x8000_1000, "L1 PT page");
    assert_eq!(
        seq[8].1,
        0x8000_2000 + (0x100 * 8),
        "L0 PTE slot for vpn0=0x100"
    );
    assert_eq!(seq[11].1, 0x8200_0000, "first data frame");
    // All three PT-page permission checks hit the same root pmpte (same
    // 32 MiB slice) but distinct walks still re-read it.
    assert_eq!(seq[0].1, seq[3].1);
    assert_eq!(seq[0].1, seq[6].1);
}

/// Figure 4: HPMP's 6-reference sequence — the PT-page checks vanish.
#[test]
fn hpmp_sequence_matches_figure_4() {
    let seq = sequence(IsolationScheme::Hpmp);
    let kinds: Vec<Ref> = seq.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        kinds,
        vec![
            Ref::Pte(2),
            Ref::Pte(1),
            Ref::Pte(0), // 1,2,3
            Ref::RootPmpte,
            Ref::LeafPmpte,
            Ref::Data, // 4,5,6
        ],
    );
}

/// Figure 2-b: PMP's 4-reference sequence.
#[test]
fn pmp_sequence_matches_figure_2b() {
    let seq = sequence(IsolationScheme::Pmp);
    let kinds: Vec<Ref> = seq.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        kinds,
        vec![Ref::Pte(2), Ref::Pte(1), Ref::Pte(0), Ref::Data]
    );
}
