//! Property-based tests (proptest) over the core data structures and their
//! invariants: register encodings round-trip, permission tables agree with a
//! reference model, address spaces translate consistently with the hardware
//! walker, and the HPMP checker is deterministic and priority-correct.

use hpmp_suite::core::{
    napot_decode, napot_encode, table_pointer_decode, table_pointer_encode, AddressMode,
    LeafPmpte, PmpConfig, PmpRegion, PmpTable, RootPmpte, TableLevels, TableOffset,
};
use hpmp_suite::memsim::{
    AccessKind, FrameAllocator, Perms, PhysAddr, PhysMem, VirtAddr, PAGE_SIZE,
};
use hpmp_suite::paging::{walk, AddressSpace, Pte, TranslationMode, WalkCache, WalkCacheConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_perms() -> impl Strategy<Value = Perms> {
    (0u8..8).prop_map(Perms::from_bits_truncate)
}

proptest! {
    /// NAPOT encode/decode is the identity on valid (base, size) pairs.
    #[test]
    fn napot_round_trip(size_log in 3u32..36, base_sel in 0u64..1024) {
        let size = 1u64 << size_log;
        let base = PhysAddr::new((base_sel << size_log) & ((1 << 48) - 1));
        let encoded = napot_encode(base, size);
        let (b, s) = napot_decode(encoded);
        prop_assert_eq!(b, base);
        prop_assert_eq!(s, size);
    }

    /// PMP config bytes survive an encode/decode cycle (modulo the reserved
    /// bit, which reads as zero).
    #[test]
    fn pmp_config_round_trip(bits in any::<u8>()) {
        let cfg = PmpConfig::from_bits(bits);
        prop_assert_eq!(PmpConfig::from_bits(cfg.to_bits()), cfg);
        prop_assert_eq!(cfg.to_bits() & (1 << 6), 0, "reserved bit reads zero");
    }

    /// Every (perms, mode, T, L) combination is representable and decodes
    /// back to itself.
    #[test]
    fn pmp_config_fields(perms in arb_perms(), mode_bits in 0u8..4,
                         table in any::<bool>(), locked in any::<bool>()) {
        let mode = AddressMode::from_bits(mode_bits);
        let mut cfg = PmpConfig::new(perms, mode).with_table_mode(table);
        if locked {
            cfg = cfg.with_locked();
        }
        prop_assert_eq!(cfg.perms(), perms);
        prop_assert_eq!(cfg.address_mode(), mode);
        prop_assert_eq!(cfg.table_mode(), table);
        prop_assert_eq!(cfg.locked(), locked);
    }

    /// PTE leaf encoding round-trips the frame, permissions and U bit.
    #[test]
    fn pte_round_trip(ppn in 0u64..(1 << 30), perm_bits in 1u8..8, user in any::<bool>()) {
        let perms = Perms::from_bits_truncate(perm_bits);
        let frame = PhysAddr::new(ppn << 12);
        let pte = Pte::leaf(frame, perms, user);
        prop_assert!(pte.is_leaf());
        prop_assert_eq!(pte.target(), frame);
        prop_assert_eq!(pte.perms(), perms);
        prop_assert_eq!(pte.is_user(), user);
        prop_assert_eq!(Pte::from_bits(pte.to_bits()), pte);
    }

    /// Leaf pmpte nibble updates are independent: writing one page's
    /// permission never disturbs the other fifteen.
    #[test]
    fn leaf_pmpte_nibble_independence(
        initial in any::<u64>(),
        index in 0usize..16,
        perms in arb_perms(),
    ) {
        let before = LeafPmpte::from_bits(initial & 0x7777_7777_7777_7777);
        let after = before.with_perm(index, perms);
        prop_assert_eq!(after.perm(index), perms);
        for other in 0..16 {
            if other != index {
                prop_assert_eq!(after.perm(other), before.perm(other));
            }
        }
    }

    /// The Figure 6-e offset split is consistent with reassembly.
    #[test]
    fn table_offset_split_consistent(offset in 0u64..(16u64 << 30)) {
        let split = TableOffset::split(offset);
        prop_assert!(split.off1 < 512);
        prop_assert!(split.off0 < 512);
        prop_assert!(split.page_index < 16);
        let rebuilt = (split.off1 << 25)
            | (split.off0 << 16)
            | ((split.page_index as u64) << 12)
            | (offset & 0xfff);
        prop_assert_eq!(rebuilt, offset & ((1 << 34) - 1));
    }

    /// Root pmpte pointer/huge encodings are disjoint and round-trip.
    #[test]
    fn root_pmpte_encodings(ppn in 0u64..(1 << 30), perm_bits in 1u8..8) {
        let pointer = RootPmpte::pointer(PhysAddr::new(ppn << 12));
        prop_assert!(pointer.is_pointer() && !pointer.is_huge());
        prop_assert_eq!(pointer.leaf_table(), PhysAddr::new(ppn << 12));
        let huge = RootPmpte::huge(Perms::from_bits_truncate(perm_bits));
        prop_assert!(huge.is_huge() && !huge.is_pointer());
        prop_assert_eq!(RootPmpte::from_bits(pointer.to_bits()), pointer);
    }

    /// Table-pointer register encoding (Figure 6-b) round-trips for every
    /// depth.
    #[test]
    fn table_pointer_register_round_trip(ppn in 0u64..(1u64 << 44), mode in 0usize..3) {
        let levels = [TableLevels::One, TableLevels::Two, TableLevels::Three][mode];
        let root = PhysAddr::new(ppn << 12);
        let reg = table_pointer_encode(root, levels);
        let (r, l) = table_pointer_decode(reg).expect("valid mode");
        prop_assert_eq!(r, root);
        prop_assert_eq!(l, levels);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The PMP Table agrees with a reference HashMap model under arbitrary
    /// sequences of page-permission writes.
    #[test]
    fn pmp_table_matches_reference_model(
        ops in prop::collection::vec((0u64..512, arb_perms()), 1..60),
    ) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 512 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 27);
        let mut table = PmpTable::new(region, &mut mem, &mut frames).expect("table");
        let mut model: HashMap<u64, Perms> = HashMap::new();

        for (page, perms) in &ops {
            let addr = PhysAddr::new(region.base.raw() + page * PAGE_SIZE);
            table.set_page_perm(&mut mem, &mut frames, addr, *perms).expect("set");
            model.insert(*page, *perms);
        }
        for (page, _) in &ops {
            let addr = PhysAddr::new(region.base.raw() + page * PAGE_SIZE + 0x123);
            let expected = model.get(page).copied().filter(|p| !p.is_empty());
            prop_assert_eq!(table.lookup(&mem, addr), expected);
        }
    }

    /// The hardware walker and the software translator agree on every
    /// mapped and unmapped address.
    #[test]
    fn walker_agrees_with_translate(
        pages in prop::collection::vec(0u64..4096, 1..24),
        probe in 0u64..8192,
    ) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 512 * PAGE_SIZE);
        let mut space = AddressSpace::new(TranslationMode::Sv39, 1, &mut mem, &mut frames)
            .expect("space");
        for (i, page) in pages.iter().enumerate() {
            let va = VirtAddr::new(0x100_0000 + page * PAGE_SIZE);
            let pa = PhysAddr::new(0x4000_0000 + (i as u64) * PAGE_SIZE);
            // Duplicate pages in the input are legal; only the first maps.
            let _ = space.map_page(&mut mem, &mut frames, va, pa, Perms::RW, true);
        }
        let va = VirtAddr::new(0x100_0000 + probe * PAGE_SIZE + 0x7f8);
        let mut pwc = WalkCache::new(WalkCacheConfig::default());
        let hw = walk(&mem, &space, &mut pwc, va).translation;
        let sw = space.translate(&mem, va);
        prop_assert_eq!(hw, sw);
        // And a second, PWC-assisted walk returns the same translation.
        let hw2 = walk(&mem, &space, &mut pwc, va).translation;
        prop_assert_eq!(hw2, sw);
    }

    /// HPMP checker determinism + priority: the lowest-numbered matching
    /// entry decides, independent of whatever lower-priority entries say.
    #[test]
    fn checker_priority_is_static(
        hi_perms in arb_perms(),
        lo_perms in arb_perms(),
        offset in 0u64..0x1000u64,
    ) {
        use hpmp_suite::core::{HpmpRegFile, PmptwCache};
        let mut regs = HpmpRegFile::new();
        let region = PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000);
        let wider = PmpRegion::new(PhysAddr::new(0x8000_0000), 0x10_0000);
        regs.configure_segment(0, region, hi_perms).expect("entry 0");
        regs.configure_segment(1, wider, lo_perms).expect("entry 1");
        let mem = PhysMem::new();
        let mut cache = PmptwCache::disabled();
        let addr = PhysAddr::new(0x8000_0000 + (offset & !7));
        let out = regs.check(&mem, &mut cache, addr, AccessKind::Read,
                             hpmp_suite::memsim::PrivMode::Supervisor);
        prop_assert_eq!(out.matched_entry, Some(0));
        prop_assert_eq!(out.allowed, hi_perms.can_read());
        // Determinism: same inputs, same answer.
        let again = regs.check(&mem, &mut cache, addr, AccessKind::Read,
                               hpmp_suite::memsim::PrivMode::Supervisor);
        prop_assert_eq!(out.allowed, again.allowed);
    }

    /// Nested translation composes: `nested_walk(gva)` equals the manual
    /// composition guest-translate → G-stage-translate, for arbitrary
    /// mapped/unmapped probes.
    #[test]
    fn nested_walk_is_composition(probe_page in 0u64..32) {
        use hpmp_suite::paging::{
            nested_walk, GuestView, NestedPageTable, Tlb, TlbConfig, WalkCache as Wc,
            WalkCacheConfig as WcCfg,
        };
        let mut mem = PhysMem::new();
        let mut host_frames =
            FrameAllocator::new(PhysAddr::new(0x8000_0000), 512 * PAGE_SIZE);
        let mut npt = NestedPageTable::new(&mut mem, &mut host_frames).expect("npt");
        // Guest-physical pool at 0x100_0000, identity+offset host backing.
        for i in 0..64u64 {
            let gpa = PhysAddr::new(0x100_0000 + i * PAGE_SIZE);
            let hpa = PhysAddr::new(0x4000_0000 + i * PAGE_SIZE);
            npt.map_page(&mut mem, &mut host_frames, gpa, hpa, true).expect("npt map");
        }
        let mut guest_pt =
            FrameAllocator::new(PhysAddr::new(0x100_0000), 16 * PAGE_SIZE);
        let mut view = GuestView::new(&mut mem, &npt);
        let mut guest = AddressSpace::new(TranslationMode::Sv39, 3, &mut view, &mut guest_pt)
            .expect("guest");
        // Map every even page of a 32-page window.
        for i in (0..32u64).step_by(2) {
            let gva = VirtAddr::new(0x40_0000 + i * PAGE_SIZE);
            let gpa = PhysAddr::new(0x100_0000 + (32 + i / 2) * PAGE_SIZE);
            guest.map_page(&mut view, &mut guest_pt, gva, gpa, Perms::RW, true)
                .expect("guest map");
        }
        let gva = VirtAddr::new(0x40_0000 + probe_page * PAGE_SIZE + 0x18);
        let mut gtlb = Tlb::new(TlbConfig::default());
        let mut gpwc = Wc::new(WcCfg::default());
        let walked = nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, gva)
            .translation
            .map(|t| t.paddr);
        let composed = {
            let view = GuestView::new(&mut mem, &npt);
            guest
                .translate(&view, gva)
                .and_then(|t| npt.translate(&mem, t.paddr))
        };
        prop_assert_eq!(walked, composed);
    }

    /// IOPMP: the lowest-numbered matching entry decides; adding
    /// lower-priority entries afterwards never changes existing decisions.
    #[test]
    fn iopmp_priority_stable(
        perms_a in arb_perms(),
        perms_b in arb_perms(),
        device in 0u8..8,
        offset in 0u64..0x1000u64,
    ) {
        use hpmp_suite::core::{DeviceId, IoPmp, IoPmpEntry, IoPmpMode};
        let mem = PhysMem::new();
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 0x1000);
        let mut iopmp = IoPmp::new();
        iopmp.push(IoPmpEntry { source_mask: !0, region, mode: IoPmpMode::Segment(perms_a) });
        let addr = PhysAddr::new(0x9000_0000 + (offset & !7));
        let before = iopmp.check(&mem, DeviceId(device), addr, AccessKind::Read).allowed;
        iopmp.push(IoPmpEntry { source_mask: !0, region, mode: IoPmpMode::Segment(perms_b) });
        let after = iopmp.check(&mem, DeviceId(device), addr, AccessKind::Read).allowed;
        prop_assert_eq!(before, after, "a later entry must not override an earlier one");
        prop_assert_eq!(before, perms_a.can_read());
    }

    /// Merkle tree: after arbitrary legitimate write/update pairs, every
    /// page verifies; any unrecorded write is detected.
    #[test]
    fn merkle_tracks_updates(
        writes in prop::collection::vec((0u64..32, any::<u64>()), 1..16),
        tamper_page in 0u64..32,
    ) {
        use hpmp_suite::penglai::MerkleTree;
        let base = PhysAddr::new(0x9000_0000);
        let mut mem = PhysMem::new();
        let mut tree = MerkleTree::build(&mem, base, 32);
        for &(page, value) in &writes {
            let addr = PhysAddr::new(base.raw() + page * PAGE_SIZE);
            tree.mount(&mem, addr).expect("mount");
            mem.write_u64(addr, value);
            tree.update_page(&mem, addr).expect("update");
        }
        for &(page, _) in &writes {
            let addr = PhysAddr::new(base.raw() + page * PAGE_SIZE);
            prop_assert!(tree.verify_page(&mem, addr).is_ok());
        }
        // One unrecorded write is always caught.
        let victim = PhysAddr::new(base.raw() + tamper_page * PAGE_SIZE);
        tree.mount(&mem, victim).expect("mount victim");
        let old = mem.read_u64(victim);
        mem.write_u64(victim, old ^ 0x1);
        prop_assert!(tree.verify_page(&mem, victim).is_err());
    }

    /// Perms algebra: `allows` after union is the OR of the parts; subset
    /// ordering is respected by `contains`.
    #[test]
    fn perms_algebra(a in arb_perms(), b in arb_perms()) {
        let union = a | b;
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Fetch] {
            prop_assert_eq!(union.allows(kind), a.allows(kind) || b.allows(kind));
            prop_assert_eq!((a & b).allows(kind), a.allows(kind) && b.allows(kind));
        }
        prop_assert!(union.contains(a) && union.contains(b));
    }
}
