//! Randomised property tests over the core data structures and their
//! invariants: register encodings round-trip, permission tables agree with a
//! reference model, address spaces translate consistently with the hardware
//! walker, and the HPMP checker is deterministic and priority-correct.
//!
//! Cases are driven by the in-repo [`SplitMix64`] generator with fixed
//! seeds, so every run explores the same (large) case set deterministically
//! and failures are directly reproducible.

use hpmp_suite::core::{
    napot_decode, napot_encode, table_pointer_decode, table_pointer_encode, AddressMode, LeafPmpte,
    PmpConfig, PmpRegion, PmpTable, RootPmpte, TableLevels, TableOffset,
};
use hpmp_suite::memsim::{
    AccessKind, FrameAllocator, Perms, PhysAddr, PhysMem, SplitMix64, VirtAddr, PAGE_SIZE,
};
use hpmp_suite::paging::{walk, AddressSpace, Pte, TranslationMode, WalkCache, WalkCacheConfig};
use std::collections::HashMap;

fn perms(rng: &mut SplitMix64) -> Perms {
    Perms::from_bits_truncate(rng.gen_range(0..8) as u8)
}

#[test]
fn napot_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x9a01);
    for _ in 0..256 {
        let size_log = rng.gen_range(3..36) as u32;
        let base_sel = rng.gen_range(0..1024);
        let size = 1u64 << size_log;
        let base = PhysAddr::new((base_sel << size_log) & ((1 << 48) - 1));
        let encoded = napot_encode(base, size);
        let (b, s) = napot_decode(encoded);
        assert_eq!(b, base);
        assert_eq!(s, size);
    }
}

#[test]
fn pmp_config_round_trip() {
    for bits in 0..=u8::MAX {
        let cfg = PmpConfig::from_bits(bits);
        assert_eq!(PmpConfig::from_bits(cfg.to_bits()), cfg);
        assert_eq!(cfg.to_bits() & (1 << 6), 0, "reserved bit reads zero");
    }
}

#[test]
fn pmp_config_fields() {
    let mut rng = SplitMix64::seed_from_u64(0x9a02);
    for _ in 0..256 {
        let p = perms(&mut rng);
        let mode = AddressMode::from_bits(rng.gen_range(0..4) as u8);
        let table = rng.gen_bool(0.5);
        let locked = rng.gen_bool(0.5);
        let mut cfg = PmpConfig::new(p, mode).with_table_mode(table);
        if locked {
            cfg = cfg.with_locked();
        }
        assert_eq!(cfg.perms(), p);
        assert_eq!(cfg.address_mode(), mode);
        assert_eq!(cfg.table_mode(), table);
        assert_eq!(cfg.locked(), locked);
    }
}

#[test]
fn pte_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x9a03);
    for _ in 0..256 {
        let ppn = rng.gen_range(0..1 << 30);
        let p = Perms::from_bits_truncate(rng.gen_range(1..8) as u8);
        let user = rng.gen_bool(0.5);
        let frame = PhysAddr::new(ppn << 12);
        let pte = Pte::leaf(frame, p, user);
        assert!(pte.is_leaf());
        assert_eq!(pte.target(), frame);
        assert_eq!(pte.perms(), p);
        assert_eq!(pte.is_user(), user);
        assert_eq!(Pte::from_bits(pte.to_bits()), pte);
    }
}

#[test]
fn leaf_pmpte_nibble_independence() {
    let mut rng = SplitMix64::seed_from_u64(0x9a04);
    for _ in 0..256 {
        let initial = rng.next_u64();
        let index = rng.gen_range(0..16) as usize;
        let p = perms(&mut rng);
        let before = LeafPmpte::from_bits(initial & 0x7777_7777_7777_7777);
        let after = before.with_perm(index, p);
        assert_eq!(after.perm(index), p);
        for other in 0..16 {
            if other != index {
                assert_eq!(after.perm(other), before.perm(other));
            }
        }
    }
}

#[test]
fn table_offset_split_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0x9a05);
    for _ in 0..512 {
        let offset = rng.gen_range(0..16u64 << 30);
        let split = TableOffset::split(offset);
        assert!(split.off1 < 512);
        assert!(split.off0 < 512);
        assert!(split.page_index < 16);
        let rebuilt = (split.off1 << 25)
            | (split.off0 << 16)
            | ((split.page_index as u64) << 12)
            | (offset & 0xfff);
        assert_eq!(rebuilt, offset & ((1 << 34) - 1));
    }
}

#[test]
fn root_pmpte_encodings() {
    let mut rng = SplitMix64::seed_from_u64(0x9a06);
    for _ in 0..256 {
        let ppn = rng.gen_range(0..1 << 30);
        let perm_bits = rng.gen_range(1..8) as u8;
        let pointer = RootPmpte::pointer(PhysAddr::new(ppn << 12));
        assert!(pointer.is_pointer() && !pointer.is_huge());
        assert_eq!(pointer.leaf_table(), PhysAddr::new(ppn << 12));
        let huge = RootPmpte::huge(Perms::from_bits_truncate(perm_bits));
        assert!(huge.is_huge() && !huge.is_pointer());
        assert_eq!(RootPmpte::from_bits(pointer.to_bits()), pointer);
    }
}

#[test]
fn table_pointer_register_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x9a07);
    for _ in 0..256 {
        let ppn = rng.gen_range(0..1u64 << 44);
        let levels =
            [TableLevels::One, TableLevels::Two, TableLevels::Three][rng.gen_range(0..3) as usize];
        let root = PhysAddr::new(ppn << 12);
        let reg = table_pointer_encode(root, levels);
        let (r, l) = table_pointer_decode(reg).expect("valid mode");
        assert_eq!(r, root);
        assert_eq!(l, levels);
    }
}

#[test]
fn pmp_table_matches_reference_model() {
    let mut rng = SplitMix64::seed_from_u64(0x9a08);
    for _ in 0..64 {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 512 * PAGE_SIZE);
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 1 << 27);
        let mut table = PmpTable::new(region, &mut mem, &mut frames).expect("table");
        let mut model: HashMap<u64, Perms> = HashMap::new();

        let n_ops = rng.gen_range(1..60) as usize;
        let ops: Vec<(u64, Perms)> = (0..n_ops)
            .map(|_| (rng.gen_range(0..512), perms(&mut rng)))
            .collect();
        for (page, p) in &ops {
            let addr = PhysAddr::new(region.base.raw() + page * PAGE_SIZE);
            table
                .set_page_perm(&mut mem, &mut frames, addr, *p)
                .expect("set");
            model.insert(*page, *p);
        }
        for (page, _) in &ops {
            let addr = PhysAddr::new(region.base.raw() + page * PAGE_SIZE + 0x123);
            let expected = model.get(page).copied().filter(|p| !p.is_empty());
            assert_eq!(table.lookup(&mem, addr), expected);
        }
    }
}

#[test]
fn walker_agrees_with_translate() {
    let mut rng = SplitMix64::seed_from_u64(0x9a09);
    for _ in 0..64 {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 512 * PAGE_SIZE);
        let mut space =
            AddressSpace::new(TranslationMode::Sv39, 1, &mut mem, &mut frames).expect("space");
        let n_pages = rng.gen_range(1..24) as usize;
        for i in 0..n_pages {
            let va = VirtAddr::new(0x100_0000 + rng.gen_range(0..4096) * PAGE_SIZE);
            let pa = PhysAddr::new(0x4000_0000 + (i as u64) * PAGE_SIZE);
            // Duplicate pages in the input are legal; only the first maps.
            let _ = space.map_page(&mut mem, &mut frames, va, pa, Perms::RW, true);
        }
        let probe = rng.gen_range(0..8192);
        let va = VirtAddr::new(0x100_0000 + probe * PAGE_SIZE + 0x7f8);
        let mut pwc = WalkCache::new(WalkCacheConfig::default());
        let hw = walk(&mem, &space, &mut pwc, va).translation;
        let sw = space.translate(&mem, va);
        assert_eq!(hw, sw);
        // And a second, PWC-assisted walk returns the same translation.
        let hw2 = walk(&mem, &space, &mut pwc, va).translation;
        assert_eq!(hw2, sw);
    }
}

#[test]
fn checker_priority_is_static() {
    use hpmp_suite::core::{HpmpRegFile, PmptwCache};
    let mut rng = SplitMix64::seed_from_u64(0x9a0a);
    for _ in 0..128 {
        let hi_perms = perms(&mut rng);
        let lo_perms = perms(&mut rng);
        let offset = rng.gen_range(0..0x1000);
        let mut regs = HpmpRegFile::new();
        let region = PmpRegion::new(PhysAddr::new(0x8000_0000), 0x1000);
        let wider = PmpRegion::new(PhysAddr::new(0x8000_0000), 0x10_0000);
        regs.configure_segment(0, region, hi_perms)
            .expect("entry 0");
        regs.configure_segment(1, wider, lo_perms).expect("entry 1");
        let mem = PhysMem::new();
        let mut cache = PmptwCache::disabled();
        let addr = PhysAddr::new(0x8000_0000 + (offset & !7));
        let out = regs.check(
            &mem,
            &mut cache,
            addr,
            AccessKind::Read,
            hpmp_suite::memsim::PrivMode::Supervisor,
        );
        assert_eq!(out.matched_entry, Some(0));
        assert_eq!(out.allowed, hi_perms.can_read());
        // Determinism: same inputs, same answer.
        let again = regs.check(
            &mem,
            &mut cache,
            addr,
            AccessKind::Read,
            hpmp_suite::memsim::PrivMode::Supervisor,
        );
        assert_eq!(out.allowed, again.allowed);
    }
}

#[test]
fn nested_walk_is_composition() {
    use hpmp_suite::paging::{
        nested_walk, GuestView, NestedPageTable, Tlb, TlbConfig, WalkCache as Wc,
        WalkCacheConfig as WcCfg,
    };
    for probe_page in 0..32u64 {
        let mut mem = PhysMem::new();
        let mut host_frames = FrameAllocator::new(PhysAddr::new(0x8000_0000), 512 * PAGE_SIZE);
        let mut npt = NestedPageTable::new(&mut mem, &mut host_frames).expect("npt");
        // Guest-physical pool at 0x100_0000, identity+offset host backing.
        for i in 0..64u64 {
            let gpa = PhysAddr::new(0x100_0000 + i * PAGE_SIZE);
            let hpa = PhysAddr::new(0x4000_0000 + i * PAGE_SIZE);
            npt.map_page(&mut mem, &mut host_frames, gpa, hpa, true)
                .expect("npt map");
        }
        let mut guest_pt = FrameAllocator::new(PhysAddr::new(0x100_0000), 16 * PAGE_SIZE);
        let mut view = GuestView::new(&mut mem, &npt);
        let mut guest =
            AddressSpace::new(TranslationMode::Sv39, 3, &mut view, &mut guest_pt).expect("guest");
        // Map every even page of a 32-page window.
        for i in (0..32u64).step_by(2) {
            let gva = VirtAddr::new(0x40_0000 + i * PAGE_SIZE);
            let gpa = PhysAddr::new(0x100_0000 + (32 + i / 2) * PAGE_SIZE);
            guest
                .map_page(&mut view, &mut guest_pt, gva, gpa, Perms::RW, true)
                .expect("guest map");
        }
        let gva = VirtAddr::new(0x40_0000 + probe_page * PAGE_SIZE + 0x18);
        let mut gtlb = Tlb::new(TlbConfig::default());
        let mut gpwc = Wc::new(WcCfg::default());
        let walked = nested_walk(&mem, &guest, &npt, &mut gtlb, &mut gpwc, gva)
            .translation
            .map(|t| t.paddr);
        let composed = {
            let view = GuestView::new(&mut mem, &npt);
            guest
                .translate(&view, gva)
                .and_then(|t| npt.translate(&mem, t.paddr))
        };
        assert_eq!(walked, composed);
    }
}

#[test]
fn iopmp_priority_stable() {
    use hpmp_suite::core::{DeviceId, IoPmp, IoPmpEntry, IoPmpMode};
    let mut rng = SplitMix64::seed_from_u64(0x9a0b);
    for _ in 0..128 {
        let perms_a = perms(&mut rng);
        let perms_b = perms(&mut rng);
        let device = rng.gen_range(0..8) as u8;
        let offset = rng.gen_range(0..0x1000);
        let mem = PhysMem::new();
        let region = PmpRegion::new(PhysAddr::new(0x9000_0000), 0x1000);
        let mut iopmp = IoPmp::new();
        iopmp.push(IoPmpEntry {
            source_mask: !0,
            region,
            mode: IoPmpMode::Segment(perms_a),
        });
        let addr = PhysAddr::new(0x9000_0000 + (offset & !7));
        let before = iopmp
            .check(&mem, DeviceId(device), addr, AccessKind::Read)
            .allowed;
        iopmp.push(IoPmpEntry {
            source_mask: !0,
            region,
            mode: IoPmpMode::Segment(perms_b),
        });
        let after = iopmp
            .check(&mem, DeviceId(device), addr, AccessKind::Read)
            .allowed;
        assert_eq!(
            before, after,
            "a later entry must not override an earlier one"
        );
        assert_eq!(before, perms_a.can_read());
    }
}

#[test]
fn merkle_tracks_updates() {
    use hpmp_suite::penglai::MerkleTree;
    let mut rng = SplitMix64::seed_from_u64(0x9a0c);
    for _ in 0..32 {
        let base = PhysAddr::new(0x9000_0000);
        let mut mem = PhysMem::new();
        let mut tree = MerkleTree::build(&mem, base, 32);
        let n_writes = rng.gen_range(1..16) as usize;
        let writes: Vec<(u64, u64)> = (0..n_writes)
            .map(|_| (rng.gen_range(0..32), rng.next_u64()))
            .collect();
        for &(page, value) in &writes {
            let addr = PhysAddr::new(base.raw() + page * PAGE_SIZE);
            tree.mount(&mem, addr).expect("mount");
            mem.write_u64(addr, value);
            tree.update_page(&mem, addr).expect("update");
        }
        for &(page, _) in &writes {
            let addr = PhysAddr::new(base.raw() + page * PAGE_SIZE);
            assert!(tree.verify_page(&mem, addr).is_ok());
        }
        // One unrecorded write is always caught.
        let victim = PhysAddr::new(base.raw() + rng.gen_range(0..32) * PAGE_SIZE);
        tree.mount(&mem, victim).expect("mount victim");
        let old = mem.read_u64(victim);
        mem.write_u64(victim, old ^ 0x1);
        assert!(tree.verify_page(&mem, victim).is_err());
    }
}

#[test]
fn perms_algebra() {
    for a_bits in 0..8u8 {
        for b_bits in 0..8u8 {
            let a = Perms::from_bits_truncate(a_bits);
            let b = Perms::from_bits_truncate(b_bits);
            let union = a | b;
            for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Fetch] {
                assert_eq!(union.allows(kind), a.allows(kind) || b.allows(kind));
                assert_eq!((a & b).allows(kind), a.allows(kind) && b.allows(kind));
            }
            assert!(union.contains(a) && union.contains(b));
        }
    }
}
