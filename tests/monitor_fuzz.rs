//! Randomised operation sequences against the secure monitor, checking the
//! isolation invariants after every step: no two domains ever hold
//! overlapping regions, the monitor's memory is never reachable from S-mode,
//! and the running domain can always reach (only) its own memory.

use hpmp_suite::core::{PmpRegion, PmptwCache};
use hpmp_suite::machine::{Machine, MachineConfig};
use hpmp_suite::memsim::{AccessKind, PhysAddr, PrivMode};
use hpmp_suite::penglai::{DomainId, GmsLabel, MonitorError, SecureMonitor, TeeFlavor};
use proptest::prelude::*;

const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

/// The operations the fuzzer may issue.
#[derive(Clone, Copy, Debug)]
enum Op {
    Create,
    Destroy(u8),
    Alloc(u8, u8),
    Switch(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Create),
        (0u8..8).prop_map(Op::Destroy),
        (0u8..8, 1u8..8).prop_map(|(d, s)| Op::Alloc(d, s)),
        (0u8..8).prop_map(Op::Switch),
    ]
}

fn check_invariants(machine: &Machine, monitor: &SecureMonitor, live: &[DomainId]) {
    // 1. No overlapping regions across distinct domains. (The host's
    //    whole-memory GMS legitimately contains carved regions, so compare
    //    only non-host domains pairwise and against each other.)
    let mut regions: Vec<(DomainId, PmpRegion)> = Vec::new();
    for &d in live {
        if d == DomainId::HOST {
            continue;
        }
        for g in monitor.regions_of(d).expect("live domain") {
            regions.push((d, g.region));
        }
    }
    for (i, &(da, ra)) in regions.iter().enumerate() {
        for &(db, rb) in &regions[i + 1..] {
            if da != db {
                let overlap = ra.base < rb.end() && rb.base < ra.end();
                assert!(!overlap, "{da} {ra} overlaps {db} {rb}");
            }
        }
    }
    // 2. The monitor's own memory is unreachable from S-mode.
    let mut cache = PmptwCache::disabled();
    let probe = PhysAddr::new(monitor.monitor_region().base.raw() + 0x800);
    let out = machine.regs().check(machine.phys(), &mut cache, probe, AccessKind::Read,
                                   PrivMode::Supervisor);
    assert!(!out.allowed, "monitor memory leaked to S-mode");
    // 3. The current domain reaches its own first region (when not host,
    //    whose grants are probabilistic under carving).
    let current = monitor.current();
    if current != DomainId::HOST {
        if let Some(g) = monitor.regions_of(current).expect("current").first() {
            let out = machine.regs().check(machine.phys(), &mut cache, g.region.base,
                                           AccessKind::Read, PrivMode::Supervisor);
            assert!(out.allowed, "{current} cannot reach its own region");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn monitor_invariants_hold_under_random_ops(
        flavor_sel in 0usize..3,
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        let flavor = [TeeFlavor::PenglaiPmp, TeeFlavor::PenglaiPmpt,
                      TeeFlavor::PenglaiHpmp][flavor_sel];
        let mut machine = Machine::new(MachineConfig::rocket());
        let mut monitor = SecureMonitor::boot(&mut machine, flavor, RAM);
        let mut live: Vec<DomainId> = vec![DomainId::HOST];

        for op in ops {
            match op {
                Op::Create => {
                    match monitor.create_domain(&mut machine, 1 << 20, GmsLabel::Slow) {
                        Ok((id, _)) => live.push(id),
                        Err(MonitorError::OutOfPmpEntries | MonitorError::OutOfMemory) => {}
                        Err(e) => panic!("create failed: {e}"),
                    }
                }
                Op::Destroy(sel) => {
                    let candidates: Vec<DomainId> =
                        live.iter().copied().filter(|d| *d != DomainId::HOST).collect();
                    if let Some(&victim) = candidates.get(sel as usize % candidates.len().max(1))
                    {
                        monitor.destroy_domain(&mut machine, victim).expect("destroy");
                        live.retain(|d| *d != victim);
                    }
                }
                Op::Alloc(sel, size) => {
                    let target = live[sel as usize % live.len()];
                    match monitor.alloc_region(&mut machine, target,
                                               (size as u64) * 64 * 1024, GmsLabel::Slow) {
                        Ok(_) => {}
                        Err(MonitorError::OutOfPmpEntries | MonitorError::OutOfMemory) => {}
                        Err(e) => panic!("alloc failed: {e}"),
                    }
                }
                Op::Switch(sel) => {
                    let target = live[sel as usize % live.len()];
                    match monitor.switch_to(&mut machine, target) {
                        Ok(_) => {}
                        Err(MonitorError::OutOfPmpEntries) => {}
                        Err(e) => panic!("switch failed: {e}"),
                    }
                }
            }
            check_invariants(&machine, &monitor, &live);
        }
    }
}
