//! End-to-end sanity: boot the full stack (monitor → OS → processes) under
//! every flavour on both cores and verify the paper's qualitative results
//! hold through the complete path, not just in unit fixtures.

use hpmp_suite::memsim::{AccessKind, CoreKind, VirtAddr, PAGE_SIZE};
use hpmp_suite::penglai::{TeeFlavor, USER_HEAP_BASE};
use hpmp_suite::workloads::arena::{replay, Patterns, UserArena};
use hpmp_suite::workloads::TeeBench;

/// The complete stack boots and runs user code for every (flavour, core).
#[test]
fn full_stack_matrix() {
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        for core in [CoreKind::Rocket, CoreKind::Boom] {
            let mut tee = TeeBench::boot(flavor, core);
            let arena = UserArena::create(&mut tee.os, &mut tee.machine, 16).expect("arena");
            let trace = Patterns::new(1).sequential(128, 64, 0.3, 2);
            let cycles = replay(&mut tee.os, &mut tee.machine, &arena, trace).expect("replay");
            assert!(cycles > 0, "{flavor}/{core}");
        }
    }
}

/// Process lifecycle churn (the serverless pattern) neither leaks frames
/// nor corrupts later processes: 40 spawn/work/exit rounds stay functional.
#[test]
fn process_churn_is_stable() {
    let mut tee = TeeBench::boot(TeeFlavor::PenglaiHpmp, CoreKind::Rocket);
    for round in 0..40 {
        let (pid, _) = tee.os.spawn(&mut tee.machine, 8).expect("spawn");
        tee.os.mmap(&mut tee.machine, pid, 16).expect("mmap");
        for i in 0..16u64 {
            tee.os
                .user_access(
                    &mut tee.machine,
                    pid,
                    VirtAddr::new(USER_HEAP_BASE + i * PAGE_SIZE),
                    AccessKind::Write,
                )
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
        tee.os.exit(&mut tee.machine, pid).expect("exit");
    }
    assert_eq!(tee.os.process_count(), 0);
}

/// Fork + COW works through the full stack: the child shares pages
/// read-only; parent data remains readable by both.
#[test]
fn fork_cow_through_full_stack() {
    let mut tee = TeeBench::boot(TeeFlavor::PenglaiPmpt, CoreKind::Rocket);
    let (parent, _) = tee.os.spawn(&mut tee.machine, 4).expect("spawn");
    tee.os.mmap(&mut tee.machine, parent, 4).expect("mmap");
    let heap = VirtAddr::new(USER_HEAP_BASE);
    tee.os
        .user_access(&mut tee.machine, parent, heap, AccessKind::Write)
        .expect("parent w");

    let (child, _) = tee.os.fork(&mut tee.machine, parent).expect("fork");
    tee.os
        .user_access(&mut tee.machine, child, heap, AccessKind::Read)
        .expect("child r");
    assert!(
        tee.os
            .user_access(&mut tee.machine, child, heap, AccessKind::Write)
            .is_err(),
        "child writes must COW-fault"
    );
    tee.os
        .user_access(&mut tee.machine, parent, heap, AccessKind::Read)
        .expect("parent r");
    tee.os.exit(&mut tee.machine, child).expect("child exit");
    tee.os
        .user_access(&mut tee.machine, parent, heap, AccessKind::Read)
        .expect("parent survives child exit");
}

/// The headline end-to-end claim: over a realistic mixed workload, total
/// cycles order PMP < HPMP < PMPT, and HPMP recovers the majority of the
/// permission-table overhead.
#[test]
fn hpmp_recovers_most_of_the_table_cost() {
    let mut totals = Vec::new();
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiHpmp,
        TeeFlavor::PenglaiPmpt,
    ] {
        let mut tee = TeeBench::boot(flavor, CoreKind::Rocket);
        let arena = UserArena::create(&mut tee.os, &mut tee.machine, 2048).expect("arena");
        let mut patterns = Patterns::new(99);
        // Mixed phases: cold touches, random probes, sequential streams.
        let mut cycles = 0;
        let cold: Vec<_> = (0..256u64)
            .map(|i| hpmp_suite::workloads::arena::TraceStep {
                offset: i * PAGE_SIZE,
                kind: AccessKind::Write,
                compute: 2,
            })
            .collect();
        cycles += replay(&mut tee.os, &mut tee.machine, &arena, cold).expect("cold");
        let random = patterns.random(1500, 2048 * PAGE_SIZE, 0.3, 4);
        cycles += replay(&mut tee.os, &mut tee.machine, &arena, random).expect("random");
        let seq = patterns.sequential(1500, 96, 0.3, 4);
        cycles += replay(&mut tee.os, &mut tee.machine, &arena, seq).expect("seq");
        totals.push((flavor, cycles));
    }
    let pmp = totals[0].1 as f64;
    let hpmp = totals[1].1 as f64;
    let pmpt = totals[2].1 as f64;
    assert!(pmp < hpmp && hpmp < pmpt, "ordering violated: {totals:?}");
    let recovered = (pmpt - hpmp) / (pmpt - pmp);
    assert!(
        recovered > 0.5,
        "HPMP should recover >50% of the table cost: {recovered}"
    );
}

/// Monitor operations interleave safely with OS work: relabelling the PT
/// pool mid-run flips performance without breaking correctness.
#[test]
fn relabel_mid_run() {
    use hpmp_suite::penglai::GmsLabel;
    let mut tee = TeeBench::boot(TeeFlavor::PenglaiHpmp, CoreKind::Rocket);
    let (pid, _) = tee.os.spawn(&mut tee.machine, 4).expect("spawn");
    let code = VirtAddr::new(hpmp_suite::penglai::USER_CODE_BASE);
    tee.os
        .user_access(&mut tee.machine, pid, code, AccessKind::Read)
        .expect("before");

    // Demote the PT pool to slow: still correct, just slower on walks.
    let (pool_base, _) = tee.os.pt_pool_region();
    let domain = tee.domain;
    tee.monitor
        .relabel(&mut tee.machine, domain, pool_base, GmsLabel::Slow)
        .expect("relabel slow");
    tee.machine.flush_microarch();
    let slow = tee
        .os
        .user_access(&mut tee.machine, pid, code, AccessKind::Read)
        .expect("slow access");

    // Promote back to fast: the same cold access gets cheaper.
    tee.monitor
        .relabel(&mut tee.machine, domain, pool_base, GmsLabel::Fast)
        .expect("relabel fast");
    tee.machine.flush_microarch();
    let fast = tee
        .os
        .user_access(&mut tee.machine, pid, code, AccessKind::Read)
        .expect("fast access");
    assert!(
        fast < slow,
        "fast GMS must make the cold walk cheaper: {fast} vs {slow}"
    );
}
