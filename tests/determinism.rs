//! Determinism: the simulator has no hidden global state — identical
//! configurations and seeds produce identical cycle counts, which is what
//! makes the reproduction's figures exactly re-derivable (and `repro`'s
//! parallel fan-out sound).

use hpmp_suite::machine::{IsolationScheme, VirtScheme};
use hpmp_suite::memsim::{AccessKind, CoreKind};
use hpmp_suite::penglai::TeeFlavor;
use hpmp_suite::workloads::latency::{measure, measure_virt, TestCase, VirtCase};
use hpmp_suite::workloads::smp::{run_smp, spec_for};
use hpmp_suite::workloads::{gap, lmbench, multi_tenant, redis, serverless};

#[test]
fn microbenchmarks_are_deterministic() {
    for case in [TestCase::Tc1, TestCase::Tc2, TestCase::Tc3, TestCase::Tc4] {
        let a = measure(
            CoreKind::Rocket,
            IsolationScheme::Hpmp,
            AccessKind::Read,
            case,
        );
        let b = measure(
            CoreKind::Rocket,
            IsolationScheme::Hpmp,
            AccessKind::Read,
            case,
        );
        assert_eq!(a, b, "{case}");
    }
    let a = measure_virt(CoreKind::Boom, VirtScheme::PmpTable, VirtCase::Tc1);
    let b = measure_virt(CoreKind::Boom, VirtScheme::PmpTable, VirtCase::Tc1);
    assert_eq!(a, b);
}

#[test]
fn workloads_are_deterministic() {
    let graph = gap::KronGraph::generate(10, 4, 77);
    let a = gap::run_gap(
        TeeFlavor::PenglaiPmpt,
        CoreKind::Rocket,
        gap::GapKernel::Pr,
        &graph,
        1_000,
    )
    .unwrap();
    let b = gap::run_gap(
        TeeFlavor::PenglaiPmpt,
        CoreKind::Rocket,
        gap::GapKernel::Pr,
        &graph,
        1_000,
    )
    .unwrap();
    assert_eq!(a, b, "GAP");

    let a = serverless::measure_function(
        TeeFlavor::PenglaiHpmp,
        CoreKind::Rocket,
        serverless::Function::Matmul,
        2,
    )
    .unwrap();
    let b = serverless::measure_function(
        TeeFlavor::PenglaiHpmp,
        CoreKind::Rocket,
        serverless::Function::Matmul,
        2,
    )
    .unwrap();
    assert_eq!(a, b, "serverless");

    let a = lmbench::measure_syscall(
        TeeFlavor::PenglaiPmp,
        CoreKind::Boom,
        lmbench::Syscall::Stat,
        5,
    )
    .unwrap();
    let b = lmbench::measure_syscall(
        TeeFlavor::PenglaiPmp,
        CoreKind::Boom,
        lmbench::Syscall::Stat,
        5,
    )
    .unwrap();
    assert_eq!(a, b, "lmbench");

    let mut s1 = redis::RedisServer::start(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, 512).unwrap();
    let mut s2 = redis::RedisServer::start(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, 512).unwrap();
    for _ in 0..50 {
        assert_eq!(
            s1.serve(redis::RedisCommand::Get).unwrap(),
            s2.serve(redis::RedisCommand::Get).unwrap(),
            "redis"
        );
    }

    let a = multi_tenant::run_tenancy(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 8, 2).unwrap();
    let b = multi_tenant::run_tenancy(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 8, 2).unwrap();
    assert_eq!(a, b, "tenancy");
}

/// The SMP runner is single-threaded behind a seeded interleaver, so its
/// outcome, metrics snapshot and per-hart counters must be byte-stable for
/// a fixed (seed, harts) pair — at every hart count, across all flavours.
/// This is the invariant that makes `hpmpsim --harts N` artifacts
/// identical whatever `--jobs` is.
#[test]
fn smp_runs_are_deterministic_at_every_hart_count() {
    let spec = spec_for("tenancy").expect("tenancy has an SMP shape");
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        for harts in [1usize, 2, 4] {
            let (a, snap_a) = run_smp(flavor, CoreKind::Rocket, harts, 0xd5, spec).unwrap();
            let (b, snap_b) = run_smp(flavor, CoreKind::Rocket, harts, 0xd5, spec).unwrap();
            assert_eq!(a, b, "{flavor} outcome at {harts} harts");
            assert_eq!(
                snap_a.to_json(),
                snap_b.to_json(),
                "{flavor} snapshot at {harts} harts"
            );
        }
    }
    // Different seeds and hart counts must actually change the run.
    let (one, _) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 0xd5, spec).unwrap();
    let (other_seed, _) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 0xd6, spec).unwrap();
    assert_ne!(one.total_cycles, other_seed.total_cycles);
    let (more_harts, _) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 4, 0xd5, spec).unwrap();
    assert_ne!(one.total_cycles, more_harts.total_cycles);
}

#[test]
fn graph_generation_is_seed_stable() {
    let a = gap::KronGraph::generate(11, 6, 0xfeed);
    let b = gap::KronGraph::generate(11, 6, 0xfeed);
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.offsets, b.offsets);
    let c = gap::KronGraph::generate(11, 6, 0xfeee);
    assert_ne!(a.edges, c.edges);
}
