//! Ablation integration tests: the design knobs DESIGN.md §5 calls out,
//! validated as behavioural claims (the benches measure, these pin).

use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr};
use hpmp_suite::paging::TranslationMode;

/// The entire Penglai-HPMP benefit rests on the OS placing PT pages in the
/// contiguous pool. With a stock allocator (scattered PT pages), HPMP's
/// segment covers nothing and the hybrid degrades to the full table cost —
/// the §5 "OS modification is acceptable" argument, inverted.
#[test]
fn contiguous_pt_pool_is_essential() {
    let refs_with = |contiguous: bool| {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::Hpmp)
            .contiguous_pt(contiguous)
            .build();
        sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();
        sys.machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .expect("mapped")
            .refs
    };
    let adopted = refs_with(true);
    assert_eq!(
        adopted.pmpte_for_pt, 0,
        "contiguous pool: PT pages behind the segment"
    );
    assert_eq!(adopted.total(), 6);

    let stock = refs_with(false);
    assert_eq!(
        stock.pmpte_for_pt, 6,
        "scattered PT pages fall back to the table"
    );
    assert_eq!(
        stock.total(),
        12,
        "without the OS change, HPMP == PMP Table"
    );
}

/// The extra dimension grows with page-table depth (§2.2: "even more
/// serious for 4-level or 5-level architectures") — and HPMP's *absolute*
/// saving grows with it too, since every extra level is another
/// segment-checked PT page.
#[test]
fn deeper_tables_widen_the_gap() {
    let cold_cycles = |scheme, mode| {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme)
            .translation_mode(mode)
            .build();
        sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();
        sys.machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .expect("mapped")
            .cycles
    };
    let mut last_gap = 0;
    for mode in [
        TranslationMode::Sv39,
        TranslationMode::Sv48,
        TranslationMode::Sv57,
    ] {
        let pmpt = cold_cycles(IsolationScheme::PmpTable, mode);
        let hpmp = cold_cycles(IsolationScheme::Hpmp, mode);
        let gap = pmpt - hpmp;
        assert!(
            gap > last_gap,
            "{mode}: HPMP's absolute saving must grow with depth ({gap} vs {last_gap})"
        );
        last_gap = gap;
    }
}

/// The PMPTW-Cache sweep is monotone: more entries never cost more
/// references on a repetitive pattern.
#[test]
fn pmptw_cache_monotone() {
    use hpmp_suite::core::PmptwCacheConfig;
    let walk_refs = |entries: usize| {
        let mut config = MachineConfig::rocket();
        config.pmptw_cache = PmptwCacheConfig { entries };
        let mut sys = SystemBuilder::new(config, IsolationScheme::PmpTable).build();
        sys.map_range(VirtAddr::new(0x10_0000), 8, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();
        sys.machine.reset_stats();
        // Two sweeps over the same pages: the second exercises the cache.
        for _ in 0..2 {
            for i in 0..8u64 {
                sys.machine
                    .access(
                        &sys.space,
                        VirtAddr::new(0x10_0000 + i * 4096),
                        AccessKind::Read,
                        PrivMode::Supervisor,
                    )
                    .expect("mapped");
            }
            sys.machine.sfence_vma_asid(1); // force re-walks, keep PMPTW cache
        }
        sys.machine.stats().refs.pmpte_for_pt + sys.machine.stats().refs.pmpte_for_data
    };
    let r0 = walk_refs(0);
    let r4 = walk_refs(4);
    let r8 = walk_refs(8);
    assert!(
        r4 <= r0,
        "4-entry cache must not add references: {r4} vs {r0}"
    );
    assert!(
        r8 <= r4,
        "8-entry cache must not add references: {r8} vs {r4}"
    );
    assert!(
        r8 < r0,
        "the cache must actually remove references: {r8} vs {r0}"
    );
}

/// Flipping one entry's T bit converts a live system between PMP-like and
/// table-like behaviour without rebuilding anything (§4.2's flexibility
/// claim, end-to-end).
#[test]
fn runtime_mode_switch() {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::Hpmp).build();
    sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
    sys.sync_pt_grants();
    let va = VirtAddr::new(0x10_0000);

    // Baseline hybrid: 6 references.
    sys.machine.flush_microarch();
    let hybrid = sys
        .machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .expect("access")
        .refs
        .total();
    assert_eq!(hybrid, 6);

    // Demote the fast segment (entry 0 in the builder's HPMP layout —
    // entries 1/2 are the table pair) by disabling it: PT-page checks fall
    // back to the table, which covers the pool too (cache-like management).
    sys.machine
        .regs_mut()
        .disable(0)
        .expect("disable fast segment");
    sys.machine.sfence_vma_all();
    sys.machine.flush_microarch();
    let demoted = sys
        .machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .expect("access")
        .refs
        .total();
    assert_eq!(
        demoted, 12,
        "without the fast segment the walk pays full table cost"
    );
}
