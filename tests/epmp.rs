//! §4.3 sizing arithmetic with the ePMP extension: "16 HPMP entries can
//! support 8 PMP Table and therefore support 128GB of memory. Moreover,
//! future RISC-V processors will support 64 PMP entries with the ePMP
//! extension. With 64 entries, a CPU can use 2-level tables to manage 512GB
//! of memory."

use hpmp_suite::core::{
    HpmpRegFile, PmpRegion, PmpTable, PmptwCache, TableLevels, EPMP_ENTRIES, HPMP_ENTRIES,
    ROOT_TABLE_SPAN,
};
use hpmp_suite::memsim::{
    AccessKind, FrameAllocator, Perms, PhysAddr, PhysMem, PrivMode, PAGE_SIZE,
};

/// Programs as many 16 GiB table-mode entries as the file fits and returns
/// the protected bytes.
fn fill_with_tables(entries: usize) -> (PhysMem, HpmpRegFile, u64) {
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(PhysAddr::new(0x80_0000_0000), 4096 * PAGE_SIZE);
    let mut regs = HpmpRegFile::with_entries(entries);
    let mut covered = 0u64;
    let mut idx = 0;
    // Each table-mode entry consumes two registers (entry + pointer).
    while idx + 1 < entries {
        let base = PhysAddr::new(0x100_0000_0000 + covered);
        let region = PmpRegion::new(base, ROOT_TABLE_SPAN);
        let mut table = PmpTable::new(region, &mut mem, &mut frames).expect("table");
        table
            .set_page_perm(&mut mem, &mut frames, base, Perms::RW)
            .expect("grant first page");
        regs.configure_table(idx, region, table.root(), TableLevels::Two)
            .expect("entry");
        covered += ROOT_TABLE_SPAN;
        idx += 2;
    }
    (mem, regs, covered)
}

#[test]
fn sixteen_entries_reach_128_gib() {
    let (_, regs, covered) = fill_with_tables(HPMP_ENTRIES);
    assert_eq!(regs.len(), 16);
    assert_eq!(covered, 128u64 << 30, "16 entries = 8 tables = 128 GiB");
}

#[test]
fn epmp_entries_reach_512_gib() {
    let (_, regs, covered) = fill_with_tables(EPMP_ENTRIES);
    assert_eq!(regs.len(), 64);
    // 64 entries = 32 table pairs = 512 GiB, matching §4.3 exactly.
    assert_eq!(covered, 512u64 << 30, "64 entries = 32 tables = 512 GiB");
}

#[test]
fn all_epmp_tables_are_live() {
    let (mem, regs, covered) = fill_with_tables(EPMP_ENTRIES);
    let mut cache = PmptwCache::disabled();
    // The first page of every protected 16 GiB region was granted; spot
    // check the first, a middle, and the last region.
    for region_idx in [0u64, 15, covered / ROOT_TABLE_SPAN - 1] {
        let addr = PhysAddr::new(0x100_0000_0000 + region_idx * ROOT_TABLE_SPAN);
        let out = regs.check(
            &mem,
            &mut cache,
            addr,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(
            out.allowed,
            "region {region_idx} must be table-checked and granted"
        );
        assert_eq!(out.refs.len(), 2, "2-level walk");
        // An ungranted page in the same region is denied, not unmatched.
        let deny = regs.check(
            &mem,
            &mut cache,
            addr + PAGE_SIZE,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(!deny.allowed);
        assert!(deny.matched_entry.is_some());
    }
}

#[test]
fn epmp_monitor_scales_pmp_flavor() {
    use hpmp_suite::machine::{Machine, MachineConfig};
    use hpmp_suite::penglai::{GmsLabel, MonitorError, SecureMonitor, TeeFlavor};

    // With 64 entries even the segment-per-region flavour supports far more
    // enclaves before hitting the wall.
    let mut config = MachineConfig::rocket();
    config.hpmp_entries = EPMP_ENTRIES;
    let mut machine = Machine::new(config);
    let ram = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);
    let mut monitor =
        SecureMonitor::boot(&mut machine, TeeFlavor::PenglaiPmp, ram).expect("monitor boots");
    let mut created = 0;
    loop {
        match monitor.create_domain(&mut machine, 1 << 20, GmsLabel::Slow) {
            Ok(_) => created += 1,
            Err(MonitorError::OutOfPmpEntries) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
        assert!(created < 128);
    }
    assert!(
        created > 30,
        "ePMP should lift the wall well past 16: {created}"
    );
    assert!(created < 64, "but the wall still exists");
}
