//! §9 I/O protection: DMA initiators are checked by an IOPMP in the HPMP
//! style. Devices assigned to a domain can DMA into its memory and nowhere
//! else; the "malicious I/O device" of the paper is stopped at the first
//! page.

use hpmp_suite::core::{DeviceId, PmpRegion};
use hpmp_suite::machine::{Fault, Machine, MachineConfig};
use hpmp_suite::memsim::{AccessKind, PhysAddr};
use hpmp_suite::penglai::{DomainId, GmsLabel, SecureMonitor, TeeFlavor};

const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

fn boot(flavor: TeeFlavor) -> (Machine, SecureMonitor) {
    let mut machine = Machine::new(MachineConfig::rocket());
    let monitor = SecureMonitor::boot(&mut machine, flavor, RAM).expect("monitor boots");
    (machine, monitor)
}

/// Unassigned devices have no access at all (default deny).
#[test]
fn unassigned_device_denied() {
    let (mut machine, monitor) = boot(TeeFlavor::PenglaiHpmp);
    let host_page = PhysAddr::new(
        monitor.regions_of(DomainId::HOST).unwrap()[0]
            .region
            .base
            .raw(),
    );
    let err = machine
        .dma_transfer(
            monitor.iopmp(),
            DeviceId(5),
            host_page,
            4096,
            AccessKind::Write,
        )
        .unwrap_err();
    assert!(matches!(err, Fault::IsolationOnData(_)));
}

/// A device assigned to an enclave can DMA into the enclave's memory but
/// is stopped at host memory — and vice versa.
#[test]
fn device_scoped_to_owner() {
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        let (mut machine, mut monitor) = boot(flavor);
        let (enclave, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .expect("create");
        let enclave_page = PhysAddr::new(monitor.regions_of(enclave).unwrap()[0].region.base.raw());
        let host_page = PhysAddr::new(
            monitor.regions_of(DomainId::HOST).unwrap()[0]
                .region
                .base
                .raw()
                + (64 << 20),
        );

        let nic = DeviceId(1);
        monitor
            .assign_device(&mut machine, nic, enclave)
            .expect("assign");
        let cycles = machine
            .dma_transfer(monitor.iopmp(), nic, enclave_page, 4096, AccessKind::Write)
            .unwrap_or_else(|e| panic!("{flavor}: enclave DMA must pass: {e}"));
        assert!(cycles > 0);
        let err = machine
            .dma_transfer(monitor.iopmp(), nic, host_page, 4096, AccessKind::Write)
            .expect_err("host memory must be out of reach");
        assert!(matches!(err, Fault::IsolationOnData(_)), "{flavor}");

        // A host-owned device is the mirror image.
        let disk = DeviceId(2);
        monitor
            .assign_device(&mut machine, disk, DomainId::HOST)
            .expect("assign");
        machine
            .dma_transfer(monitor.iopmp(), disk, host_page, 4096, AccessKind::Read)
            .unwrap_or_else(|e| panic!("{flavor}: host DMA must pass: {e}"));
        assert!(
            machine
                .dma_transfer(monitor.iopmp(), disk, enclave_page, 4096, AccessKind::Read)
                .is_err(),
            "{flavor}: malicious device stopped at enclave memory"
        );
    }
}

/// Revoking a device restores default deny; reassignment moves its reach.
#[test]
fn revoke_and_reassign() {
    let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
    let (a, _) = monitor
        .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
        .expect("a");
    let (b, _) = monitor
        .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
        .expect("b");
    let page_a = PhysAddr::new(monitor.regions_of(a).unwrap()[0].region.base.raw());
    let page_b = PhysAddr::new(monitor.regions_of(b).unwrap()[0].region.base.raw());
    let dev = DeviceId(7);

    monitor
        .assign_device(&mut machine, dev, a)
        .expect("assign a");
    machine
        .dma_transfer(monitor.iopmp(), dev, page_a, 64, AccessKind::Read)
        .expect("a ok");

    monitor
        .assign_device(&mut machine, dev, b)
        .expect("reassign b");
    machine
        .dma_transfer(monitor.iopmp(), dev, page_b, 64, AccessKind::Read)
        .expect("b ok");
    assert!(
        machine
            .dma_transfer(monitor.iopmp(), dev, page_a, 64, AccessKind::Read)
            .is_err(),
        "old owner's memory now out of reach"
    );

    monitor.revoke_device(&mut machine, dev);
    assert!(
        machine
            .dma_transfer(monitor.iopmp(), dev, page_b, 64, AccessKind::Read)
            .is_err(),
        "revoked device denied everywhere"
    );
}

/// Device reach tracks region allocation: memory granted to the owning
/// domain after assignment is immediately DMA-reachable.
#[test]
fn device_reach_tracks_regions() {
    let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
    let (enclave, _) = monitor
        .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
        .expect("create");
    let dev = DeviceId(3);
    monitor
        .assign_device(&mut machine, dev, enclave)
        .expect("assign");
    let (new_region, _) = monitor
        .alloc_region(&mut machine, enclave, 1 << 20, GmsLabel::Slow)
        .expect("grow");
    machine
        .dma_transfer(
            monitor.iopmp(),
            dev,
            new_region.base,
            4096,
            AccessKind::Write,
        )
        .expect("newly granted region is DMA-reachable");
}

/// Destroying a domain severs its devices.
#[test]
fn destroy_severs_devices() {
    let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmpt);
    let (enclave, _) = monitor
        .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
        .expect("create");
    let page = PhysAddr::new(monitor.regions_of(enclave).unwrap()[0].region.base.raw());
    let dev = DeviceId(4);
    monitor
        .assign_device(&mut machine, dev, enclave)
        .expect("assign");
    machine
        .dma_transfer(monitor.iopmp(), dev, page, 64, AccessKind::Read)
        .expect("ok");
    monitor
        .destroy_domain(&mut machine, enclave)
        .expect("destroy");
    assert!(
        machine
            .dma_transfer(monitor.iopmp(), dev, page, 64, AccessKind::Read)
            .is_err(),
        "device loses access when its domain dies"
    );
}
