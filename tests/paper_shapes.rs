//! Headline-shape pins: the qualitative claims EXPERIMENTS.md reports,
//! asserted end-to-end so a regression in any layer (walker, checker,
//! caches, OS model, workload generators) that bends a *conclusion* fails
//! CI, not just a number.

use hpmp_suite::machine::IsolationScheme;
use hpmp_suite::memsim::{AccessKind, CoreKind};
use hpmp_suite::penglai::TeeFlavor;
use hpmp_suite::workloads::latency::{figure_10_panel, TestCase};
use hpmp_suite::workloads::{lmbench, serverless};

/// Figure 10's headline: HPMP mitigates a substantial fraction of the
/// extra-dimensional cost on every walking case, on both cores, both ops.
#[test]
fn mitigation_band_headline() {
    let mut mitigations = Vec::new();
    for core in [CoreKind::Rocket, CoreKind::Boom] {
        for op in [AccessKind::Read, AccessKind::Write] {
            for row in figure_10_panel(core, op) {
                if row.case != TestCase::Tc4 {
                    mitigations.push(row.mitigation());
                }
            }
        }
    }
    let min = mitigations.iter().cloned().fold(f64::MAX, f64::min);
    let max = mitigations.iter().cloned().fold(f64::MIN, f64::max);
    // Paper bands: 23.1–73.1% (BOOM), 47.7–72.4% (Rocket). Accept a wider
    // envelope but demand the qualitative claim: substantial everywhere.
    assert!(min > 0.2, "worst-case mitigation too small: {min}");
    assert!(max <= 1.0, "mitigation cannot exceed 100%: {max}");
}

/// Table 3's headline: PMPT costs ~20–45% more than HPMP averaged over the
/// syscall mix, and HPMP lands within ~12% of raw PMP.
#[test]
fn lmbench_average_ratio_headline() {
    let iters = 6;
    let mut pmpt_over_hpmp = Vec::new();
    let mut hpmp_over_pmp = Vec::new();
    for syscall in lmbench::SYSCALLS {
        let pmp = lmbench::measure_syscall(TeeFlavor::PenglaiPmp, CoreKind::Boom, syscall, iters)
            .unwrap();
        let pmpt = lmbench::measure_syscall(TeeFlavor::PenglaiPmpt, CoreKind::Boom, syscall, iters)
            .unwrap();
        let hpmp = lmbench::measure_syscall(TeeFlavor::PenglaiHpmp, CoreKind::Boom, syscall, iters)
            .unwrap();
        pmpt_over_hpmp.push(pmpt as f64 / hpmp as f64);
        hpmp_over_pmp.push(hpmp as f64 / pmp as f64);
    }
    let avg = pmpt_over_hpmp.iter().sum::<f64>() / pmpt_over_hpmp.len() as f64;
    assert!(
        (1.10..1.45).contains(&avg),
        "Table 3 average PMPT/HPMP ratio out of band: {avg}"
    );
    let hpmp_avg = hpmp_over_pmp.iter().sum::<f64>() / hpmp_over_pmp.len() as f64;
    assert!(hpmp_avg < 1.12, "HPMP must track PMP closely: {hpmp_avg}");
}

/// Figure 12's headline: serverless overhead under PMPT exceeds HPMP's by
/// at least 2.5x on average (the co-design recovers most of the cost).
#[test]
fn serverless_recovery_headline() {
    let n = 2;
    let mut recovery = Vec::new();
    for function in [
        serverless::Function::Dd,
        serverless::Function::Chameleon,
        serverless::Function::Image,
    ] {
        let pmp = serverless::measure_function(TeeFlavor::PenglaiPmp, CoreKind::Rocket, function, n)
            .unwrap() as f64;
        let pmpt =
            serverless::measure_function(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, function, n)
                .unwrap() as f64;
        let hpmp =
            serverless::measure_function(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, function, n)
                .unwrap() as f64;
        recovery.push((pmpt - hpmp) / (pmpt - pmp));
    }
    let avg = recovery.iter().sum::<f64>() / recovery.len() as f64;
    assert!(
        avg > 0.6,
        "HPMP must recover most of the serverless overhead: {avg}"
    );
}

/// The reference-count identity that generates every other result:
/// extra(PMPT) = 2 × (levels + 1), extra(HPMP) = 2, independent of core.
#[test]
fn reference_count_identity() {
    use hpmp_suite::machine::{MachineConfig, SystemBuilder};
    use hpmp_suite::memsim::{Perms, PrivMode, VirtAddr};
    for config in [MachineConfig::rocket(), MachineConfig::boom()] {
        let mut totals = Vec::new();
        for scheme in [
            IsolationScheme::Pmp,
            IsolationScheme::PmpTable,
            IsolationScheme::Hpmp,
        ] {
            let mut sys = SystemBuilder::new(config, scheme).build();
            sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
            sys.sync_pt_grants();
            sys.machine.flush_microarch();
            let out = sys
                .machine
                .access(
                    &sys.space,
                    VirtAddr::new(0x10_0000),
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .unwrap();
            totals.push(out.refs.total());
        }
        assert_eq!(totals, vec![4, 12, 6]);
    }
}
