//! Exporter round-trip conformance on a real fixed-seed 4-hart run: the
//! Chrome Trace Event document must re-derive the final snapshot's cycle
//! counters when its track durations are re-summed (the acceptance pin
//! for `hpmp-analyze export`), and the collapsed stacks must re-derive
//! the per-class latency cycle counters. Both checks run against the
//! genuine artifacts the SMP harness emits, not synthetic fixtures.

use hpmp_suite::analyze::{
    chrome_trace, collapsed_stacks, render_collapsed, verify_collapsed, verify_span_export,
};
use hpmp_suite::machine::{Machine, MachineConfig};
use hpmp_suite::penglai::TeeFlavor;
use hpmp_suite::trace::json::{parse_json, JsonValue};
use hpmp_suite::trace::{
    walks_in_snapshot, JsonlSink, Snapshot, SpanStream, Timeline, TraceReader, WalkEvent,
    SCHEMA_VERSION, WALK_EVENT_STREAM,
};
use hpmp_suite::workloads::smp::{run_smp_telemetry, spec_for, SmpTelemetrySpec};

/// Same fixed seed and shape as the `hpmpsim --harts 4` CI run.
const SEED: u64 = 0x4850_4d50;
const HARTS: usize = 4;
const INTERVAL: u64 = 40_000;

struct Run {
    snapshot: Snapshot,
    events: Vec<WalkEvent>,
    spans: SpanStream,
    timeline: Timeline,
}

/// One traced 4-hart tenancy run, artifacts round-tripped through their
/// serialized JSONL forms exactly as the CLI path would see them.
fn run_traced() -> Run {
    let machines = (0..HARTS)
        .map(|_| {
            Machine::with_sink(
                MachineConfig::rocket(),
                JsonlSink::new_headerless(Vec::new()),
            )
        })
        .collect();
    let spec = spec_for("tenancy").expect("tenancy has an SMP shape");
    let telemetry_spec = SmpTelemetrySpec {
        snapshot_interval: Some(INTERVAL),
        span_capacity: Some(SmpTelemetrySpec::DEFAULT_SPAN_CAPACITY),
    };
    let (_, snapshot, sinks, telemetry) =
        run_smp_telemetry(machines, TeeFlavor::PenglaiHpmp, SEED, spec, telemetry_spec)
            .expect("SMP workload");

    // Splice the per-hart trace bytes under one header, as hpmpsim does.
    let mut trace = format!("{{\"schema\":{SCHEMA_VERSION},\"stream\":\"{WALK_EVENT_STREAM}\"}}\n")
        .into_bytes();
    for sink in sinks {
        trace.extend_from_slice(&sink.into_inner());
    }
    let events = TraceReader::new(trace.as_slice())
        .expect("valid header")
        .read_all()
        .expect("parses");

    let mut span_bytes = Vec::new();
    telemetry
        .spans
        .as_ref()
        .expect("capacity requested")
        .write_jsonl(&mut span_bytes)
        .expect("Vec writes cannot fail");
    let mut timeline_bytes = Vec::new();
    telemetry
        .timeline
        .as_ref()
        .expect("interval requested")
        .write_jsonl(&mut timeline_bytes)
        .expect("Vec writes cannot fail");

    Run {
        snapshot,
        events,
        spans: SpanStream::parse(span_bytes.as_slice()).expect("spans parse"),
        timeline: Timeline::parse(timeline_bytes.as_slice()).expect("timeline parses"),
    }
}

/// The acceptance pin: summing the exported Chrome slice durations per
/// hart track re-derives the final snapshot's `hart.<i>.shootdown_cycles`
/// and `hart.<i>.shootdowns` counters exactly — straight from the JSON
/// document a viewer would load, not from the in-memory spans.
#[test]
fn chrome_trace_durations_re_derive_the_snapshot_counters() {
    let run = run_traced();
    assert_eq!(
        verify_span_export(&run.spans, &run.snapshot),
        Vec::<String>::new()
    );

    let json = chrome_trace(&run.spans, Some(&run.timeline));
    let doc = parse_json(&json).expect("export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");

    let mut handler_cycles = [0u64; HARTS];
    let mut recv_count = [0u64; HARTS];
    let mut flows = 0usize;
    let mut final_walks = None;
    for event in events {
        let name = event.get("name").and_then(JsonValue::as_str).unwrap_or("");
        match event.get("ph").and_then(JsonValue::as_str) {
            Some("X") => {
                let tid = event
                    .get("tid")
                    .and_then(JsonValue::as_u64)
                    .expect("slice has a tid") as usize;
                let dur = event
                    .get("dur")
                    .and_then(JsonValue::as_u64)
                    .expect("slice has a dur");
                match name {
                    "trap" | "reprogram" | "fence" => handler_cycles[tid] += dur,
                    "shootdown_recv" => recv_count[tid] += 1,
                    _ => {}
                }
            }
            Some("s") => flows += 1,
            Some("C") if name == "walks" => {
                final_walks = event
                    .get("args")
                    .and_then(|a| a.get("walks"))
                    .and_then(JsonValue::as_u64);
            }
            _ => {}
        }
    }

    let mut stalled_harts = 0;
    for hart in 0..HARTS {
        let want_cycles = run.snapshot.value(&format!("hart.{hart}.shootdown_cycles"));
        let want_count = run.snapshot.value(&format!("hart.{hart}.shootdowns"));
        assert_eq!(
            handler_cycles[hart], want_cycles,
            "hart {hart}: exported track durations diverge from the snapshot"
        );
        assert_eq!(
            recv_count[hart], want_count,
            "hart {hart}: exported shootdown_recv slices diverge from the snapshot"
        );
        stalled_harts += u32::from(want_cycles > 0);
    }
    assert!(stalled_harts > 0, "the tenancy shape must shoot down");
    assert!(flows > 0, "causal links must become flow arrows");
    // The cumulative walks counter track ends at the snapshot's total.
    assert_eq!(
        final_walks,
        Some(walks_in_snapshot(&run.snapshot)),
        "the walks counter track must end at the snapshot total"
    );
}

/// Collapsed stacks re-derive the per-class latency cycle counters, and
/// the rendered text is well-formed flamegraph input.
#[test]
fn collapsed_stacks_re_derive_the_latency_counters() {
    let run = run_traced();
    assert!(!run.events.is_empty(), "the run must trace walk events");
    assert_eq!(
        verify_collapsed(&run.events, &run.snapshot),
        Vec::<String>::new()
    );

    let stacks = collapsed_stacks(&run.events);
    assert!(!stacks.is_empty());
    let rendered = render_collapsed(&stacks);
    for line in rendered.lines() {
        let (stack, cycles) = line.rsplit_once(' ').expect("`frames count` shape");
        assert!(
            stack.splitn(3, ';').count() == 3,
            "stack must be world;class;step: {line}"
        );
        assert!(
            cycles.parse::<u64>().is_ok(),
            "count must be numeric: {line}"
        );
    }
    // Total stack cycles equal total event cycles — nothing dropped,
    // nothing double-counted.
    let stack_total: u64 = stacks.values().sum();
    let event_total: u64 = run.events.iter().map(|e| e.cycles).sum();
    assert_eq!(stack_total, event_total);
}
