//! Cross-crate invariant tests: the memory-reference arithmetic the paper
//! states in §2–§6 must hold *exactly*, for every translation mode —
//! these counts follow from the RISC-V ISA specification, not from any
//! microarchitectural model.

use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder, VirtMachine, VirtScheme};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr};
use hpmp_suite::paging::TranslationMode;
use hpmp_suite::penglai::{SmpSystem, TeeFlavor};

fn cold_refs(scheme: IsolationScheme, mode: TranslationMode) -> (u64, u64, u64, u64) {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme)
        .translation_mode(mode)
        .build();
    sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
    sys.sync_pt_grants();
    sys.machine.flush_microarch();
    let out = sys
        .machine
        .access(
            &sys.space,
            VirtAddr::new(0x10_0000),
            AccessKind::Read,
            PrivMode::Supervisor,
        )
        .expect("mapped");
    (
        out.refs.pt_reads,
        out.refs.pmpte_for_pt,
        out.refs.pmpte_for_data,
        out.refs.total(),
    )
}

/// §2.2: PMP adds zero references — L+1 total for an L-level table.
#[test]
fn pmp_reference_formula_all_modes() {
    for (mode, levels) in [
        (TranslationMode::Sv39, 3),
        (TranslationMode::Sv48, 4),
        (TranslationMode::Sv57, 5),
    ] {
        let (pt, for_pt, for_data, total) = cold_refs(IsolationScheme::Pmp, mode);
        assert_eq!(pt, levels, "{mode}");
        assert_eq!(for_pt, 0, "{mode}");
        assert_eq!(for_data, 0, "{mode}");
        assert_eq!(total, levels + 1, "{mode}");
    }
}

/// §2.2: a 2-level permission table triples the count — 3(L+1) total.
/// "a 2-level permission table leads to eight more memory references
/// (total: 12) for RISC-V Sv39".
#[test]
fn pmpt_reference_formula_all_modes() {
    for (mode, levels) in [
        (TranslationMode::Sv39, 3u64),
        (TranslationMode::Sv48, 4),
        (TranslationMode::Sv57, 5),
    ] {
        let (pt, for_pt, for_data, total) = cold_refs(IsolationScheme::PmpTable, mode);
        assert_eq!(pt, levels, "{mode}");
        assert_eq!(for_pt, 2 * levels, "{mode}");
        assert_eq!(for_data, 2, "{mode}");
        assert_eq!(total, 3 * (levels + 1), "{mode}");
    }
}

/// §3: HPMP leaves only the two data-page references — L+3 total
/// ("reduce the memory references from 12 to 6 for RISC-V Sv39").
#[test]
fn hpmp_reference_formula_all_modes() {
    for (mode, levels) in [
        (TranslationMode::Sv39, 3u64),
        (TranslationMode::Sv48, 4),
        (TranslationMode::Sv57, 5),
    ] {
        let (pt, for_pt, for_data, total) = cold_refs(IsolationScheme::Hpmp, mode);
        assert_eq!(pt, levels, "{mode}");
        assert_eq!(for_pt, 0, "{mode}: PT pages are segment-checked");
        assert_eq!(for_data, 2, "{mode}");
        assert_eq!(total, levels + 3, "{mode}");
    }
}

/// §6: the virtualized walk — 16 base references; the permission table adds
/// 32 (24 for NPT pages, 6 for guest-PT pages, 2 for data); HPMP removes
/// the 24; HPMP-GPT also removes the 6.
#[test]
fn virtualized_reference_arithmetic() {
    for (scheme, npt, gpt, data, total) in [
        (VirtScheme::Pmp, 0, 0, 0, 16),
        (VirtScheme::PmpTable, 24, 6, 2, 48),
        (VirtScheme::Hpmp, 0, 6, 2, 24),
        (VirtScheme::HpmpGpt, 0, 0, 2, 18),
    ] {
        let mut machine = VirtMachine::new(MachineConfig::rocket(), scheme, 4);
        machine.flush_microarch();
        let out = machine
            .access(VirtAddr::new(0x20_0000), AccessKind::Read)
            .expect("guest page mapped");
        assert_eq!(out.refs.pmpte_for_npt, npt, "{scheme}: NPT pmpte refs");
        assert_eq!(out.refs.pmpte_for_gpt, gpt, "{scheme}: GPT pmpte refs");
        assert_eq!(out.refs.pmpte_for_data, data, "{scheme}: data pmpte refs");
        assert_eq!(out.refs.total(), total, "{scheme}: total");
    }
}

/// Footnote 1: the counts are ISA-level — microarchitectural help (PWC)
/// reduces them. With a warm PWC, the Sv39 PMPT walk needs only the leaf
/// PTE: 1 PT read + 2 pmpte + data + 2 pmpte = 6.
#[test]
fn pwc_reduces_below_isa_counts() {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::PmpTable).build();
    sys.map_range(VirtAddr::new(0x10_0000), 2, Perms::RW);
    sys.sync_pt_grants();
    sys.machine.flush_microarch();
    sys.machine
        .access(
            &sys.space,
            VirtAddr::new(0x10_0000),
            AccessKind::Read,
            PrivMode::Supervisor,
        )
        .expect("warm");
    let out = sys
        .machine
        .access(
            &sys.space,
            VirtAddr::new(0x10_1000),
            AccessKind::Read,
            PrivMode::Supervisor,
        )
        .expect("neighbour");
    assert_eq!(out.refs.pt_reads, 1);
    assert_eq!(out.refs.total(), 6);
}

/// TLB inlining (Implication-2): a TLB hit needs exactly one reference in
/// every scheme; with inlining disabled, table schemes pay the permission
/// walk on every access.
#[test]
fn tlb_inlining_ablation() {
    // Enabled (default): warm access = 1 ref.
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::PmpTable).build();
    sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
    sys.sync_pt_grants();
    let va = VirtAddr::new(0x10_0000);
    sys.machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .unwrap();
    let warm = sys
        .machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .unwrap();
    assert_eq!(warm.refs.total(), 1);

    // Disabled: the same TLB hit pays two pmpte references.
    let mut config = MachineConfig::rocket();
    config.tlb_inlining = false;
    let mut sys = SystemBuilder::new(config, IsolationScheme::PmpTable).build();
    sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
    sys.sync_pt_grants();
    sys.machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .unwrap();
    let warm = sys
        .machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .unwrap();
    assert_eq!(warm.refs.pmpte_for_data, 2);
    assert_eq!(warm.refs.total(), 3);
}

/// The §2–§3 arithmetic must survive SMP: on a 2-hart system with one
/// tenant enclave per hart, each hart's *own* cold miss walk still costs
/// exactly the paper's counts — 4 (PMP), 12 (PMPT), 6 (HPMP) — because a
/// walk runs entirely on the hart that issues it. If per-hart accounting
/// double-counted shared steps (or a remote hart's caches bled in), these
/// exact equalities would break.
#[test]
fn reference_formulas_hold_per_hart_under_smp() {
    use hpmp_suite::core::PmpRegion;
    use hpmp_suite::memsim::PhysAddr;
    use hpmp_suite::workloads::smp::setup_tenants;

    let ram = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);
    for (flavor, expected_total, expected_for_pt) in [
        (TeeFlavor::PenglaiPmp, 4u64, 0u64),
        (TeeFlavor::PenglaiPmpt, 12, 6),
        (TeeFlavor::PenglaiHpmp, 6, 0),
    ] {
        let mut smp =
            SmpSystem::boot(MachineConfig::rocket(), flavor, ram, 2).expect("SMP system boots");
        let tenants = setup_tenants(&mut smp, 4).expect("tenants boot");
        for hart in 0..2u16 {
            let tenant = &tenants[usize::from(hart)];
            let machine = smp.machine(hart);
            machine.flush_microarch();
            let out = machine
                .access(
                    &tenant.space,
                    tenant.va_base,
                    AccessKind::Read,
                    PrivMode::User,
                )
                .expect("tenant reaches its own page");
            assert_eq!(out.refs.pt_reads, 3, "{flavor} hart {hart}: Sv39 PT reads");
            assert_eq!(
                out.refs.pmpte_for_pt, expected_for_pt,
                "{flavor} hart {hart}: pmpte refs guarding PT pages"
            );
            assert_eq!(
                out.refs.total(),
                expected_total,
                "{flavor} hart {hart}: total walk references"
            );
        }
        // The per-hart counters saw exactly the per-hart work: both harts
        // walked, neither inherited the other's references.
        let snap = smp.metrics_snapshot();
        for hart in 0..2 {
            assert!(
                snap.value(&format!("hart.{hart}.machine.accesses")) >= 1,
                "{flavor} hart {hart} accesses"
            );
        }
    }
}

/// The three schemes are one register file: flipping the T bit (plus the
/// pointer register) converts a segment entry into a table entry with no
/// other hardware change (§4.2).
#[test]
fn schemes_share_one_register_file() {
    use hpmp_suite::core::HPMP_ENTRIES;
    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        let sys = SystemBuilder::new(MachineConfig::rocket(), scheme).build();
        // Same 16-entry file in every configuration.
        let regs = sys.machine.regs();
        let active = (0..HPMP_ENTRIES)
            .filter(|&i| regs.entry_region(i).is_some())
            .count();
        assert!(active >= 1, "{scheme}: at least one active entry");
        assert!(active <= HPMP_ENTRIES, "{scheme}");
    }
}
