//! Accounting invariants: the statistics the figures are computed from must
//! be internally consistent — reference counts match what the memory system
//! saw, TLB lookups match accesses, and cycle totals are conserved.

use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr, PAGE_SIZE};

#[test]
fn references_match_memory_system() {
    for scheme in [IsolationScheme::Pmp, IsolationScheme::PmpTable, IsolationScheme::Hpmp] {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme).build();
        sys.map_range(VirtAddr::new(0x10_0000), 32, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();
        sys.machine.reset_stats();

        for i in 0..32u64 {
            sys.machine
                .access(&sys.space, VirtAddr::new(0x10_0000 + i * PAGE_SIZE),
                        AccessKind::Read, PrivMode::Supervisor)
                .expect("mapped");
        }

        let stats = sys.machine.stats();
        let mem = sys.machine.mem_stats();
        // Every counted reference went through the memory system, and
        // nothing else did.
        assert_eq!(stats.refs.total(), mem.accesses, "{scheme}: reference conservation");
        // Every access either hit the TLB or walked.
        let tlb = sys.machine.tlb_stats();
        assert_eq!(tlb.lookups(), stats.accesses, "{scheme}: one TLB lookup per access");
        assert_eq!(tlb.misses, stats.walks, "{scheme}: one walk per TLB miss");
        // Data references: exactly one per access.
        assert_eq!(stats.refs.data_reads, stats.accesses, "{scheme}");
        // Hierarchy conservation: every lookup at a level is a hit or miss.
        assert_eq!(mem.l1.accesses(), mem.l1.hits + mem.l1.misses);
        assert_eq!(mem.dram.row_hits + mem.dram.row_misses,
                   mem.llc.misses, "{scheme}: every LLC miss reaches DRAM");
    }
}

#[test]
fn per_access_outcomes_sum_to_totals() {
    let mut sys = SystemBuilder::new(MachineConfig::boom(), IsolationScheme::Hpmp).build();
    sys.map_range(VirtAddr::new(0x10_0000), 8, Perms::RW);
    sys.sync_pt_grants();
    sys.machine.flush_microarch();
    sys.machine.reset_stats();

    let mut cycles = 0;
    let mut refs = 0;
    for i in 0..8u64 {
        let out = sys.machine
            .access(&sys.space, VirtAddr::new(0x10_0000 + i * PAGE_SIZE), AccessKind::Write,
                    PrivMode::Supervisor)
            .expect("mapped");
        cycles += out.cycles;
        refs += out.refs.total();
    }
    let stats = sys.machine.stats();
    assert_eq!(stats.cycles, cycles, "cycle conservation");
    assert_eq!(stats.refs.total(), refs, "reference conservation");
    assert_eq!(stats.accesses, 8);
    assert_eq!(stats.faults, 0);
}

#[test]
fn faults_are_counted_but_not_as_accesses() {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::Pmp).build();
    sys.machine.reset_stats();
    for _ in 0..3 {
        let _ = sys.machine.access(&sys.space, VirtAddr::new(0xdead_0000), AccessKind::Read,
                                   PrivMode::Supervisor);
    }
    let stats = sys.machine.stats();
    assert_eq!(stats.faults, 3);
    assert_eq!(stats.accesses, 0, "faulting accesses do not complete");
}
