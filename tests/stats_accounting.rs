//! Accounting invariants: the statistics the figures are computed from must
//! be internally consistent — reference counts match what the memory system
//! saw, TLB lookups match accesses, and cycle totals are conserved.

use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr, PAGE_SIZE};
use hpmp_suite::trace::{
    AccessClass, JsonlSink, LatencyHistogram, LatencyHistograms, NullSink, RingSink,
};

#[test]
fn references_match_memory_system() {
    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme).build();
        sys.map_range(VirtAddr::new(0x10_0000), 32, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();
        sys.machine.reset_stats();

        for i in 0..32u64 {
            sys.machine
                .access(
                    &sys.space,
                    VirtAddr::new(0x10_0000 + i * PAGE_SIZE),
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .expect("mapped");
        }

        let stats = sys.machine.stats();
        let mem = sys.machine.mem_stats();
        // Every counted reference went through the memory system, and
        // nothing else did.
        assert_eq!(
            stats.refs.total(),
            mem.accesses,
            "{scheme}: reference conservation"
        );
        // Every access either hit the TLB or walked.
        let tlb = sys.machine.tlb_stats();
        assert_eq!(
            tlb.lookups(),
            stats.accesses,
            "{scheme}: one TLB lookup per access"
        );
        assert_eq!(tlb.misses, stats.walks, "{scheme}: one walk per TLB miss");
        // Data references: exactly one per access.
        assert_eq!(stats.refs.data_reads, stats.accesses, "{scheme}");
        // Hierarchy conservation: every lookup at a level is a hit or miss.
        assert_eq!(mem.l1.accesses(), mem.l1.hits + mem.l1.misses);
        assert_eq!(
            mem.dram.row_hits + mem.dram.row_misses,
            mem.llc.misses,
            "{scheme}: every LLC miss reaches DRAM"
        );
    }
}

#[test]
fn per_access_outcomes_sum_to_totals() {
    let mut sys = SystemBuilder::new(MachineConfig::boom(), IsolationScheme::Hpmp).build();
    sys.map_range(VirtAddr::new(0x10_0000), 8, Perms::RW);
    sys.sync_pt_grants();
    sys.machine.flush_microarch();
    sys.machine.reset_stats();

    let mut cycles = 0;
    let mut refs = 0;
    for i in 0..8u64 {
        let out = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000 + i * PAGE_SIZE),
                AccessKind::Write,
                PrivMode::Supervisor,
            )
            .expect("mapped");
        cycles += out.cycles;
        refs += out.refs.total();
    }
    let stats = sys.machine.stats();
    assert_eq!(stats.cycles, cycles, "cycle conservation");
    assert_eq!(stats.refs.total(), refs, "reference conservation");
    assert_eq!(stats.accesses, 8);
    assert_eq!(stats.faults, 0);
}

#[test]
fn faults_are_counted_but_not_as_accesses() {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::Pmp).build();
    sys.machine.reset_stats();
    for _ in 0..3 {
        let _ = sys.machine.access(
            &sys.space,
            VirtAddr::new(0xdead_0000),
            AccessKind::Read,
            PrivMode::Supervisor,
        );
    }
    let stats = sys.machine.stats();
    assert_eq!(stats.faults, 3);
    assert_eq!(stats.accesses, 0, "faulting accesses do not complete");
}

/// Drives `accesses` reads over `pages` mapped pages on a freshly reset
/// machine carrying `sink`, reusing addresses so both TLB hits and walks
/// occur.
fn drive<S: hpmp_suite::trace::TraceSink>(
    scheme: IsolationScheme,
    sink: S,
    pages: u64,
    accesses: u64,
) -> hpmp_suite::machine::System<S> {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme)
        .sink(sink)
        .build();
    sys.map_range(VirtAddr::new(0x10_0000), pages, Perms::RW);
    sys.sync_pt_grants();
    sys.machine.flush_microarch();
    sys.machine.reset_stats();
    for i in 0..accesses {
        let va = VirtAddr::new(0x10_0000 + (i % pages) * PAGE_SIZE);
        let kind = if i % 3 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        sys.machine
            .access(&sys.space, va, kind, PrivMode::Supervisor)
            .expect("mapped");
    }
    sys
}

#[test]
fn registry_snapshot_reconciles_with_legacy_stats() {
    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        let mut sys = drive(scheme, NullSink, 16, 48);
        let snap = sys.machine.metrics_snapshot();
        let stats = sys.machine.stats();
        let mem = sys.machine.mem_stats();
        let tlb = sys.machine.tlb_stats();

        // Every number a figure would use is reachable by dotted name and
        // agrees with the legacy per-component counters.
        assert_eq!(snap.value("machine.accesses"), stats.accesses, "{scheme}");
        assert_eq!(snap.value("machine.walks"), stats.walks, "{scheme}");
        assert_eq!(snap.value("machine.cycles"), stats.cycles, "{scheme}");
        assert_eq!(snap.value("machine.faults"), stats.faults, "{scheme}");
        assert_eq!(snap.value("machine.refs"), stats.refs.total(), "{scheme}");
        assert_eq!(
            snap.value("machine.refs.pt_reads"),
            stats.refs.pt_reads,
            "{scheme}"
        );
        assert_eq!(snap.value("machine.mem.accesses"), mem.accesses, "{scheme}");
        let lookups = snap.value("machine.dtlb.l1_hits")
            + snap.value("machine.dtlb.l2_hits")
            + snap.value("machine.dtlb.misses");
        assert_eq!(lookups, tlb.lookups(), "{scheme}");
        assert_eq!(snap.value("machine.dtlb.misses"), tlb.misses, "{scheme}");

        // The registry is a *view*: the reconciliation the components do
        // internally must also hold.
        sys.machine
            .verify_accounting()
            .expect("accounting must reconcile");

        // Latency histograms cover exactly the completed accesses.
        assert_eq!(
            sys.machine.histograms().total_count(),
            stats.accesses,
            "{scheme}"
        );
        let per_class: u64 = AccessClass::ALL
            .iter()
            .map(|&c| sys.machine.histograms().class(c).count())
            .sum();
        assert_eq!(
            per_class, stats.accesses,
            "{scheme}: classes partition accesses"
        );
    }
}

#[test]
fn snapshot_delta_isolates_a_measurement_phase() {
    let mut sys = drive(IsolationScheme::Hpmp, NullSink, 8, 8);
    let before = sys.machine.metrics_snapshot();
    for i in 0..24u64 {
        sys.machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000 + (i % 8) * PAGE_SIZE),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .expect("mapped");
    }
    let delta = sys.machine.metrics_snapshot().delta(&before);
    assert_eq!(delta.value("machine.accesses"), 24);
    let lookups = delta.value("machine.dtlb.l1_hits")
        + delta.value("machine.dtlb.l2_hits")
        + delta.value("machine.dtlb.misses");
    assert_eq!(lookups, 24, "one TLB lookup per access in the delta window");
    assert!(delta.value("machine.cycles") > 0);
}

#[test]
fn latency_histogram_buckets_and_merge() {
    // Bucket 0 is the exact value 0; bucket k covers [2^(k-1), 2^k).
    assert_eq!(LatencyHistogram::bucket_index(0), 0);
    assert_eq!(LatencyHistogram::bucket_index(1), 1);
    assert_eq!(LatencyHistogram::bucket_index(2), 2);
    assert_eq!(LatencyHistogram::bucket_index(3), 2);
    assert_eq!(LatencyHistogram::bucket_index(4), 3);
    assert_eq!(LatencyHistogram::bucket_index(1023), 10);
    assert_eq!(LatencyHistogram::bucket_index(1024), 11);

    let mut a = LatencyHistogram::new();
    for v in [3u64, 3, 100, 900] {
        a.record(v);
    }
    assert_eq!(a.count(), 4);
    assert_eq!(a.sum(), 1006);
    assert_eq!(a.bucket(LatencyHistogram::bucket_index(3)), 2);
    assert_eq!(a.min(), Some(3));
    assert_eq!(a.max(), Some(900));

    let mut b = LatencyHistogram::new();
    b.record(7);
    b.merge(&a);
    assert_eq!(b.count(), 5);
    assert_eq!(b.sum(), 1013);
    assert_eq!(b.max(), Some(900), "merge keeps the extremes");
    assert_eq!(b.min(), Some(3));

    // Per-class containers merge class-wise.
    let mut x = LatencyHistograms::new();
    let mut y = LatencyHistograms::new();
    x.record(AccessClass::ReadWalk, 400);
    y.record(AccessClass::ReadWalk, 500);
    y.record(AccessClass::WriteTlbHit, 9);
    x.merge(&y);
    assert_eq!(x.total_count(), 3);
    assert_eq!(x.class(AccessClass::ReadWalk).count(), 2);
    assert_eq!(x.class(AccessClass::WriteTlbHit).count(), 1);
}

#[test]
fn ring_sink_overflow_on_a_live_machine() {
    let sys = drive(IsolationScheme::Hpmp, RingSink::new(4), 8, 12);
    let ring = sys.machine.sink();
    assert_eq!(ring.len(), 4, "ring keeps only the most recent events");
    assert_eq!(ring.overwritten(), 8);
    let mut prev = None;
    for event in ring.events() {
        assert!(
            event.is_balanced(),
            "event #{}: cycles must be fully attributed",
            event.seq
        );
        if let Some(p) = prev {
            assert!(event.seq > p, "events stay in issue order");
        }
        prev = Some(event.seq);
    }
}

#[test]
fn tracing_is_deterministic_null_vs_jsonl() {
    // The same workload under the zero-cost sink and the JSONL sink must
    // produce byte-identical simulation results: tracing cannot perturb.
    let mut null_sys = drive(IsolationScheme::PmpTable, NullSink, 16, 48);
    let mut json_sys = drive(
        IsolationScheme::PmpTable,
        JsonlSink::new(Vec::new()),
        16,
        48,
    );

    assert_eq!(null_sys.machine.stats(), json_sys.machine.stats());
    assert_eq!(
        null_sys.machine.mem_stats().accesses,
        json_sys.machine.mem_stats().accesses
    );
    assert_eq!(
        null_sys.machine.metrics_snapshot().to_json(),
        json_sys.machine.metrics_snapshot().to_json()
    );

    let sink = json_sys.machine.into_sink();
    assert_eq!(sink.written(), 48, "one event per access");
    assert_eq!(sink.io_errors(), 0);
}

/// Every `key:<number>` occurrence in a JSON line, in order.
fn nums_after(line: &str, key: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find(key) {
        rest = &rest[pos + key.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        out.push(digits.parse().expect("number after key"));
    }
    out
}

#[test]
fn jsonl_step_cycles_sum_to_walk_totals() {
    let sys = drive(IsolationScheme::Hpmp, JsonlSink::new(Vec::new()), 16, 48);
    let total_cycles = sys.machine.stats().cycles;
    let text = String::from_utf8(sys.machine.into_sink().into_inner()).expect("utf8");

    let mut event_cycles_sum = 0;
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 49, "schema header + one line per event");
    assert!(
        lines[0].contains("\"schema\":1"),
        "stream opens with header"
    );
    for &line in &lines[1..] {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL object per line"
        );
        let pipeline = nums_after(line, "\"pipeline_cycles\":")[0];
        // The first bare "cycles" is the event total; the rest are steps.
        let cycles = nums_after(line, "\"cycles\":");
        let (total, steps) = cycles.split_first().expect("event has a cycle total");
        assert_eq!(
            pipeline + steps.iter().sum::<u64>(),
            *total,
            "per-walk step cycles must sum to the walk total: {line}"
        );
        event_cycles_sum += total;
    }
    assert_eq!(
        event_cycles_sum, total_cycles,
        "per-event totals must sum to the machine's cycle counter"
    );
}
