//! Security-property integration tests: the isolation guarantees the secure
//! monitor must enforce, checked end-to-end through the machine (not just
//! through data-structure state).

use hpmp_suite::core::PmpRegion;
use hpmp_suite::machine::{Fault, IsolationScheme, Machine, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PhysAddr, PrivMode, VirtAddr};
use hpmp_suite::penglai::{DomainId, GmsLabel, SecureMonitor, TeeFlavor};

const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

fn boot(flavor: TeeFlavor) -> (Machine, SecureMonitor) {
    let mut machine = Machine::new(MachineConfig::rocket());
    let monitor = SecureMonitor::boot(&mut machine, flavor, RAM).expect("monitor boots");
    (machine, monitor)
}

/// The monitor's own memory is inaccessible to S/U mode in every flavour,
/// while M-mode retains access.
#[test]
fn monitor_memory_protected() {
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        let (machine, monitor) = boot(flavor);
        let inside = PhysAddr::new(monitor.monitor_region().base.raw() + 0x1000);
        let mut cache = hpmp_suite::core::PmptwCache::disabled();
        let s_check = machine.regs().check(
            machine.phys(),
            &mut cache,
            inside,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(
            !s_check.allowed,
            "{flavor}: S-mode must not read monitor memory"
        );
        let m_check = machine.regs().check(
            machine.phys(),
            &mut cache,
            inside,
            AccessKind::Read,
            PrivMode::Machine,
        );
        assert!(m_check.allowed, "{flavor}: M-mode keeps access");
    }
}

/// An enclave's private memory is invisible to the host domain, and the
/// enclave cannot see host memory it was never granted.
#[test]
fn domains_are_mutually_isolated() {
    for flavor in [TeeFlavor::PenglaiPmpt, TeeFlavor::PenglaiHpmp] {
        let (mut machine, mut monitor) = boot(flavor);
        let (enclave, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .expect("create");
        let enclave_page = PhysAddr::new(monitor.regions_of(enclave).unwrap()[0].region.base.raw());
        let host_page = PhysAddr::new(
            monitor.regions_of(DomainId::HOST).unwrap()[0]
                .region
                .base
                .raw()
                + (64 << 20),
        );
        let mut cache = hpmp_suite::core::PmptwCache::disabled();

        // Host running: enclave page denied, host page allowed.
        monitor
            .switch_to(&mut machine, DomainId::HOST)
            .expect("switch host");
        let deny = machine.regs().check(
            machine.phys(),
            &mut cache,
            enclave_page,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(!deny.allowed, "{flavor}: host must not read enclave memory");
        let allow = machine.regs().check(
            machine.phys(),
            &mut cache,
            host_page,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(allow.allowed, "{flavor}: host reads its own memory");

        // Enclave running: its page allowed, the host page denied.
        monitor
            .switch_to(&mut machine, enclave)
            .expect("switch enclave");
        let allow = machine.regs().check(
            machine.phys(),
            &mut cache,
            enclave_page,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(allow.allowed, "{flavor}: enclave reads its own memory");
        let deny = machine.regs().check(
            machine.phys(),
            &mut cache,
            host_page,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(!deny.allowed, "{flavor}: enclave must not read host memory");
    }
}

/// Destroying an enclave returns its memory to the host — and only then.
#[test]
fn destroy_returns_memory() {
    let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
    let (enclave, _) = monitor
        .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
        .expect("create");
    let page = PhysAddr::new(monitor.regions_of(enclave).unwrap()[0].region.base.raw());
    let mut cache = hpmp_suite::core::PmptwCache::disabled();

    monitor
        .switch_to(&mut machine, DomainId::HOST)
        .expect("switch");
    assert!(
        !machine
            .regs()
            .check(
                machine.phys(),
                &mut cache,
                page,
                AccessKind::Read,
                PrivMode::Supervisor
            )
            .allowed
    );
    monitor
        .destroy_domain(&mut machine, enclave)
        .expect("destroy");
    monitor
        .switch_to(&mut machine, DomainId::HOST)
        .expect("switch");
    assert!(
        machine
            .regs()
            .check(
                machine.phys(),
                &mut cache,
                page,
                AccessKind::Read,
                PrivMode::Supervisor
            )
            .allowed
    );
}

/// Revoking a page in the permission table takes effect after the required
/// TLB flush — and, crucially, *not* before it, because permissions are
/// inlined in TLB entries (the paper's TLB-flush requirement, §5).
#[test]
fn revocation_requires_tlb_flush() {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::PmpTable).build();
    let va = VirtAddr::new(0x10_0000);
    let frame = sys.data_frames.alloc().expect("frame");
    sys.map_page_at(va, frame, Perms::RW);
    sys.sync_pt_grants();
    sys.machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .expect("initial access");

    // Revoke in the table, but do not flush: the stale TLB entry still
    // allows the access (this is why the monitor must fence).
    let table = sys.pmp_table.as_mut().expect("table scheme");
    table
        .set_page_perm(
            sys.machine.phys_mut(),
            &mut sys.table_frames,
            frame,
            Perms::NONE,
        )
        .expect("revoke");
    assert!(
        sys.machine
            .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
            .is_ok(),
        "stale TLB entry still grants until the fence"
    );

    // After the fence the revocation is enforced.
    sys.machine.sfence_vma_all();
    let err = sys
        .machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .unwrap_err();
    assert!(matches!(err, Fault::IsolationOnData(_)));
}

/// A walk through a PT page the domain does not own faults on the PT-page
/// check, before any data is touched.
#[test]
fn pt_page_checks_guard_the_walk() {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::PmpTable).build();
    let va = VirtAddr::new(0x10_0000);
    sys.map_range(va, 1, Perms::RW);
    // Deliberately do NOT grant the PT pages (skip sync_pt_grants for the
    // newly created intermediate tables).
    let pt_pages: Vec<PhysAddr> = sys.space.pt_pages().to_vec();
    let table = sys.pmp_table.as_mut().expect("table scheme");
    for page in &pt_pages[1..] {
        table
            .set_page_perm(
                sys.machine.phys_mut(),
                &mut sys.table_frames,
                *page,
                Perms::NONE,
            )
            .expect("revoke PT page");
    }
    sys.machine.sfence_vma_all();
    let err = sys
        .machine
        .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
        .unwrap_err();
    assert!(matches!(err, Fault::IsolationOnPtPage(_)));
}

/// PTE permissions and isolation permissions compose: either one alone
/// denies the access.
#[test]
fn pte_and_isolation_compose() {
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::Hpmp).build();
    let ro_va = VirtAddr::new(0x20_0000);
    sys.map_range(ro_va, 1, Perms::READ);
    sys.sync_pt_grants();
    // PTE denies the write even though the table grants RWX.
    let err = sys
        .machine
        .access(&sys.space, ro_va, AccessKind::Write, PrivMode::Supervisor)
        .unwrap_err();
    assert!(matches!(err, Fault::PtePermission(_)));
    // Read passes both layers.
    sys.machine
        .access(&sys.space, ro_va, AccessKind::Read, PrivMode::Supervisor)
        .expect("read allowed");
}

/// The PMP flavour's scalability wall is a *failure*, not silent
/// misbehaviour: creation reports OutOfPmpEntries and existing domains
/// remain intact.
#[test]
fn pmp_wall_fails_safely() {
    let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmp);
    let mut created = Vec::new();
    loop {
        match monitor.create_domain(&mut machine, 1 << 20, GmsLabel::Slow) {
            Ok((id, _)) => created.push(id),
            Err(hpmp_suite::penglai::MonitorError::OutOfPmpEntries) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
        assert!(created.len() < 32);
    }
    // All previously created enclaves still switch fine.
    for id in created {
        monitor
            .switch_to(&mut machine, id)
            .expect("switch to surviving enclave");
    }
}
