//! Cross-feature composition: the extensions (hints, DMA, SDK calls,
//! relabelling) interact with the base system on one live stack, in
//! sequence — the "does it all still hold together" test a downstream
//! adopter runs first.

use hpmp_suite::core::DeviceId;
use hpmp_suite::memsim::{AccessKind, CoreKind, VirtAddr, PAGE_SIZE};
use hpmp_suite::penglai::{EnclaveSdk, GmsLabel, TeeFlavor, USER_HEAP_BASE};
use hpmp_suite::workloads::TeeBench;

#[test]
fn full_feature_walkthrough() {
    let mut tee = TeeBench::boot(TeeFlavor::PenglaiHpmp, CoreKind::Rocket);
    let domain = tee.domain;

    // 1. Run a process with demand-paged heap.
    let (pid, _) = tee.os.spawn(&mut tee.machine, 4).expect("spawn");
    let heap = tee.os.mmap_lazy(pid, 16).expect("lazy mmap");
    for i in 0..16u64 {
        tee.os
            .user_access_faulting(
                &mut tee.machine,
                pid,
                VirtAddr::new(heap.raw() + i * PAGE_SIZE),
                AccessKind::Write,
            )
            .expect("demand fault");
    }

    // 2. Mark the hot half with a hint; verify the fast path engages.
    let (hint, _) = tee
        .os
        .ioctl_hint_create(&mut tee.machine, &mut tee.monitor, domain, pid, heap, 8)
        .expect("hint");
    tee.machine.flush_microarch();
    tee.machine.reset_stats();
    tee.os
        .user_access_faulting(&mut tee.machine, pid, heap, AccessKind::Read)
        .expect("hot access");
    assert_eq!(
        tee.machine.stats().refs.pmpte_for_data,
        0,
        "hinted page is segment-backed"
    );

    // 3. Assign a device and DMA into the domain's data region.
    let nic = DeviceId(1);
    tee.monitor
        .assign_device(&mut tee.machine, nic, domain)
        .expect("assign");
    let data_gms = tee.monitor.regions_of(domain).expect("regions")[1].region;
    tee.machine
        .dma_transfer(
            tee.monitor.iopmp(),
            nic,
            data_gms.base,
            4096,
            AccessKind::Write,
        )
        .expect("DMA into own domain");

    // 4. Create a second enclave; ecall into it while the first keeps its
    //    memory private.
    let (peer, _) = tee
        .monitor
        .create_domain(&mut tee.machine, 1 << 20, GmsLabel::Slow)
        .expect("peer enclave");
    let mut sdk = EnclaveSdk::bind(&mut tee.machine, &mut tee.monitor, peer).expect("bind");
    let cycles = sdk
        .ecall(&mut tee.machine, &mut tee.monitor, 256, 2_000, 128)
        .expect("ecall");
    assert!(cycles > 2_000);
    // The ecall hands control back to the *host*; our OS lives inside the
    // first enclave domain, so schedule it back in before touching it.
    tee.monitor
        .switch_to(&mut tee.machine, domain)
        .expect("switch back to OS domain");
    // The DMA device does not follow into the peer.
    let peer_page = tee.monitor.regions_of(peer).expect("regions")[0]
        .region
        .base;
    assert!(
        tee.machine
            .dma_transfer(tee.monitor.iopmp(), nic, peer_page, 64, AccessKind::Read)
            .is_err(),
        "device must not reach the peer enclave"
    );

    // 5. Tear down: drop the hint, the device and the process. Ordinary
    //    work still runs afterwards.
    tee.os
        .ioctl_hint_delete(&mut tee.machine, &mut tee.monitor, domain, hint)
        .expect("hint delete");
    tee.monitor.revoke_device(&mut tee.machine, nic);
    tee.os
        .munmap(&mut tee.machine, pid, heap, 16)
        .expect("munmap");
    tee.os.exit(&mut tee.machine, pid).expect("exit");

    let (pid2, _) = tee.os.spawn(&mut tee.machine, 2).expect("respawn");
    tee.os.mmap(&mut tee.machine, pid2, 2).expect("mmap");
    tee.os
        .user_access(
            &mut tee.machine,
            pid2,
            VirtAddr::new(USER_HEAP_BASE),
            AccessKind::Write,
        )
        .expect("fresh process works after teardown");
}

/// The same walkthrough degrades gracefully on the non-HPMP flavours: the
/// hint is rejected, everything else works.
#[test]
fn walkthrough_on_baseline_flavours() {
    for flavor in [TeeFlavor::PenglaiPmp, TeeFlavor::PenglaiPmpt] {
        let mut tee = TeeBench::boot(flavor, CoreKind::Rocket);
        let domain = tee.domain;
        let (pid, _) = tee.os.spawn(&mut tee.machine, 2).expect("spawn");
        let heap = tee.os.mmap_lazy(pid, 4).expect("lazy");
        tee.os
            .user_access_faulting(&mut tee.machine, pid, heap, AccessKind::Write)
            .expect("demand fault");
        assert!(
            tee.os
                .ioctl_hint_create(&mut tee.machine, &mut tee.monitor, domain, pid, heap, 4)
                .is_err(),
            "{flavor}: hints are HPMP-only"
        );
        let nic = DeviceId(2);
        tee.monitor
            .assign_device(&mut tee.machine, nic, domain)
            .expect("assign");
        let gms = tee.monitor.regions_of(domain).expect("regions")[1].region;
        tee.machine
            .dma_transfer(tee.monitor.iopmp(), nic, gms.base, 128, AccessKind::Read)
            .unwrap_or_else(|e| panic!("{flavor}: DMA failed: {e}"));
    }
}
