//! Time-resolved telemetry conformance: the timeline and span artifacts
//! of a fixed-seed multi-hart run must be (1) lossless — slice deltas
//! re-sum to the end-of-run snapshot byte-for-byte, histogram buckets
//! included; (2) deterministic — two identical runs produce identical
//! bytes; and (3) explanatory — the causally linked receiver-side spans
//! attribute at least 95% of the sender shootdown-stall cycles the
//! counters charged.

use hpmp_suite::analyze::analyze_timeline;
use hpmp_suite::machine::{Machine, MachineConfig};
use hpmp_suite::penglai::TeeFlavor;
use hpmp_suite::trace::{SpanStream, Timeline};
use hpmp_suite::workloads::smp::{run_smp_telemetry, spec_for, SmpTelemetry, SmpTelemetrySpec};

const SEED: u64 = 0x4850_4d50;
const HARTS: usize = 4;
const INTERVAL: u64 = 40_000;

fn run_traced() -> (hpmp_suite::trace::Snapshot, SmpTelemetry) {
    let machines = (0..HARTS)
        .map(|_| Machine::new(MachineConfig::rocket()))
        .collect();
    let spec = spec_for("tenancy").expect("tenancy has an SMP shape");
    let telemetry_spec = SmpTelemetrySpec {
        snapshot_interval: Some(INTERVAL),
        span_capacity: Some(SmpTelemetrySpec::DEFAULT_SPAN_CAPACITY),
    };
    let (_, snapshot, _, telemetry) =
        run_smp_telemetry(machines, TeeFlavor::PenglaiHpmp, SEED, spec, telemetry_spec)
            .expect("SMP workload");
    (snapshot, telemetry)
}

/// Serialize both artifacts exactly as the bench binaries do.
fn artifact_bytes(telemetry: &SmpTelemetry) -> (Vec<u8>, Vec<u8>) {
    let mut timeline = Vec::new();
    telemetry
        .timeline
        .as_ref()
        .expect("interval requested")
        .write_jsonl(&mut timeline)
        .expect("Vec writes cannot fail");
    let mut spans = Vec::new();
    telemetry
        .spans
        .as_ref()
        .expect("capacity requested")
        .write_jsonl(&mut spans)
        .expect("Vec writes cannot fail");
    (timeline, spans)
}

/// Slice deltas re-summed through the full serialize/parse round trip
/// must reproduce the final `--metrics-out` snapshot byte-for-byte —
/// including the `latency.*.bucket.*` histogram counters, so percentile
/// queries over the re-sum answer exactly as over the original.
#[test]
fn slices_resum_to_the_final_snapshot_byte_for_byte() {
    let (snapshot, telemetry) = run_traced();
    let (timeline_bytes, _) = artifact_bytes(&telemetry);
    let timeline = Timeline::parse(timeline_bytes.as_slice()).expect("parses");
    timeline.verify().expect("well-formed");
    assert!(timeline.slices.len() > 1, "run spans several slices");
    assert_eq!(
        timeline.resum().to_json_versioned(),
        snapshot.to_json_versioned(),
        "re-summed slices must equal the end-of-run snapshot byte-for-byte"
    );
    // The buckets really made the trip: the re-sum carries per-hart
    // histogram counters, not just totals.
    assert!(
        timeline
            .resum()
            .iter()
            .any(|(key, v)| key.contains(".latency.") && key.contains(".bucket.") && v > 0),
        "histogram buckets must survive slicing"
    );
}

/// Two identical runs emit byte-identical artifacts: boundaries live on
/// the simulated clock and span ids on a deterministic counter, so there
/// is nothing wall-clock or thread-schedule dependent to leak in.
#[test]
fn artifacts_are_deterministic_across_runs() {
    let (_, a) = run_traced();
    let (_, b) = run_traced();
    assert_eq!(artifact_bytes(&a), artifact_bytes(&b));
}

/// The acceptance bar: named receiver-side child spans must explain at
/// least 95% of the sender shootdown-stall cycles the counters charged.
/// (The span model makes this exact — the sender stalls for precisely the
/// slowest receiver's delivery — so anything below 100% here means a
/// delivery went untracked.)
#[test]
fn spans_attribute_the_shootdown_stall() {
    let (snapshot, telemetry) = run_traced();
    let (timeline_bytes, span_bytes) = artifact_bytes(&telemetry);
    let timeline = Timeline::parse(timeline_bytes.as_slice()).expect("parses");
    let spans = SpanStream::parse(span_bytes.as_slice()).expect("parses");
    let analysis = analyze_timeline(&timeline, Some(&spans), Some(&snapshot));
    assert!(
        analysis.violations.is_empty(),
        "structural violations: {:?}",
        analysis.violations
    );
    let attribution = analysis.attribution.as_ref().expect("spans were given");
    assert!(
        attribution.stall_cycles > 0,
        "the tenancy shape must actually stall"
    );
    assert!(
        attribution.pct() >= 95.0,
        "spans explain {:.2}% of {} stall cycles (need >= 95%)",
        attribution.pct(),
        attribution.stall_cycles
    );
    assert!(analysis.passed(95.0));
}
