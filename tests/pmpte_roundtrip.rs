//! Pmpte encode/decode round-trip properties, randomized over the in-repo
//! [`SplitMix64`] PRNG: every *legal* `RootPmpte`/`LeafPmpte` encoding
//! must survive encode → decode as the identity, and every *illegal* word
//! must be rejected fail-closed — decode returns a typed error and
//! `from_bits(..).is_malformed()` agrees, so a flipped bit can never be
//! silently reinterpreted as a different grant.
//!
//! These are the properties behind the `pmpte_decode` differential fuzz
//! target; the committed seed corpus in `fuzz/corpus/pmpte_decode/` is
//! checked through the same body at the end, so the corpus can't rot.

use hpmp_suite::core::{LeafPmpte, MalformedPmpte, RootPmpte};
use hpmp_suite::memsim::{Perms, PhysAddr, SplitMix64};
use hpmp_suite::modelcheck::fuzz::fuzz_pmpte_decode;

/// Bits 4–12 and 49–62 of a root pmpte are reserved-zero (Figure 6-c).
const ROOT_RESERVED: u64 = (0x1ff << 4) | (0x3fff << 49);

fn random_perms(rng: &mut SplitMix64) -> Perms {
    Perms::from_bits_truncate(rng.gen_range(0..8) as u8)
}

/// A random legal root pmpte: invalid, a pointer to a random page-aligned
/// leaf table, or a huge grant with a random non-empty permission set.
fn random_legal_root(rng: &mut SplitMix64) -> RootPmpte {
    match rng.gen_range(0..3) {
        0 => RootPmpte::INVALID,
        1 => RootPmpte::pointer(PhysAddr::new(rng.gen_range(0..1 << 48) & !0xfff)),
        _ => RootPmpte::huge(Perms::from_bits_truncate(rng.gen_range(1..8) as u8)),
    }
}

/// A random legal leaf pmpte: a splat refined by a handful of per-page
/// rewrites.
fn random_legal_leaf(rng: &mut SplitMix64) -> LeafPmpte {
    let mut leaf = LeafPmpte::splat(random_perms(rng));
    for _ in 0..rng.gen_range(0..6) {
        let page = rng.gen_range(0..16) as usize;
        leaf = leaf.with_perm(page, random_perms(rng));
    }
    leaf
}

#[test]
fn legal_root_pmptes_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x0071_f00d);
    for _ in 0..2000 {
        let entry = random_legal_root(&mut rng);
        let bits = entry.to_bits();
        assert_eq!(bits & ROOT_RESERVED, 0, "encoder set reserved bits");
        assert_eq!(bits.count_ones() % 2, 0, "encoder broke word parity");
        let back = RootPmpte::decode(bits)
            .unwrap_or_else(|e| panic!("legal encoding {bits:#018x} rejected: {e:?}"));
        assert_eq!(back, entry, "decode is not the inverse of encode");
        assert!(!back.is_malformed());
        assert_eq!(back.is_valid(), entry.is_valid());
        assert_eq!(back.is_pointer(), entry.is_pointer());
        assert_eq!(back.is_huge(), entry.is_huge());
    }
}

#[test]
fn legal_leaf_pmptes_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x1eaf_f00d);
    for _ in 0..2000 {
        let entry = random_legal_leaf(&mut rng);
        let bits = entry.to_bits();
        let back = LeafPmpte::decode(bits)
            .unwrap_or_else(|e| panic!("legal encoding {bits:#018x} rejected: {e:?}"));
        assert_eq!(back, entry, "decode is not the inverse of encode");
        assert!(!back.is_malformed());
        for page in 0..16 {
            assert_eq!(back.perm(page), entry.perm(page));
        }
    }
}

/// Reserved bits reject with the reserved-bits error specifically, before
/// the parity check can mask the cause.
#[test]
fn reserved_root_bits_reject_first() {
    let mut rng = SplitMix64::seed_from_u64(0x4e5e_4ed0);
    for _ in 0..2000 {
        let bits = random_legal_root(&mut rng).to_bits();
        let reserved_bit = loop {
            let b = rng.gen_range(0..64) as u32;
            if ROOT_RESERVED & (1 << b) != 0 {
                break b;
            }
        };
        let bad = bits | (1 << reserved_bit);
        assert_eq!(
            RootPmpte::decode(bad),
            Err(MalformedPmpte::ReservedBits(bad)),
            "reserved bit {reserved_bit} not rejected as reserved"
        );
        assert!(RootPmpte::from_bits(bad).is_malformed());
    }
}

/// Any single-bit flip of a non-reserved bit breaks the whole-word parity
/// and must be rejected — this is the fault class `FaultClass::PmpteFlip`
/// injects and the scrubber catches.
#[test]
fn single_bit_flips_of_legal_roots_reject() {
    let mut rng = SplitMix64::seed_from_u64(0xf11b_0075);
    for _ in 0..2000 {
        let bits = random_legal_root(&mut rng).to_bits();
        let flip = loop {
            let b = rng.gen_range(0..64) as u32;
            if ROOT_RESERVED & (1 << b) == 0 {
                break b;
            }
        };
        let bad = bits ^ (1 << flip);
        assert_eq!(
            RootPmpte::decode(bad),
            Err(MalformedPmpte::ParityMismatch(bad)),
            "flipped bit {flip} slipped through decode"
        );
        assert!(RootPmpte::from_bits(bad).is_malformed());
    }
}

/// Leaf nibbles carry their own parity bit, so any single-bit flip is
/// caught per-nibble.
#[test]
fn single_bit_flips_of_legal_leaves_reject() {
    let mut rng = SplitMix64::seed_from_u64(0xf11b_1eaf);
    for _ in 0..2000 {
        let bits = random_legal_leaf(&mut rng).to_bits();
        let bad = bits ^ (1 << rng.gen_range(0..64));
        assert!(
            LeafPmpte::decode(bad).is_err(),
            "flipped leaf {bad:#018x} slipped through decode"
        );
        assert!(LeafPmpte::from_bits(bad).is_malformed());
    }
}

/// The committed fuzz seeds stay honest: every file in the corpus runs
/// through the same differential body the fuzz target wraps.
#[test]
fn committed_fuzz_corpus_passes_the_differential_body() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus/pmpte_decode");
    let mut seeds = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir is committed") {
        let path = entry.expect("corpus entry").path();
        if path.is_file() {
            fuzz_pmpte_decode(&std::fs::read(&path).expect("corpus seed reads"));
            seeds += 1;
        }
    }
    assert!(seeds >= 4, "corpus shrank to {seeds} seeds");
}
