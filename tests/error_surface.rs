//! Error-surface hygiene: every public error type renders a meaningful,
//! lowercase-ish message, implements `std::error::Error`, and is `Send +
//! Sync` (the API-guideline requirements that make the crates usable with
//! `?` and error-handling libraries).

use hpmp_suite::core::{HpmpError, TableError};
use hpmp_suite::machine::Fault;
use hpmp_suite::memsim::{PhysAddr, VirtAddr};
use hpmp_suite::paging::MapError;
use hpmp_suite::penglai::{
    AttestError, CallError, DomainId, HintId, IntegrityError, IpcError, MonitorError, OsError, Pid,
};

fn assert_error<E: std::error::Error + Send + Sync + 'static>(e: E) {
    let msg = e.to_string();
    assert!(!msg.is_empty(), "{e:?} renders empty");
    assert!(!msg.ends_with('.'), "{msg:?} has trailing punctuation");
    let debug = format!("{e:?}");
    assert!(!debug.is_empty());
}

#[test]
fn all_public_errors_behave() {
    let pa = PhysAddr::new(0x8000_0000);
    let va = VirtAddr::new(0x1000);

    assert_error(MapError::NonCanonical(va));
    assert_error(MapError::OutOfPtFrames);
    assert_error(MapError::AlreadyMapped(va));
    assert_error(MapError::HugePageConflict(va));
    assert_error(MapError::Misaligned(va));

    assert_error(HpmpError::BadIndex(20));
    assert_error(HpmpError::LastEntryTableMode);
    assert_error(HpmpError::Locked(3));
    assert_error(HpmpError::BadRegion);
    assert_error(HpmpError::RegionTooLarge);
    assert_error(HpmpError::PointerSlotBusy(4));

    assert_error(TableError::OutOfReach(1 << 40));
    assert_error(TableError::OutOfTableFrames);
    assert_error(TableError::Misaligned(pa));
    assert_error(TableError::OutsideRegion(pa));

    assert_error(Fault::PageFault(va));
    assert_error(Fault::PtePermission(va));
    assert_error(Fault::IsolationOnPtPage(pa));
    assert_error(Fault::IsolationOnData(pa));

    assert_error(MonitorError::OutOfPmpEntries);
    assert_error(MonitorError::OutOfMemory);
    assert_error(MonitorError::NoSuchDomain(DomainId(9)));
    assert_error(MonitorError::NotOwned);

    assert_error(OsError::NoSuchProcess(Pid(1)));
    assert_error(OsError::OutOfMemory);
    assert_error(OsError::Map(MapError::OutOfPtFrames));
    assert_error(OsError::Access(Fault::PageFault(va)));
    assert_error(OsError::BadHintRange(va));
    assert_error(OsError::NoSuchHint(HintId(2)));

    assert_error(IntegrityError::TamperDetected(pa));
    assert_error(IntegrityError::OutOfRange(pa));
    assert_error(IntegrityError::NotMounted(pa));

    assert_error(AttestError::BadTag);
    assert_error(AttestError::MeasurementMismatch);
    assert_error(AttestError::UnknownDomain(DomainId(3)));

    assert_error(IpcError::Busy);
    assert_error(IpcError::Empty);
    assert_error(IpcError::TooLarge(9000));
    assert_error(IpcError::NotEndpoint(DomainId(4)));

    assert_error(CallError::NoSuchEnclave(DomainId(5)));
    assert_error(CallError::ArgsTooLarge(9000));
}

#[test]
fn error_conversions_compose() {
    // `?`-operator chains across layers.
    fn os_level() -> Result<(), OsError> {
        Err(MapError::OutOfPtFrames)?
    }
    assert!(matches!(
        os_level(),
        Err(OsError::Map(MapError::OutOfPtFrames))
    ));

    fn ipc_level() -> Result<(), IpcError> {
        Err(MonitorError::OutOfMemory)?
    }
    assert!(matches!(
        ipc_level(),
        Err(IpcError::Monitor(MonitorError::OutOfMemory))
    ));

    fn call_level() -> Result<(), CallError> {
        Err(IpcError::Busy)?
    }
    assert!(matches!(call_level(), Err(CallError::Ipc(IpcError::Busy))));
}
