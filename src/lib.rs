//! # hpmp-suite
//!
//! Facade crate for the HPMP (MICRO '23) reproduction. Re-exports the
//! workspace crates under stable module names so examples and integration
//! tests can use a single dependency.

#![warn(missing_docs)]

pub use hpmp_analyze as analyze;
pub use hpmp_core as core;
pub use hpmp_machine as machine;
pub use hpmp_memsim as memsim;
pub use hpmp_modelcheck as modelcheck;
pub use hpmp_paging as paging;
pub use hpmp_penglai as penglai;
pub use hpmp_trace as trace;
pub use hpmp_workloads as workloads;
