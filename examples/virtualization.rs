//! The virtualized 3-D page walk (§6, Figures 8 and 13): a guest access
//! crosses guest PT × nested PT × permission table. This example walks one
//! guest load under the four schemes and prints the reference breakdown —
//! 16 → 48 references under a permission table, cut to 24 by HPMP
//! (contiguous NPT pages behind a segment) and to 18 by HPMP-GPT (the guest
//! keeps its PT pages contiguous too).
//!
//! Run with: `cargo run --example virtualization`

use hpmp_suite::machine::{MachineConfig, VirtMachine, VirtScheme};
use hpmp_suite::memsim::{AccessKind, VirtAddr};

fn main() {
    println!("One cold guest `ld` (hlv.d) through the two-stage walk (Rocket)\n");
    println!(
        "{:<10}{:>6}{:>6}{:>6}{:>12}{:>12}{:>12}{:>8}{:>10}",
        "scheme",
        "nPT",
        "gPT",
        "data",
        "pmpte(nPT)",
        "pmpte(gPT)",
        "pmpte(data)",
        "total",
        "cycles"
    );

    for scheme in [
        VirtScheme::Pmp,
        VirtScheme::PmpTable,
        VirtScheme::Hpmp,
        VirtScheme::HpmpGpt,
    ] {
        let mut machine = VirtMachine::new(MachineConfig::rocket(), scheme, 8);
        machine.flush_microarch();
        let out = machine
            .access(VirtAddr::new(0x20_0000), AccessKind::Read)
            .expect("guest page is mapped");
        println!(
            "{:<10}{:>6}{:>6}{:>6}{:>12}{:>12}{:>12}{:>8}{:>10}",
            scheme.to_string(),
            out.refs.npt_reads,
            out.refs.gpt_reads,
            out.refs.data_reads,
            out.refs.pmpte_for_npt,
            out.refs.pmpte_for_gpt,
            out.refs.pmpte_for_data,
            out.refs.total(),
            out.cycles,
        );
    }

    println!("\nThe hypervisor allocates NPT pages in one contiguous region and backs");
    println!("it with a segment (HPMP); if the guest cooperates, its own PT pages get");
    println!("the same treatment (HPMP-GPT) and only the two data-page permission");
    println!("references remain. Run `repro fig13` for the warm/fenced cases.");
}
