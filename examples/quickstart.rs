//! Quickstart: build a system under each isolation scheme and watch the
//! paper's headline numbers fall out — 4 vs 12 vs 6 memory references for a
//! TLB-missing load under PMP, PMP Table, and HPMP (Figures 2 and 4).
//!
//! Run with: `cargo run --example quickstart`

use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr};

fn main() {
    println!("HPMP quickstart: one TLB-missing `ld` under each isolation scheme\n");

    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        // A RocketCore-like SoC with the scheme programmed into the HPMP
        // register file (PMP = all segment entries, PMP Table = one
        // table-mode entry, HPMP = segment over the PT pool + table).
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme).build();

        // Map one page of user memory and grant it in the permission table.
        let va = VirtAddr::new(0x10_0000);
        sys.map_range(va, 1, Perms::RW);
        sys.sync_pt_grants();

        // Cold state: empty caches, TLB, walk caches (the paper's TC1).
        sys.machine.flush_microarch();

        let out = sys
            .machine
            .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
            .expect("the mapping was just created");

        println!("{scheme}:");
        println!("  page-table reads        : {}", out.refs.pt_reads);
        println!("  pmpte reads (PT pages)  : {}", out.refs.pmpte_for_pt);
        println!("  pmpte reads (data page) : {}", out.refs.pmpte_for_data);
        println!("  data reads              : {}", out.refs.data_reads);
        println!("  total memory references : {}", out.refs.total());
        println!("  latency                 : {} cycles", out.cycles);

        // The same numbers via the unified metrics registry: one snapshot
        // of every counter the machine keeps, addressable by dotted name.
        let snap = sys.machine.metrics_snapshot();
        println!(
            "  snapshot                : {} walks, {} refs, {} cycles, \
                  tlb miss rate {:.0}%\n",
            snap.value("machine.walks"),
            snap.value("machine.mem.accesses"),
            snap.value("machine.cycles"),
            100.0 * snap.value("machine.dtlb.misses") as f64
                / snap.value("machine.dtlb.lookups").max(1) as f64
        );
    }

    println!("A second access hits the TLB (permissions inlined), so every");
    println!("scheme costs the same — run `repro fig10` for the full table.");
}
