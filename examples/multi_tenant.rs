//! The scalability motivation from the paper's introduction: serverless
//! nodes run 100+ isolated instances, but segment-based isolation tops out
//! below 16 domains. This example packs tenants onto one node under each
//! Penglai flavour and reports where each stops and what a request costs.
//!
//! Run with: `cargo run --release --example multi_tenant`

use hpmp_suite::memsim::CoreKind;
use hpmp_suite::penglai::TeeFlavor;
use hpmp_suite::workloads::multi_tenant::run_tenancy;

fn main() {
    println!("Packing 100 tenant enclaves onto one node (Rocket)\n");
    println!(
        "{:<16}{:>10}{:>16}{:>22}",
        "flavour", "tenants", "entry wall?", "cycles per request"
    );

    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        let out = run_tenancy(flavor, CoreKind::Rocket, 100, 2).expect("tenancy run");
        println!(
            "{:<16}{:>10}{:>16}{:>22.0}",
            flavor.to_string(),
            out.tenants,
            if out.hit_entry_wall { "yes" } else { "no" },
            out.cycles_per_request(),
        );
    }

    println!("\nPenglai-PMP stops at the PMP entry wall (<16 domains, §2.2); the");
    println!("table-backed flavours reach 100 tenants with flat per-request cost —");
    println!("domain switching only re-points one table entry (§8.7, Figure 14-a).");
}
