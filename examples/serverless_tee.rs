//! Serverless functions inside a Penglai enclave: the paper's motivating
//! workload. Boots the full stack (secure monitor → enclave domain →
//! simulated OS) under each TEE flavour and invokes a FunctionBench-style
//! function cold, showing how the permission table taxes short-lived
//! functions and how Penglai-HPMP recovers the loss.
//!
//! Run with: `cargo run --release --example serverless_tee`

use hpmp_suite::memsim::CoreKind;
use hpmp_suite::penglai::TeeFlavor;
use hpmp_suite::workloads::serverless::{invoke, Function, FUNCTIONS};
use hpmp_suite::workloads::TeeBench;

fn main() {
    println!("Cold serverless invocations under the three Penglai flavours (Rocket)\n");

    let flavors = [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ];

    println!(
        "{:<12}{:>14}{:>14}{:>14}",
        "function", "PL-PMP", "PL-PMPT", "PL-HPMP"
    );
    for function in FUNCTIONS {
        // Fresh stack per cell so every flavour sees the same cold state;
        // normalise the row to its own Penglai-PMP cell.
        let cells: Vec<u64> = flavors
            .iter()
            .map(|&flavor| {
                let mut tee = TeeBench::boot(flavor, CoreKind::Rocket);
                invoke(&mut tee, function, 1).expect("invocation")
            })
            .collect();
        print!("{:<12}", function.to_string());
        for &cycles in &cells {
            print!("{:>13.1}%", cycles as f64 * 100.0 / cells[0] as f64);
        }
        println!();
    }

    // Zoom in on one function and break down where the cycles go.
    println!("\nBreakdown for one cold {} invocation:", Function::Dd);
    for flavor in flavors {
        let mut tee = TeeBench::boot(flavor, CoreKind::Rocket);
        tee.machine.reset_stats();
        let cycles = invoke(&mut tee, Function::Dd, 1).expect("invocation");
        let stats = tee.machine.stats();
        println!(
            "  {flavor:<14} {cycles:>9} cycles | {:>6} walks | pmpte refs: {} (PT) + {} (data)",
            stats.walks, stats.refs.pmpte_for_pt, stats.refs.pmpte_for_data,
        );
    }
    println!("\nUnder HPMP the PT-page pmpte count is zero: page-table pages live in");
    println!("the contiguous fast GMS and are checked by a segment register instead.");
}
