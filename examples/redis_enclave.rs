//! A long-running in-memory data store inside an enclave (§8.5): starts a
//! Redis-like server with a resident dataset under each TEE flavour and
//! measures requests-per-second for a few commands, reproducing the shape of
//! Figure 12-d/e — the permission table costs double-digit RPS on
//! pointer-chasing commands, and Penglai-HPMP recovers most of it.
//!
//! Run with: `cargo run --release --example redis_enclave`

use hpmp_suite::memsim::CoreKind;
use hpmp_suite::penglai::TeeFlavor;
use hpmp_suite::workloads::redis::{RedisCommand, RedisServer, DEFAULT_DATASET_PAGES};

fn main() {
    println!("Redis RPS inside a Penglai enclave (Rocket, 32 MiB resident dataset)\n");

    let commands = [
        RedisCommand::PingInline,
        RedisCommand::Set,
        RedisCommand::Get,
        RedisCommand::Lrange100,
        RedisCommand::Lrange600,
        RedisCommand::Mset,
    ];
    let flavors = [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ];

    // One resident server per flavour, as in the paper's methodology.
    let mut servers: Vec<RedisServer> = flavors
        .iter()
        .map(|&flavor| {
            RedisServer::start(flavor, CoreKind::Rocket, DEFAULT_DATASET_PAGES)
                .expect("server boot")
        })
        .collect();

    println!(
        "{:<14}{:>14}{:>14}{:>14}{:>10}",
        "command", "PL-PMP", "PL-PMPT", "PL-HPMP", "PMPT loss"
    );
    for cmd in commands {
        let rps: Vec<f64> = servers
            .iter_mut()
            .map(|server| server.rps(cmd, 300).expect("requests served"))
            .collect();
        println!(
            "{:<14}{:>11.0}/s{:>11.0}/s{:>11.0}/s{:>9.1}%",
            cmd.to_string(),
            rps[0],
            rps[1],
            rps[2],
            (1.0 - rps[1] / rps[0]) * 100.0,
        );
    }

    println!("\nPING barely moves (no keyspace traffic); LRANGE suffers most —");
    println!("every list node is a fresh random page, so each request TLB-misses");
    println!("hundreds of times and pays the permission table on every miss.");
}
