//! The trust-establishment flow around HPMP: the monitor measures an
//! enclave at creation, a remote party verifies the attestation report, the
//! mountable Merkle tree guards the enclave against physical tampering at
//! run time, and two enclaves exchange a message over monitor-mediated IPC.
//!
//! Run with: `cargo run --example attestation_flow`

use hpmp_suite::core::PmpRegion;
use hpmp_suite::machine::{Machine, MachineConfig};
use hpmp_suite::memsim::{PhysAddr, PAGE_SIZE};
use hpmp_suite::penglai::{Attestor, GmsLabel, IpcTable, MerkleTree, SecureMonitor, TeeFlavor};

fn main() {
    let mut machine = Machine::new(MachineConfig::rocket());
    let ram = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);
    let mut monitor =
        SecureMonitor::boot(&mut machine, TeeFlavor::PenglaiHpmp, ram).expect("monitor boots");
    let mut attestor = Attestor::new(0x0e11_fa11_ba5e_ba11); // device key from secure boot

    // 1. Deploy two enclaves and load some "code" into the first.
    let (alice, _) = monitor
        .create_domain(&mut machine, 64 * 1024, GmsLabel::Slow)
        .expect("alice");
    let (bob, _) = monitor
        .create_domain(&mut machine, 64 * 1024, GmsLabel::Slow)
        .expect("bob");
    let alice_base = monitor.regions_of(alice).expect("regions")[0].region.base;
    for i in 0..8u64 {
        machine
            .phys_mut()
            .write_u64(alice_base + i * 8, 0x1337_0000 + i);
    }

    // 2. Measure and attest.
    let (measurement, cycles) = attestor
        .measure(&machine, &monitor, alice)
        .expect("measure");
    println!("measured {alice_base:?}-owner enclave: {measurement:#018x} ({cycles} cycles)");
    let report = attestor.attest(alice).expect("attest");
    println!(
        "report: domain={} nonce={} tag={:#018x}",
        report.domain, report.nonce, report.tag
    );
    attestor.verify(&report).expect("genuine report");
    println!("verification: OK");

    let mut forged = report;
    forged.measurement ^= 0xff;
    println!(
        "forged report rejected: {:?}",
        attestor.verify(&forged).unwrap_err()
    );

    // 3. Run-time integrity: build a Merkle tree over the enclave, then
    //    simulate a physical attacker flipping a bit behind the CPU's back.
    let mut tree = MerkleTree::build(machine.phys(), alice_base, 16);
    tree.mount(machine.phys(), alice_base).expect("mount");
    tree.verify_page(machine.phys(), alice_base).expect("clean");
    println!(
        "merkle root: {:#018x} ({} bytes resident metadata)",
        tree.root(),
        tree.resident_metadata_bytes()
    );
    machine.phys_mut().write_u64(alice_base + 0x40, 0xbad);
    println!(
        "after physical tamper: {:?}",
        tree.verify_page(machine.phys(), alice_base).unwrap_err()
    );

    // 4. Inter-enclave IPC through the monitor.
    let mut ipc = IpcTable::new();
    let (channel, _) = ipc
        .create(&mut machine, &mut monitor, alice, bob)
        .expect("channel");
    let send = ipc.send(&mut machine, channel, alice, 512).expect("send");
    let (bytes, recv) = ipc.recv(&mut machine, channel, bob).expect("recv");
    println!("IPC: {bytes} bytes alice->bob ({send} + {recv} cycles)");
    let _ = PAGE_SIZE;
}
