//! Walk tracing: reconstructs the paper's Figure 2/Figure 4 diagrams from a
//! live machine — every memory reference of one TLB-missing load, in order,
//! labelled the way the paper draws its squares and circles.
//!
//! Run with: `cargo run --example walk_trace`

use hpmp_suite::core::PmptwCache;
use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr};
use hpmp_suite::paging::{walk, WalkCache, WalkCacheConfig};

fn main() {
    let va = VirtAddr::new(0x10_0000);
    for scheme in [IsolationScheme::Pmp, IsolationScheme::PmpTable, IsolationScheme::Hpmp] {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme).build();
        sys.map_range(va, 1, Perms::RW);
        sys.sync_pt_grants();

        println!("--- {scheme}: one TLB-missing ld at {va} ---");
        let mut step = 0;
        let mut pwc = WalkCache::new(WalkCacheConfig { entries: 0, hit_latency: 1 });
        let result = walk(sys.machine.phys(), &sys.space, &mut pwc, va);
        let mut cache = PmptwCache::disabled();

        for pt_ref in &result.pt_refs {
            // The PT-page reference is validated first…
            let check = sys.machine.regs().check(
                sys.machine.phys(), &mut cache, pt_ref.addr, AccessKind::Read,
                PrivMode::Supervisor,
            );
            for r in &check.refs {
                step += 1;
                let kind = if r.is_root { "root pmpte" } else { "leaf pmpte" };
                println!("  {step:>2}. [{kind:<10}] {}", r.addr);
            }
            if check.refs.is_empty() {
                println!("      (segment check for L{} PTE — no memory reference)",
                         pt_ref.level);
            }
            // …then the PTE itself is read.
            step += 1;
            println!("  {step:>2}. [L{} PTE    ] {}", pt_ref.level, pt_ref.addr);
        }
        let translation = result.translation.expect("mapped");
        let check = sys.machine.regs().check(
            sys.machine.phys(), &mut cache, translation.paddr, AccessKind::Read,
            PrivMode::Supervisor,
        );
        for r in &check.refs {
            step += 1;
            let kind = if r.is_root { "root pmpte" } else { "leaf pmpte" };
            println!("  {step:>2}. [{kind:<10}] {}", r.addr);
        }
        if check.refs.is_empty() {
            println!("      (segment check for the data page — no memory reference)");
        }
        step += 1;
        println!("  {step:>2}. [data      ] {}", translation.paddr);
        println!("  total memory references: {step}\n");
    }
    println!("Compare with the paper: PMP = 4, PMP Table = 12 (Figure 2-c's numbered");
    println!("squares and circles), HPMP = 6 (Figure 4).");
}
