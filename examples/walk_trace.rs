//! Walk tracing: reconstructs the paper's Figure 2/Figure 4 diagrams from a
//! live machine — every memory reference of one TLB-missing load, in order,
//! labelled the way the paper draws its squares and circles.
//!
//! Unlike hand-walking the page table, this drives the *instrumented*
//! machine: a [`RingSink`] records one [`WalkEvent`] per access, and the
//! event's step list is the diagram. The same events stream to JSONL with
//! `hpmpsim --trace-out` / `repro --trace-out`.
//!
//! Run with: `cargo run --example walk_trace`

use hpmp_suite::machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_suite::memsim::{AccessKind, Perms, PrivMode, VirtAddr};
use hpmp_suite::trace::{RingSink, StepKind};

fn main() {
    let va = VirtAddr::new(0x10_0000);
    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        // A machine with a small ring buffer as its trace sink: every
        // access becomes a WalkEvent, oldest events dropped when full.
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme)
            .sink(RingSink::new(8))
            .build();
        sys.map_range(va, 1, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();

        println!("--- {scheme}: one TLB-missing ld at {va} ---");
        sys.machine
            .access(&sys.space, va, AccessKind::Read, PrivMode::Supervisor)
            .expect("the mapping was just created");

        let event = sys
            .machine
            .sink()
            .latest()
            .expect("access was traced")
            .clone();
        for (i, step) in event.steps.iter().enumerate() {
            let label = match (step.kind, step.level) {
                (StepKind::Pt, Some(level)) => format!("L{level} PTE"),
                (StepKind::PmptRoot, _) => "root pmpte".into(),
                (StepKind::PmptLeaf, _) => "leaf pmpte".into(),
                (StepKind::Data, _) => "data".into(),
                (kind, _) => kind.label().into(),
            };
            println!(
                "  {:>2}. [{label:<10}] {:#x}  ({} cycles)",
                i + 1,
                step.addr,
                step.cycles
            );
        }
        // The synthetic TLB-L2 probe step (absent on this cold miss) is not
        // a memory reference, so it never counts toward the figure's totals.
        let refs = event
            .steps
            .iter()
            .filter(|s| s.kind != StepKind::TlbL2)
            .count();
        assert!(event.is_balanced(), "every cycle is attributed to a step");
        println!("  total memory references: {refs}");
        println!(
            "  tlb={} pwc_level={:?} pmptw={:?}",
            event.tlb.label(),
            event.pwc_level,
            event.pmptw.map(|p| p.label())
        );
        println!(
            "  latency: {} cycles = {} pipeline + {} in steps\n",
            event.cycles,
            event.pipeline_cycles,
            event.step_cycles()
        );
    }
    println!("Compare with the paper: PMP = 4, PMP Table = 12 (Figure 2-c's numbered");
    println!("squares and circles), HPMP = 6 (Figure 4).");
}
