//! Fuzz target: every versioned JSON reader must reject arbitrary bytes
//! with a typed error, never a panic. The body lives in
//! `hpmp_modelcheck::fuzz` so stable-toolchain CI can run it too.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    hpmp_modelcheck::fuzz::fuzz_json_readers(data);
});
