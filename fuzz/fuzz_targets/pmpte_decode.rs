//! Differential fuzz target: pmpte decode must agree with the
//! parity-checked reference or reject fail-closed. The body lives in
//! `hpmp_modelcheck::fuzz` so stable-toolchain CI can run it too.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    hpmp_modelcheck::fuzz::fuzz_pmpte_decode(data);
});
