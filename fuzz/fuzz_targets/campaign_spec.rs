//! Fuzz target: `CampaignSpec` parse → canonical → parse must be the
//! identity, and derived shard splits must cover the total. The body
//! lives in `hpmp_modelcheck::fuzz` so stable-toolchain CI can run it
//! too.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    hpmp_modelcheck::fuzz::fuzz_campaign_spec(data);
});
